// E16 — Section 6.3.1: random-walk sensor network sampling.
//
// A token walk (no visited-set bookkeeping) vs the dedup variant vs
// independent sampling, on i.i.d. and spatially-correlated fields.  The
// paper's local-mixing story predicts the naive walk's standard error is
// within a log-flavored factor of independent sampling on the grid —
// the "penalty" column.
#include "bench_common.hpp"

#include <cmath>

#include "sensor/field.hpp"
#include "sensor/token_sampling.hpp"
#include "stats/accumulator.hpp"

namespace antdense {
namespace {

void sweep(const sensor::SensorField& field, const std::string& label,
           std::uint32_t trials, std::uint64_t seed) {
  std::cout << "\n## " << label << " (field mean = "
            << util::format_fixed(field.mean(), 4) << ")\n\n";
  util::Table table({"t", "walk stderr", "dedup stderr", "indep stderr",
                     "walk/indep penalty", "mean unique sensors"});
  for (std::uint32_t t : bench::powers_of_two(128, 4096)) {
    stats::Accumulator walk, dedup, indep, unique;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const auto r = sensor::run_token_sampling(
          field, t, rng::derive_seed(seed, t, trial));
      walk.add(r.walk_estimate);
      dedup.add(r.dedup_estimate);
      indep.add(r.independent_estimate);
      unique.add(r.unique_sensors);
    }
    table.row()
        .cell(t)
        .cell(util::format_sci(walk.sample_stddev(), 3))
        .cell(util::format_sci(dedup.sample_stddev(), 3))
        .cell(util::format_sci(indep.sample_stddev(), 3))
        .cell(util::format_fixed(
            walk.sample_stddev() / indep.sample_stddev(), 2))
        .cell(util::format_fixed(unique.mean(), 0))
        .commit();
  }
  table.print_markdown(std::cout);
}

void run(const util::Args& args) {
  const auto trials =
      static_cast<std::uint32_t>(args.get_uint("trials", 400));
  bench::print_banner(
      "E16", "Section 6.3.1 (sensor network token sampling)",
      "iid field: walk/indep penalty is a small, slowly-growing factor "
      "(the log-flavored repeat-visit cost) and dedup buys little. "
      "Correlated field: the penalty is large and grows — the walk only "
      "sees a local patch, isolating the iid assumption in the paper's "
      "data-aggregation claim");

  const graph::Torus2D torus(128, 128);
  sweep(sensor::SensorField::bernoulli(torus, 0.5, 0x16A),
        "i.i.d. Bernoulli(0.5) field", trials, 0x16B);
  sweep(sensor::SensorField::gradient(torus),
        "smooth sinusoidal gradient field (spatially correlated)", trials,
        0x16C);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
