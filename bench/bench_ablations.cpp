// E-ABL — ablations over the design choices and Section 6.1 robustness
// knobs that DESIGN.md calls out:
//   A. laziness (self-loop probability): slows convergence, no bias;
//   B. detection noise: symmetric attenuation / additive offset, both
//      calibratable;
//   C. movement drift: unbiased in expectation but worse-concentrated
//      (re-collisions cluster along the drift axis);
//   D. anytime trajectory: the running estimate c/r converges smoothly,
//      so agents can act before the full Theorem 1 budget.
#include "bench_common.hpp"

#include <cmath>

#include "graph/biased_torus2d.hpp"
#include "graph/torus2d.hpp"
#include "sim/trajectory.hpp"
#include "stats/accumulator.hpp"

namespace antdense {
namespace {

constexpr std::uint32_t kSide = 48;
constexpr std::uint32_t kAgents = 231;  // d ~ 0.1

void laziness_ablation(std::uint32_t trials) {
  std::cout << "\n## A. laziness\n\n";
  const graph::Torus2D torus(kSide, kSide);
  util::Table table({"lazy prob", "t", "eps@90%", "mean/d"});
  const double d = (kAgents - 1.0) / (kSide * kSide);
  for (double lazy : {0.0, 0.25, 0.5}) {
    for (std::uint32_t t : {256u, 1024u}) {
      sim::DensityConfig cfg;
      cfg.num_agents = kAgents;
      cfg.rounds = t;
      cfg.lazy_probability = lazy;
      const auto estimates =
          sim::collect_all_agent_estimates(torus, cfg, 0xAB1, trials);
      stats::Accumulator acc;
      for (double e : estimates) {
        acc.add(e);
      }
      table.row()
          .cell(util::format_fixed(lazy, 2))
          .cell(t)
          .cell(util::format_fixed(
              stats::epsilon_at_confidence(estimates, d, 0.9), 4))
          .cell(util::format_fixed(acc.mean() / d, 4))
          .commit();
    }
  }
  table.print_markdown(std::cout);
  std::cout << "\nLaziness leaves the mean ratio at 1 (regularity holds) "
               "and costs only a modest accuracy factor.\n";
}

void noise_ablation(std::uint32_t trials) {
  std::cout << "\n## B. detection noise\n\n";
  const graph::Torus2D torus(kSide, kSide);
  const double d = (kAgents - 1.0) / (kSide * kSide);
  util::Table table({"miss prob", "spurious prob", "mean d~",
                     "predicted (1-p)d + s", "ratio"});
  for (double miss : {0.0, 0.2, 0.4}) {
    for (double spurious : {0.0, 0.02}) {
      sim::DensityConfig cfg;
      cfg.num_agents = kAgents;
      cfg.rounds = 512;
      cfg.detection_miss_probability = miss;
      cfg.spurious_collision_probability = spurious;
      const auto estimates =
          sim::collect_all_agent_estimates(torus, cfg, 0xAB2, trials);
      stats::Accumulator acc;
      for (double e : estimates) {
        acc.add(e);
      }
      const double predicted = (1.0 - miss) * d + spurious;
      table.row()
          .cell(util::format_fixed(miss, 2))
          .cell(util::format_fixed(spurious, 2))
          .cell(util::format_fixed(acc.mean(), 4))
          .cell(util::format_fixed(predicted, 4))
          .cell(util::format_fixed(acc.mean() / predicted, 4))
          .commit();
    }
  }
  table.print_markdown(std::cout);
  std::cout << "\nBoth noise modes shift the estimator exactly as the "
               "linear model predicts — an agent that knows its sensor "
               "rates can invert them.\n";
}

void drift_ablation(std::uint32_t trials) {
  std::cout << "\n## C. movement drift\n\n";
  const double d = (kAgents - 1.0) / (kSide * kSide);
  util::Table table({"drift", "mean/d", "eps@90%"});
  for (double drift : {0.0, 0.1, 0.2}) {
    const graph::BiasedTorus2D topo =
        graph::BiasedTorus2D::with_drift(kSide, kSide, drift);
    sim::DensityConfig cfg;
    cfg.num_agents = kAgents;
    cfg.rounds = 1024;
    const auto estimates =
        sim::collect_all_agent_estimates(topo, cfg, 0xAB3, trials);
    stats::Accumulator acc;
    for (double e : estimates) {
      acc.add(e);
    }
    table.row()
        .cell(util::format_fixed(drift, 2))
        .cell(util::format_fixed(acc.mean() / d, 4))
        .cell(util::format_fixed(
            stats::epsilon_at_confidence(estimates, d, 0.9), 4))
        .commit();
  }
  table.print_markdown(std::cout);
  std::cout << "\nShared drift keeps the estimator unbiased but shrinks "
               "the *relative* diffusion between agents, so collisions "
               "cluster and the error at fixed t grows.\n";
}

void trajectory_profile(std::uint32_t trials) {
  std::cout << "\n## D. anytime convergence profile\n\n";
  const graph::Torus2D torus(kSide, kSide);
  const std::vector<std::uint32_t> checkpoints = {16,  32,   64,  128,
                                                  256, 1024, 4096};
  const double d = (kAgents - 1.0) / (kSide * kSide);
  std::vector<stats::Accumulator> abs_err(checkpoints.size());
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const auto r = sim::run_trajectory(torus, kAgents, kAgents, checkpoints,
                                       rng::derive_seed(0xAB4, trial));
    for (std::uint32_t a = 0; a < kAgents; ++a) {
      for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        abs_err[c].add(std::fabs(r.estimates[a][c] - d) / d);
      }
    }
  }
  util::Table table({"round r", "mean |d~ - d| / d", "x sqrt(r) (level =>"
                     " ~r^{-1/2} decay)"});
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    table.row()
        .cell(checkpoints[c])
        .cell(util::format_fixed(abs_err[c].mean(), 4))
        .cell(util::format_fixed(
            abs_err[c].mean() * std::sqrt(checkpoints[c]), 3))
        .commit();
  }
  table.print_markdown(std::cout);
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 6));
  bench::print_banner(
      "E-ABL", "Design-choice and Section 6.1 robustness ablations",
      "laziness/noise/drift degrade exactly as modeled; running estimate "
      "decays ~ r^{-1/2} (mod logs) at every prefix");
  laziness_ablation(trials);
  noise_ablation(trials);
  drift_ablation(trials);
  trajectory_profile(trials);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
