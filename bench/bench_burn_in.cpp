// E12 — Section 5.1.4: burn-in.
//
// Part 1: exact TV distance to stationarity vs steps on a crawlable
//         graph, against the spectral envelope lambda^m scaling and the
//         paper's budget M = log(|E|/delta)/(1-lambda).
// Part 2: effect of insufficient burn-in on Algorithm 2 — walks started
//         at one seed vertex without enough burn-in collide far too
//         often and the size estimate biases low.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/generators.hpp"
#include "netsize/size_estimator.hpp"
#include "spectral/walk_matrix.hpp"
#include "stats/quantile.hpp"

namespace antdense {
namespace {

void tv_part() {
  const graph::Graph g = graph::make_barabasi_albert_graph(500, 3, 0x12A);
  const double lambda = spectral::second_eigenvalue_magnitude(g);
  const auto budget = core::burn_in_rounds(g.num_edges(), 0.1, lambda);
  std::cout << "\n## TV distance to stationarity (BA graph, |V|=500, "
               "lambda = "
            << util::format_fixed(lambda, 4)
            << ", paper budget M = " << budget << ")\n\n";

  const auto pi = spectral::stationary_distribution(g);
  std::vector<double> dist(g.num_vertices(), 0.0);
  dist[0] = 1.0;
  util::Table table({"steps m", "TV(dist, pi)", "lambda^m reference"});
  std::uint32_t next_report = 1;
  for (std::uint32_t m = 0; m <= budget; ++m) {
    if (m == next_report || m == budget) {
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(util::format_sci(spectral::tv_distance(dist, pi), 3))
          .cell(util::format_sci(std::pow(lambda, m), 3))
          .commit();
      next_report *= 2;
    }
    dist = spectral::evolve_step(g, dist);
  }
  table.print_markdown(std::cout);
}

void bias_part(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 60));
  const graph::Graph g = graph::make_barabasi_albert_graph(500, 3, 0x12A);
  const double lambda = spectral::second_eigenvalue_magnitude(g);
  const auto m_star =
      static_cast<std::uint32_t>(core::burn_in_rounds(g.num_edges(), 0.1,
                                                      lambda));
  std::cout << "\n## Algorithm 2 bias vs burn-in length (truth 500)\n\n";
  util::Table table({"burn-in M", "median size estimate", "median rel err"});
  for (std::uint32_t m :
       {0u, m_star / 4, m_star, 4 * m_star}) {
    std::vector<double> estimates;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      netsize::SizeEstimationConfig cfg;
      cfg.num_walks = 48;
      cfg.rounds = 48;
      cfg.burn_in = m;
      cfg.seed_vertex = 0;
      const auto r = netsize::estimate_network_size(
          g, cfg, rng::derive_seed(0x12B, m, trial));
      if (r.saw_collision) {
        estimates.push_back(r.size_estimate);
      }
    }
    const double med = stats::median(estimates);
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(util::format_fixed(med, 1))
        .cell(util::format_fixed(std::fabs(med - 500.0) / 500.0, 4))
        .commit();
  }
  table.print_markdown(std::cout);
  std::cout << "\nZero burn-in keeps all walks clustered near the seed: "
               "excess collisions -> size underestimated.  At or above "
               "the paper budget the estimate stabilizes.\n";
}

void run(const util::Args& args) {
  bench::print_banner(
      "E12", "Section 5.1.4 (burn-in analysis)",
      "TV distance decays geometrically (rate <= lambda); Algorithm 2 "
      "biased low with insufficient burn-in, unbiased at the paper "
      "budget");
  tv_part();
  bias_part(args);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
