#include "bench_json.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace antdense::bench {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string to_json(const std::vector<BenchRecord>& records) {
  util::JsonValue doc = util::JsonValue::array();
  for (const BenchRecord& r : records) {
    ANTDENSE_CHECK(std::isfinite(r.ns_per_agent_round),
                   "bench timing must be finite");
    util::JsonValue rec = util::JsonValue::object();
    rec.set("name", r.name);
    rec.set("topology", r.topology);
    rec.set("agents", r.agents);
    rec.set("rounds", r.rounds);
    rec.set("ns_per_agent_round", r.ns_per_agent_round);
    if (r.threads != 0) {
      rec.set("threads", r.threads);
    }
    if (r.hardware_threads != 0) {
      rec.set("hardware_threads", r.hardware_threads);
    }
    if (r.peak_rss_bytes != 0) {
      rec.set("peak_rss_bytes", r.peak_rss_bytes);
    }
    doc.push_back(std::move(rec));
  }
  return doc.dump() + "\n";
}

void write_json(const std::string& path,
                const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench_json: cannot open " + path +
                             " for writing");
  }
  out << to_json(records);
  if (!out.good()) {
    throw std::runtime_error("bench_json: write to " + path + " failed");
  }
}

}  // namespace antdense::bench
