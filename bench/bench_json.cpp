#include "bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace antdense::bench {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string to_json(const std::vector<BenchRecord>& records) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    ANTDENSE_CHECK(std::isfinite(r.ns_per_agent_round),
                   "bench timing must be finite");
    os << "  {\"name\": \"" << escape(r.name) << "\", \"topology\": \""
       << escape(r.topology) << "\", \"agents\": " << r.agents
       << ", \"rounds\": " << r.rounds << ", \"ns_per_agent_round\": "
       << format_double(r.ns_per_agent_round) << "}";
    if (i + 1 < records.size()) {
      os << ",";
    }
    os << "\n";
  }
  os << "]\n";
  return os.str();
}

void write_json(const std::string& path,
                const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench_json: cannot open " + path +
                             " for writing");
  }
  out << to_json(records);
  if (!out.good()) {
    throw std::runtime_error("bench_json: write to " + path + " failed");
  }
}

}  // namespace antdense::bench
