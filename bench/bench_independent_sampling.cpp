// E13 — Theorem 32 vs Theorem 1: the random walk pays only a log factor.
//
// Three estimators at identical (A, n, t):
//   Algorithm 1 (random walk, the paper's contribution),
//   Algorithm 4 (stationary/mobile independent sampling baseline),
//   Algorithm 1 on the complete graph (the idealized reference).
// Expectation: alg4 ~ complete, alg1 within a (log t)-flavored factor;
// the ratio column should grow slowly (not polynomially) with t.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "core/independent_sampling.hpp"
#include "graph/complete.hpp"
#include "graph/torus2d.hpp"
#include "stats/concentration.hpp"

namespace antdense {
namespace {

double alg4_epsilon(const graph::Torus2D& torus, std::uint32_t agents,
                    std::uint32_t t, double confidence, std::uint64_t seed,
                    std::uint32_t trials) {
  std::vector<double> all;
  double d = 0.0;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    const auto r = core::run_independent_sampling(
        torus, agents, t, rng::derive_seed(seed, trial));
    d = r.true_density;
    all.insert(all.end(), r.estimates.begin(), r.estimates.end());
  }
  return stats::epsilon_at_confidence(all, d, confidence);
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 6));
  bench::print_banner(
      "E13", "Theorem 32 / Appendix A (independent-sampling baseline)",
      "alg4 tracks the complete-graph reference; alg1/alg4 ratio grows "
      "at most logarithmically in t");

  const graph::Torus2D torus(512, 512);  // sqrt(A)=512 > t for all t below
  const graph::CompleteGraph complete(262144);
  constexpr std::uint32_t kAgents = 26215;  // d ~ 0.1
  util::Table table({"t", "alg1 walk eps@90%", "alg4 indep eps@90%",
                     "complete eps@90%", "alg1/alg4", "thm32 eps"});
  const double d = (kAgents - 1.0) / 262144.0;
  for (std::uint32_t t : bench::powers_of_two(32, 256)) {
    const double e1 =
        bench::measure_epsilon(torus, kAgents, t, 0.9, 0x13A, trials);
    const double e4 = alg4_epsilon(torus, kAgents, t, 0.9, 0x13B, trials);
    const double ec =
        bench::measure_epsilon(complete, kAgents, t, 0.9, 0x13C, trials);
    table.row()
        .cell(t)
        .cell(util::format_fixed(e1, 4))
        .cell(util::format_fixed(e4, 4))
        .cell(util::format_fixed(ec, 4))
        .cell(util::format_fixed(e1 / e4, 2))
        .cell(util::format_fixed(
            core::independent_sampling_epsilon(t, d, 0.1), 4))
        .commit();
  }
  std::cout << "\n";
  table.print_markdown(std::cout);
  std::cout << "\nNote t is capped below sqrt(A) = 512 because Algorithm 4 "
               "requires non-wrapping walker columns.\n";
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
