// E2 — Lemma 2 / Corollary 3: the encounter rate is an unbiased density
// estimator on every regular topology.
//
// For each topology the pooled mean of Algorithm 1 estimates must match
// d = n/A within Monte Carlo error (the ratio column should be 1.000
// within the reported standard error).
#include "bench_common.hpp"

#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "stats/accumulator.hpp"

namespace antdense {
namespace {

template <graph::Topology T>
void check_unbiased(const T& topo, std::uint32_t agents, std::uint32_t rounds,
                    std::uint32_t trials, std::uint64_t seed,
                    util::Table& table) {
  sim::DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = rounds;
  const auto estimates =
      sim::collect_all_agent_estimates(topo, cfg, seed, trials);
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  const double d = static_cast<double>(agents - 1) /
                   static_cast<double>(topo.num_nodes());
  table.row()
      .cell(topo.name())
      .cell(topo.num_nodes())
      .cell(agents)
      .cell(rounds)
      .cell(util::format_fixed(d, 5))
      .cell(util::format_fixed(acc.mean(), 5))
      .cell(util::format_fixed(acc.mean() / d, 4))
      .cell(util::format_sci(acc.standard_error(), 2))
      .commit();
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 40));
  bench::print_banner(
      "E2", "Lemma 2 / Corollary 3 (unbiasedness, E[d~] = d)",
      "mean/d ratio = 1.0 within a few standard errors on all topologies");

  util::Table table({"topology", "A", "agents", "t", "d", "mean d~",
                     "ratio", "stderr"});

  check_unbiased(graph::Torus2D(48, 48), 116, 256, trials, 0xE2A, table);
  check_unbiased(graph::Ring(2048), 103, 256, trials, 0xE2B, table);
  check_unbiased(graph::TorusKD(3, 13), 111, 256, trials, 0xE2C, table);
  check_unbiased(graph::Hypercube(11), 103, 256, trials, 0xE2D, table);
  check_unbiased(graph::CompleteGraph(2048), 103, 256, trials, 0xE2E, table);

  const graph::Graph rr = graph::make_random_regular_graph(2048, 8, 0xE2F);
  check_unbiased(graph::ExplicitTopology(rr, "random-regular"), 103, 256,
                 trials, 0xE30, table);

  std::cout << "\n";
  table.print_markdown(std::cout);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
