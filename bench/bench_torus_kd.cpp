// E7 — Lemma 22 / Section 4.3: k-dimensional tori.
//
// Re-collision decays as (m+1)^{-k/2}; for k >= 3 the accumulated mass
// B(t) is O(1), so density estimation matches independent sampling
// (the complete graph) up to constants.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/complete.hpp"
#include "graph/torus_kd.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

void recollision_part(const util::Args& args) {
  const auto trials = args.get_uint("trials", 400000);
  const auto m_max = static_cast<std::uint32_t>(args.get_uint("mmax", 64));

  for (std::uint32_t k : {3u, 4u}) {
    const std::uint32_t side = k == 3 ? 64 : 22;
    const graph::TorusKD topo(k, side);
    const auto curve =
        walk::measure_recollision_curve(topo, m_max, trials, 0xE7A + k);
    std::cout << "\n## Lemma 22: re-collision on " << topo.name() << "\n\n";
    util::Table table({"m", "P measured", "theory (m+1)^{-k/2}", "ratio"});
    std::vector<double> ms, ps;
    for (std::uint32_t m = 2; m <= m_max; m *= 2) {
      const double p = curve.probability[m];
      const double theory = std::pow(m + 1.0, -static_cast<double>(k) / 2.0);
      table.row()
          .cell(m)
          .cell(util::format_sci(p, 3))
          .cell(util::format_sci(theory, 3))
          .cell(util::format_fixed(p / theory, 3))
          .commit();
      if (p > 0.0) {
        ms.push_back(m);
        ps.push_back(p);
      }
    }
    table.print_markdown(std::cout);
    bench::print_power_fit(
        "k=" + std::to_string(k) + " P[recollision] vs m (expect -" +
            util::format_fixed(k / 2.0, 1) + ")",
        ms, ps);
  }
}

void accuracy_part(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("atrials", 8));
  const double delta = 0.1;
  const graph::TorusKD torus3(3, 16);  // 4096 nodes
  const graph::CompleteGraph complete(4096);
  constexpr std::uint32_t kAgents = 410;

  std::cout
      << "\n## Section 4.3: 3-D torus matches independent sampling\n\n";
  util::Table table({"t", "torus3d eps@90%", "complete eps@90%", "ratio"});
  for (std::uint32_t t : bench::powers_of_two(128, 4096)) {
    const double e3 = bench::measure_epsilon(torus3, kAgents, t, 1.0 - delta,
                                             0xE7C, trials);
    const double ec = bench::measure_epsilon(complete, kAgents, t,
                                             1.0 - delta, 0xE7D, trials);
    table.row()
        .cell(t)
        .cell(util::format_fixed(e3, 4))
        .cell(util::format_fixed(ec, 4))
        .cell(util::format_fixed(e3 / ec, 2))
        .commit();
  }
  table.print_markdown(std::cout);
  std::cout << "\nB(t) values (theory): B(4096) on k=3 = "
            << util::format_fixed(core::b_torus_kd(4096, 3, 1ull << 40), 3)
            << " (constant), vs 2-D torus "
            << util::format_fixed(core::b_torus2d(4096, 1ull << 40), 3)
            << " (log t growth)\n";
}

void run(const util::Args& args) {
  bench::print_banner(
      "E7", "Lemma 22 / Section 4.3 (k-dimensional tori)",
      "re-collision slopes about -k/2; k=3 accuracy within a small "
      "constant of the complete graph at every t");
  recollision_part(args);
  accuracy_part(args);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
