// E4 — Corollaries 10, 15, 16: equalization probability, visit
// statistics, and equalization-count moments for a single walk on the
// 2-D torus.
//
//   Cor. 10: P[back at origin after even m] = Θ(1/(m+1)) + O(1/A).
//   Cor. 15: P[visit fixed node] = O((t/A)·log 2t); E[visits | any] =
//            Θ(log 2t).
//   Cor. 16: E[(equalizations)^k] <= k! w^k log^k(2t) — the k-th root
//            normalized by log(2t) should stay bounded as t grows.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/torus2d.hpp"
#include "stats/moments.hpp"
#include "walk/equalization.hpp"
#include "walk/visits.hpp"

namespace antdense {
namespace {

void equalization_probability(const util::Args& args) {
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 256));
  const auto trials = args.get_uint("trials", 200000);
  const auto m_max = static_cast<std::uint32_t>(args.get_uint("mmax", 256));
  const graph::Torus2D torus(side, side);
  const auto curve =
      walk::measure_equalization_curve(torus, m_max, trials, 0xE4A);

  std::cout << "\n## Corollary 10: equalization probability (even m)\n\n";
  util::Table table({"m", "P measured", "theory 1/(m+1)", "ratio"});
  std::vector<double> ms, ps;
  for (std::uint32_t m = 2; m <= m_max; m *= 2) {
    const double p = curve.probability[m];
    const double theory = 1.0 / (m + 1.0);
    table.row()
        .cell(m)
        .cell(util::format_sci(p, 3))
        .cell(util::format_sci(theory, 3))
        .cell(util::format_fixed(p / theory, 3))
        .commit();
    ms.push_back(m);
    ps.push_back(p);
  }
  table.print_markdown(std::cout);
  bench::print_power_fit("P[equalize] vs even m", ms, ps);

  // Bipartiteness check: odd-m probabilities must all be exactly zero.
  std::uint64_t odd_hits = 0;
  for (std::uint32_t m = 1; m <= m_max; m += 2) {
    odd_hits += curve.hits[m];
  }
  std::cout << "odd-m equalizations observed (must be 0): " << odd_hits
            << "\n";
}

void visit_statistics(const util::Args& args) {
  const auto side = static_cast<std::uint32_t>(args.get_uint("vside", 64));
  const auto trials = args.get_uint("vtrials", 60000);
  const graph::Torus2D torus(side, side);
  const double area = static_cast<double>(torus.num_nodes());

  std::cout << "\n## Corollary 15: visits to a fixed node\n\n";
  util::Table table({"t", "P[visit]", "(t/A)log2t", "P/[(t/A)log2t]",
                     "E[visits|any]", "E[v|any]/log2t"});
  for (std::uint32_t t : bench::powers_of_two(128, 2048)) {
    const auto stats = walk::measure_visits(
        torus, graph::Torus2D::pack(side / 2, side / 2), t, trials,
        0xE4B + t);
    const double log2t = std::log(2.0 * t);
    const double envelope = t / area * log2t;
    table.row()
        .cell(t)
        .cell(util::format_sci(stats.p_visit, 3))
        .cell(util::format_sci(envelope, 3))
        .cell(util::format_fixed(stats.p_visit / envelope, 3))
        .cell(util::format_fixed(stats.mean_visits_given_any, 3))
        .cell(util::format_fixed(stats.mean_visits_given_any / log2t, 3))
        .commit();
  }
  table.print_markdown(std::cout);
}

void equalization_moments(const util::Args& args) {
  const auto side = static_cast<std::uint32_t>(args.get_uint("mside", 256));
  const auto trials = args.get_uint("mtrials", 60000);
  const graph::Torus2D torus(side, side);

  std::cout << "\n## Corollary 16: equalization-count moments\n\n";
  util::Table table(
      {"t", "k", "E[c^k]", "(k! log^k 2t)", "w = (E[c^k]/k!)^{1/k}/log2t"});
  for (std::uint32_t t : {256u, 1024u, 4096u}) {
    const auto counts = walk::equalization_counts(torus, t, trials, 0xE4C);
    const double log2t = std::log(2.0 * t);
    double factorial = 1.0;
    for (int k = 1; k <= 4; ++k) {
      factorial *= k;
      const double raw = stats::raw_moment(counts, k);
      const double envelope = factorial * std::pow(log2t, k);
      const double w =
          std::pow(raw / factorial, 1.0 / k) / log2t;
      table.row()
          .cell(t)
          .cell(k)
          .cell(util::format_fixed(raw, 3))
          .cell(util::format_fixed(envelope, 1))
          .cell(util::format_fixed(w, 4))
          .commit();
    }
  }
  table.print_markdown(std::cout);
  std::cout << "\nThe implied constant w should stay bounded (and roughly "
               "level in t and k) if moments grow as k! w^k log^k(2t).\n";
}

void run(const util::Args& args) {
  bench::print_banner(
      "E4",
      "Corollaries 10 / 15 / 16 (single-walk equalization and visits)",
      "equalization decays ~1/(m+1) with zero odd-parity mass; visit "
      "stats track (t/A)log2t and log2t; moment constant w bounded");
  equalization_probability(args);
  visit_statistics(args);
  equalization_moments(args);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
