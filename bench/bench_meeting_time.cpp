// E-MEET — companion experiment: first return times (Kac's formula
// E[T_return] = A on every regular graph — a sharp engine check) and
// first meeting times across topologies, the flip side of the
// re-collision analysis (how long between distinct encounter episodes).
#include "bench_common.hpp"

#include "graph/complete.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "walk/return_time.hpp"

namespace antdense {
namespace {

template <graph::Topology T>
void report(const T& topo, std::uint32_t cap_multiplier,
            std::uint64_t trials, util::Table& table, std::uint64_t seed) {
  const auto cap = static_cast<std::uint32_t>(
      topo.num_nodes() * cap_multiplier);
  const auto ret = walk::measure_first_return(topo, cap, trials, seed);
  const auto meet = walk::measure_first_meeting(topo, cap, trials, seed + 1);
  table.row()
      .cell(topo.name())
      .cell(topo.num_nodes())
      .cell(util::format_fixed(ret.mean, 1))
      .cell(util::format_percent(ret.censored_fraction, 1))
      .cell(util::format_fixed(meet.mean, 1))
      .cell(util::format_percent(meet.censored_fraction, 1))
      .commit();
}

void run(const util::Args& args) {
  const auto trials = args.get_uint("trials", 30000);
  bench::print_banner(
      "E-MEET", "Kac return times and first meeting times",
      "uncensored mean return time ~ A on fast-returning graphs (Kac); "
      "heavier censoring on slow-mixing graphs (ring, torus) reflects "
      "their heavy-tailed return law");

  util::Table table({"topology", "A", "mean return (uncensored)",
                     "censored", "mean meeting", "censored "});
  report(graph::CompleteGraph(256), 40, trials, table, 0xEE1);
  report(graph::Hypercube(8), 40, trials, table, 0xEE2);
  report(graph::TorusKD(3, 6), 40, trials, table, 0xEE3);
  report(graph::Torus2D(16, 16), 40, trials, table, 0xEE4);
  report(graph::Ring(256), 40, trials, table, 0xEE5);
  std::cout << "\n";
  table.print_markdown(std::cout);
  std::cout << "\nKac's formula says the full expectation equals A "
               "exactly; censoring at 40A trims the heavy tail, so "
               "slow-mixing graphs report a lower uncensored mean with "
               "higher censoring — the ordering itself is the signal.\n"
               "The ~50% meeting censoring on the hypercube and even-sided "
               "tori is the paper's parity note made visible: on a "
               "bipartite graph, two walkers starting an odd distance "
               "apart can never meet (Section 3.3).\n";
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
