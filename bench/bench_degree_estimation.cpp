// E11 — Theorem 31: average-degree estimation by inverse-degree sampling.
//
// Median relative error of 1/D vs the true average degree should decay
// as n^{-1/2}, with the constant governed by avg_deg/min_deg (worse on
// degree-skewed graphs) — exactly Theorem 31's dependence.
#include "bench_common.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "netsize/degree_estimator.hpp"
#include "stats/quantile.hpp"

namespace antdense {
namespace {

void sweep(const graph::Graph& g, const std::string& label,
           std::uint32_t trials, std::uint64_t seed) {
  const double truth = g.average_degree();
  const double skew = truth / g.min_degree();
  std::cout << "\n## " << label << " (avg deg = "
            << util::format_fixed(truth, 2)
            << ", avg/min = " << util::format_fixed(skew, 2) << ")\n\n";
  util::Table table(
      {"samples n", "median rel err", "err * sqrt(n) (should be level)"});
  std::vector<double> ns, errs;
  for (std::uint32_t n : bench::powers_of_two(64, 4096)) {
    std::vector<double> trial_errs;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      const auto r = netsize::estimate_average_degree(
          g, n, true, 0, 0, rng::derive_seed(seed, n, trial));
      trial_errs.push_back(
          std::fabs(r.average_degree_estimate - truth) / truth);
    }
    const double err = stats::median(trial_errs);
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(util::format_fixed(err, 5))
        .cell(util::format_fixed(err * std::sqrt(n), 3))
        .commit();
    ns.push_back(n);
    errs.push_back(err);
  }
  table.print_markdown(std::cout);
  bench::print_power_fit("median err vs n (expect ~ -0.5)", ns, errs);
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 80));
  bench::print_banner(
      "E11", "Theorem 31 (average degree estimation)",
      "median error ~ n^{-1/2}; skewed graphs (higher avg/min ratio) "
      "need more samples for the same error");

  sweep(graph::make_random_regular_graph(2000, 8, 0x11A),
        "random 8-regular (no skew)", trials, 0x11B);
  sweep(graph::make_barabasi_albert_graph(2000, 3, 0x11C),
        "Barabasi-Albert m=3 (power-law skew)", trials, 0x11D);
  sweep(graph::make_watts_strogatz_graph(2000, 3, 0.2, 0x11E),
        "Watts-Strogatz k=3 beta=0.2 (mild skew)", trials, 0x11F);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
