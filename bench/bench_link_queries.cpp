// E15 — Section 5.1.5: total link queries, ours vs the halt-after-burn-in
// baseline [KLSC14], on the paper's worked example (the 3-D torus).
//
// For each graph size, both methods are charged the measured burn-in
// M = log(|E|/delta)/(1-lambda) per walk, with lambda measured by power
// iteration.  Walk counts are doubled until the median relative error
// over trials is <= the target.  The paper's claim: amortizing burn-in
// over t counting rounds (ours, t = M) needs far fewer total queries
// than the baseline, and the gap widens with |V|.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/generators.hpp"
#include "netsize/katzir.hpp"
#include "netsize/size_estimator.hpp"
#include "spectral/walk_matrix.hpp"
#include "stats/quantile.hpp"
#include "util/parallel.hpp"

namespace antdense {
namespace {

constexpr double kTargetError = 0.25;

double ours_median_error(const graph::Graph& g, std::uint32_t walks,
                         std::uint32_t burn_in, std::uint32_t rounds,
                         std::uint32_t trials, std::uint64_t seed,
                         std::uint64_t* queries) {
  const double truth = g.num_vertices();
  std::vector<double> errs(trials, 1e9);
  std::vector<std::uint64_t> q(trials, 0);
  util::parallel_for(trials, [&](std::size_t trial) {
    netsize::SizeEstimationConfig cfg;
    cfg.num_walks = walks;
    cfg.rounds = rounds;
    cfg.burn_in = burn_in;
    cfg.seed_vertex = 0;
    const auto r = netsize::estimate_network_size(
        g, cfg, rng::derive_seed(seed, trial));
    q[trial] = r.link_queries;
    if (r.saw_collision) {
      errs[trial] = std::fabs(r.size_estimate - truth) / truth;
    }
  });
  *queries = q[0];
  return stats::median(errs);
}

double katzir_median_error(const graph::Graph& g, std::uint32_t walks,
                           std::uint32_t burn_in, std::uint32_t trials,
                           std::uint64_t seed, std::uint64_t* queries) {
  const double truth = g.num_vertices();
  std::vector<double> errs(trials, 1e9);
  std::vector<std::uint64_t> q(trials, 0);
  util::parallel_for(trials, [&](std::size_t trial) {
    netsize::KatzirConfig cfg;
    cfg.num_walks = walks;
    cfg.burn_in = burn_in;
    cfg.seed_vertex = 0;
    const auto r =
        netsize::katzir_estimate(g, cfg, rng::derive_seed(seed, trial));
    q[trial] = r.link_queries;
    if (r.saw_collision) {
      errs[trial] = std::fabs(r.size_estimate - truth) / truth;
    }
  });
  *queries = q[0];
  return stats::median(errs);
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 40));
  bench::print_banner(
      "E15", "Section 5.1.5 (link-query comparison vs [KLSC14])",
      "at equal target error, ours needs fewer total link queries; the "
      "advantage grows with |V| (burn-in amortization)");

  util::Table table({"|V|", "M (burn-in)", "ours: n", "ours queries",
                     "KLSC14: n", "KLSC14 queries", "KLSC14/ours"});
  // Odd sides: an even-sided torus is bipartite (lambda = 1) and a
  // non-lazy walk never mixes — the same reason the paper's Section 5.1
  // assumes a non-bipartite network.
  for (std::uint32_t side : {7u, 9u, 13u, 17u}) {
    const graph::Graph g = graph::make_torus_kd_graph(3, side);
    const double lambda = spectral::second_eigenvalue_magnitude(g);
    const auto m = static_cast<std::uint32_t>(
        core::burn_in_rounds(g.num_edges(), 0.1, lambda));

    // Ours: t = M counting rounds; double n until target error met.
    std::uint32_t ours_n = 4;
    std::uint64_t ours_queries = 0;
    while (ours_n < 4096) {
      const double err = ours_median_error(g, ours_n, m, m, trials, 0x15A,
                                           &ours_queries);
      if (err <= kTargetError) break;
      ours_n *= 2;
    }

    // Baseline: one-shot collisions after burn-in; double n similarly.
    std::uint32_t katzir_n = 4;
    std::uint64_t katzir_queries = 0;
    while (katzir_n < 65536) {
      const double err = katzir_median_error(g, katzir_n, m, trials, 0x15B,
                                             &katzir_queries);
      if (err <= kTargetError) break;
      katzir_n *= 2;
    }

    table.row()
        .cell(g.num_vertices())
        .cell(static_cast<std::uint64_t>(m))
        .cell(static_cast<std::uint64_t>(ours_n))
        .cell(util::format_count(ours_queries))
        .cell(static_cast<std::uint64_t>(katzir_n))
        .cell(util::format_count(katzir_queries))
        .cell(util::format_fixed(
            static_cast<double>(katzir_queries) /
                static_cast<double>(ours_queries),
            2))
        .commit();
  }
  std::cout << "\n";
  table.print_markdown(std::cout);
  std::cout << "\nBoth methods pay n*M burn-in queries; ours amortizes "
               "them over t = M counting rounds per walk, so fewer walks "
               "reach the same accuracy.\n";
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
