// E-SHARD — sharded-engine scaling and single-thread parity.
//
// Times the single-stream engine (sim::run_density_walk) against the
// sharded engine (sim::run_density_walk_sharded) at threads 1, 2, 4,
// and 8 on the 2-D torus across agent counts — with a vector-engine
// (sim::run_density_walk_vector) reference row per cell — printing a
// ns/agent-round table and writing BENCH_shard.json for the CI perf
// gate.  Before
// timing, every cell cross-checks that the sharded collision counts are
// bit-identical across all thread counts — a release-mode smoke test of
// the determinism contract that also catches worker-pool races the unit
// tests might miss.
//
// Flags:
//   --out=PATH        JSON output path (default BENCH_shard.json)
//   --tiny            CI smoke mode: small sizes, seconds total
//   --reps=N          timing repetitions, best-of (default 3; 2 in tiny)
//   --budget=STEPS    target agent-steps per timed run (default 2e7)
//
// Acceptance (the bench-smoke perf gate re-checks the first two from
// the JSON):
//   - sharded at threads=1 is within 1.10x of the single-stream engine
//     in every cell (no regression for serial users);
//   - thread counts agree bit-for-bit;
//   - on multi-core hosts, threads=8 at 100k agents shows the headline
//     speedup (>= 3x on >= 8 real cores).  Each record carries
//     "threads" and "hardware_threads" so a row from a 1-core container
//     is not mistaken for a scaling failure.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/torus2d.hpp"
#include "sim/density_sim.hpp"
#include "sim/sharded_walk.hpp"
#include "sim/vector_walk.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace antdense;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

struct Cell {
  std::string topology;
  std::uint64_t agents = 0;
  std::uint64_t rounds = 0;
  std::uint32_t shard_size = 0;
  double engine_ns = 0.0;                  // single-stream reference
  double vector_ns = 0.0;                  // engine=vector reference
  double sharded_ns[std::size(kThreadCounts)] = {};
  /// What actually ran: the engine clamps workers to the shard count,
  /// so a "t8" row on a 3-shard cell executes 3-wide.  Recorded in the
  /// JSON so trend readers are never misled.
  unsigned effective_threads[std::size(kThreadCounts)] = {};
};

/// Best-of-`reps` ns/agent-round for one stepping path.
template <typename RunFn>
double time_path(RunFn&& run, std::uint64_t agents, std::uint64_t rounds,
                 int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::WallTimer timer;
    run(static_cast<std::uint64_t>(rep));
    const double ns = timer.elapsed_seconds() * 1e9 /
                      (static_cast<double>(agents) * rounds);
    best = ns < best ? ns : best;
  }
  return best;
}

Cell measure_cell(const graph::Torus2D& topo, std::uint32_t agents,
                  std::uint32_t shard_size, std::uint64_t budget, int reps) {
  sim::DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, budget / agents));
  const std::uint32_t num_shards =
      sim::ShardPlan::make(agents, shard_size).num_shards();

  // Determinism cross-check at a reduced round count: the merged counts
  // must not depend on the worker count.  Only exercises the pool when
  // the cell has more than one shard (tiny mode guarantees it; in full
  // mode the small cells document production behavior, clamp included).
  {
    sim::DensityConfig check_cfg = cfg;
    check_cfg.rounds = std::max<std::uint32_t>(1, cfg.rounds / 16);
    const sim::DensityResult t1 = sim::run_density_walk_sharded(
        topo, check_cfg, 0x5EED,
        sim::ShardExec{.threads = 1, .shard_size = shard_size});
    for (unsigned threads : {2u, 8u}) {
      const sim::DensityResult tn = sim::run_density_walk_sharded(
          topo, check_cfg, 0x5EED,
          sim::ShardExec{.threads = threads, .shard_size = shard_size});
      if (tn.collision_counts != t1.collision_counts) {
        std::cerr << "FATAL: sharded counts diverged at threads=" << threads
                  << " (" << topo.name() << ", " << agents << " agents)\n";
        std::exit(1);
      }
    }
  }

  Cell cell;
  cell.topology = topo.name();
  cell.agents = agents;
  cell.rounds = cfg.rounds;
  cell.shard_size = shard_size;
  static volatile std::uint64_t sink = 0;
  cell.engine_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  cell.vector_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk_vector(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
    cell.effective_threads[t] =
        std::min<unsigned>(kThreadCounts[t], num_shards);
    cell.sharded_ns[t] = time_path(
        [&](std::uint64_t rep) {
          sink = sink +
                 sim::run_density_walk_sharded(
                     topo, cfg, 0xBE7C + rep,
                     sim::ShardExec{.threads = kThreadCounts[t],
                                    .shard_size = shard_size})
                     .collision_counts[0];
        },
        agents, cfg.rounds, reps);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool tiny = args.get_bool("tiny", false);
  const std::string out_path = args.get_string("out", "BENCH_shard.json");
  // The tiny mode still feeds the CI perf gate's hard 1.10x bound, so
  // it keeps a ~1M-agent-step budget and takes best-of-5: on a noisy
  // shared runner only a systematic slowdown survives five attempts —
  // upward jitter cannot fail the gate, a real regression still does.
  const std::uint64_t budget =
      args.get_uint("budget", tiny ? 1'000'000 : 20'000'000);
  const int reps = static_cast<int>(args.get_uint("reps", tiny ? 5 : 3));
  const unsigned hardware = util::default_thread_count();

  bench::print_banner(
      "E-SHARD",
      "sharded WalkEngine scaling vs the single-stream engine",
      "sharded threads=1 within 1.10x of engine everywhere; counts "
      "bit-identical across threads; >= 3x at threads=8 with 100k agents "
      "on >= 8 cores");
  std::cout << "hardware threads: " << hardware << "\n\n";

  // Every cell keeps the PRODUCTION shard grain — the perf gate must
  // measure the configuration serial users actually get, and the shard
  // grain is identity-bearing, so benching a special grain would time a
  // different engine.  Instead the tiny sizes start at 2 x the default
  // grain so even smoke cells are genuinely multi-shard: the worker
  // pool, the concurrent counter, and the determinism cross-check all
  // really run multi-threaded (one 4096-agent shard would silently
  // serialize them, turning the cross-check into a tautology).
  const std::vector<std::uint32_t> agent_counts =
      tiny ? std::vector<std::uint32_t>{2 * sim::ShardPlan::kDefaultShardSize,
                                        8 * sim::ShardPlan::kDefaultShardSize}
           : std::vector<std::uint32_t>{1000, 10000, 100000};

  std::vector<Cell> cells;
  for (std::uint32_t agents : agent_counts) {
    // Keep density ~0.1 so occupancy work is realistic (matches
    // bench_engine's cells for apples-to-apples "engine" rows).
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(agents) * 10.0)));
    cells.push_back(measure_cell(graph::Torus2D(side, side), agents,
                                 sim::ShardPlan::kDefaultShardSize, budget,
                                 reps));
  }

  util::Table table({"topology", "agents", "rounds", "engine ns/step",
                     "vector ns/step", "t1 ns/step", "t2 ns/step",
                     "t4 ns/step", "t8 ns/step", "t1/engine", "t8 speedup"});
  std::vector<bench::BenchRecord> records;
  for (const Cell& c : cells) {
    table.add_row(
        {c.topology, util::format_count(c.agents),
         util::format_count(c.rounds), util::format_fixed(c.engine_ns, 2),
         util::format_fixed(c.vector_ns, 2),
         util::format_fixed(c.sharded_ns[0], 2),
         util::format_fixed(c.sharded_ns[1], 2),
         util::format_fixed(c.sharded_ns[2], 2),
         util::format_fixed(c.sharded_ns[3], 2),
         util::format_fixed(c.sharded_ns[0] / c.engine_ns, 3),
         util::format_fixed(c.sharded_ns[0] / c.sharded_ns[3], 2) + "x"});
    records.push_back({"engine", c.topology, c.agents, c.rounds, c.engine_ns,
                       1, hardware});
    records.push_back({"vector", c.topology, c.agents, c.rounds, c.vector_ns,
                       1, hardware});
    for (std::size_t t = 0; t < std::size(kThreadCounts); ++t) {
      // name carries the requested tier; "threads" the width that
      // actually ran after the engine clamped to the shard count.
      records.push_back({"sharded/t" + std::to_string(kThreadCounts[t]),
                         c.topology, c.agents, c.rounds, c.sharded_ns[t],
                         c.effective_threads[t], hardware});
    }
  }
  table.print_markdown(std::cout);

  bench::write_json(out_path, records);
  std::cout << "\nwrote " << records.size() << " records to " << out_path
            << "\n";
  return 0;
}
