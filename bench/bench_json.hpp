// Machine-readable bench output: a flat list of timing records
// serialized as a JSON array, so CI can archive per-commit perf
// artifacts (BENCH_*.json) and trend them.
//
// Schema (one object per record):
//   { "name": str,                 // which stepping path, e.g. "engine"
//     "topology": str,             // Topology::name()
//     "agents": int,
//     "rounds": int,
//     "ns_per_agent_round": float,
//     "threads": int,              // optional: worker threads used
//     "hardware_threads": int,     // optional: cores on the bench host
//     "peak_rss_bytes": int }      // optional: process high-water RSS
//
// The optional fields (emitted only when a bench sets them nonzero)
// let multi-threaded benches like bench_shard record how wide they ran
// and how wide the host was — a "sharded/t8" row on a 4-core CI runner
// or a 1-core container is meaningless without them — and let benches
// over implicit topologies record the resident-set high-water mark, the
// number that proves an O(agents)-memory substrate stayed that way.
// peak_rss_bytes is the getrusage high-water mark at the time the cell
// finished, so within one process it is monotone across records.
//
// Serialization rides on the shared in-repo writer (util/json.hpp) — no
// external JSON dependency — which escapes strings and rejects
// non-finite numbers so the output always parses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace antdense::bench {

struct BenchRecord {
  std::string name;
  std::string topology;
  std::uint64_t agents = 0;
  std::uint64_t rounds = 0;
  double ns_per_agent_round = 0.0;
  std::uint64_t threads = 0;           // 0 = not recorded
  std::uint64_t hardware_threads = 0;  // 0 = not recorded
  std::uint64_t peak_rss_bytes = 0;    // 0 = not recorded
};

/// Process peak resident set in bytes via getrusage, or 0 when the
/// platform cannot report it.  Monotone over the process lifetime.
std::uint64_t peak_rss_bytes();

/// Serializes the records as a pretty-printed JSON array.  Throws
/// std::invalid_argument on non-finite timings (never emits NaN/Inf).
std::string to_json(const std::vector<BenchRecord>& records);

/// Writes to_json(records) to `path`, throwing std::runtime_error if the
/// file cannot be written.
void write_json(const std::string& path,
                const std::vector<BenchRecord>& records);

}  // namespace antdense::bench
