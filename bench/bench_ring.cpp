// E6 — Lemma 20 / Theorem 21: the ring (weak local mixing).
//
// Part 1: re-collision probability decays only as 1/sqrt(m+1)
//         (log-log slope ≈ -1/2 vs -1 on the 2-D torus).
// Part 2: density estimation error decays ~ t^{-1/4} (Theorem 21's
//         Chebyshev analysis) instead of ~t^{-1/2}.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

void recollision_part(const util::Args& args) {
  const auto nodes = args.get_uint("nodes", 1 << 16);
  const auto trials = args.get_uint("trials", 300000);
  const auto m_max = static_cast<std::uint32_t>(args.get_uint("mmax", 256));
  const graph::Ring ring(nodes);
  const auto curve =
      walk::measure_recollision_curve(ring, m_max, trials, 0xE6A);

  std::cout << "\n## Lemma 20: ring re-collision probability\n\n";
  util::Table table({"m", "P measured", "theory 1/sqrt(m+1)", "ratio"});
  std::vector<double> ms, ps;
  for (std::uint32_t m = 2; m <= m_max; m *= 2) {
    const double p = curve.probability[m];
    const double theory = 1.0 / std::sqrt(m + 1.0);
    table.row()
        .cell(m)
        .cell(util::format_sci(p, 3))
        .cell(util::format_sci(theory, 3))
        .cell(util::format_fixed(p / theory, 3))
        .commit();
    ms.push_back(m);
    ps.push_back(p);
  }
  table.print_markdown(std::cout);
  bench::print_power_fit("ring P[recollision] vs m (expect -0.5)", ms, ps);
}

void accuracy_part(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("atrials", 8));
  const double delta = 0.1;
  // Same A and same agent count on ring vs torus: compare decay of eps.
  const graph::Ring ring(4096);
  const graph::Torus2D torus(64, 64);
  constexpr std::uint32_t kAgents = 410;  // d ~ 0.1
  const double d = (kAgents - 1.0) / 4096.0;

  std::cout << "\n## Theorem 21: estimation accuracy, ring vs 2-D torus\n\n";
  util::Table table({"t", "ring eps@90%", "thm21 eps (c=1)",
                     "torus eps@90%", "ring/torus"});
  std::vector<double> ts, ring_eps, torus_eps;
  for (std::uint32_t t : bench::powers_of_two(256, 16384)) {
    const double er =
        bench::measure_epsilon(ring, kAgents, t, 1.0 - delta, 0xE6B, trials);
    const double et =
        bench::measure_epsilon(torus, kAgents, t, 1.0 - delta, 0xE6C, trials);
    table.row()
        .cell(t)
        .cell(util::format_fixed(er, 4))
        .cell(util::format_fixed(
            core::theorem21_epsilon_ring(t, d, delta), 4))
        .cell(util::format_fixed(et, 4))
        .cell(util::format_fixed(er / et, 2))
        .commit();
    ts.push_back(t);
    ring_eps.push_back(er);
    torus_eps.push_back(et);
  }
  table.print_markdown(std::cout);
  bench::print_power_fit("ring eps vs t (expect ~ -0.25)", ts, ring_eps);
  bench::print_power_fit("torus eps vs t (expect ~ -0.5)", ts, torus_eps);
}

void run(const util::Args& args) {
  bench::print_banner(
      "E6", "Lemma 20 / Theorem 21 (the ring: weak local mixing)",
      "re-collision slope about -1/2; estimation error decays about "
      "t^{-1/4} on the ring vs t^{-1/2} on the torus; ring strictly "
      "worse at every t");
  recollision_part(args);
  accuracy_part(args);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
