// E5 — Lemma 11 / Claim 14: moments of the pair collision count.
//
// Conditioned on a first collision, the k-th moment of the number of
// re-collisions over t rounds is bounded by k! w^k log^k(2t).  The bench
// samples the conditional collision count on the 2-D torus and reports
// the implied constant w at each (t, k); boundedness across the sweep is
// the acceptance criterion.  For contrast the same statistic is shown on
// the ring, where moments grow polynomially (t^{k/2}) instead.
#include "bench_common.hpp"

#include <cmath>

#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "stats/moments.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

template <graph::Topology T>
void moment_sweep(const T& topo, const std::string& label,
                  const std::vector<std::uint32_t>& ts, std::uint64_t trials,
                  std::uint64_t seed, bool log_envelope) {
  std::cout << "\n## " << label << "\n\n";
  util::Table table({"t", "k", "E[c^k | first collision]",
                     "envelope", "implied w"});
  for (std::uint32_t t : ts) {
    const auto counts =
        walk::pair_collision_counts_given_first(topo, t, trials, seed);
    const double log2t = std::log(2.0 * t);
    double factorial = 1.0;
    for (int k = 1; k <= 4; ++k) {
      factorial *= k;
      const double raw = stats::raw_moment(counts, k);
      const double base = log_envelope ? log2t : std::sqrt(t);
      const double envelope = factorial * std::pow(base, k);
      const double w = std::pow(raw / factorial, 1.0 / k) / base;
      table.row()
          .cell(t)
          .cell(k)
          .cell(util::format_fixed(raw, 3))
          .cell(util::format_fixed(envelope, 1))
          .cell(util::format_fixed(w, 4))
          .commit();
    }
  }
  table.print_markdown(std::cout);
}

void run(const util::Args& args) {
  const auto trials = args.get_uint("trials", 60000);
  bench::print_banner(
      "E5", "Lemma 11 / Claim 14 (collision moment bounds)",
      "torus: implied w level in t and k (k! w^k log^k 2t envelope "
      "tight); ring contrast: w level only against the sqrt(t)^k "
      "envelope");

  const graph::Torus2D torus(256, 256);
  moment_sweep(torus, "2-D torus: envelope k! (w log 2t)^k",
               {256u, 1024u, 4096u}, trials, 0xE5A, /*log_envelope=*/true);

  const graph::Ring ring(1u << 16);
  moment_sweep(ring, "Ring contrast: envelope k! (w sqrt t)^k",
               {256u, 1024u, 4096u}, trials, 0xE5B, /*log_envelope=*/false);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
