// E9 — Lemma 25 / Section 4.5: the hypercube.
//
// Despite its 1/log A spectral gap, local mixing *improves* with A:
// re-collision probability <= (9/10)^{m-1} + 1/sqrt(A).  The bench
// verifies the geometric decay, the 1/sqrt(A) floor scaling across two
// sizes, and that accuracy matches independent sampling.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/complete.hpp"
#include "graph/hypercube.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

void run(const util::Args& args) {
  const auto trials = args.get_uint("trials", 400000);
  bench::print_banner(
      "E9", "Lemma 25 / Section 4.5 (hypercube)",
      "re-collision below (9/10)^{m-1} + A^{-1/2}; floor shrinks with "
      "sqrt(A); accuracy matches the complete graph");

  for (std::uint32_t k : {12u, 16u}) {
    const graph::Hypercube cube(k);
    std::cout << "\n## " << cube.name() << " (A = " << cube.num_nodes()
              << ", 1/sqrt(A) = "
              << util::format_sci(1.0 / std::sqrt(cube.num_nodes()), 2)
              << ")\n\n";
    const std::uint32_t m_max = 48;
    const auto curve =
        walk::measure_recollision_curve(cube, m_max, trials, 0xE9A + k);
    util::Table table(
        {"m", "P measured", "bound (9/10)^{m-1}+A^{-1/2}", "measured/bound"});
    for (std::uint32_t m = 1; m <= m_max;
         m = m < 8 ? m + 1 : m * 2) {
      const double p = curve.probability[m];
      const double bound = core::beta_hypercube(m, cube.num_nodes());
      table.row()
          .cell(m)
          .cell(util::format_sci(p, 3))
          .cell(util::format_sci(bound, 3))
          .cell(util::format_fixed(p / bound, 3))
          .commit();
    }
    table.print_markdown(std::cout);
  }

  const auto atrials = static_cast<std::uint32_t>(args.get_uint("atrials", 8));
  const graph::Hypercube cube12(12);
  const graph::CompleteGraph complete(4096);
  constexpr std::uint32_t kAgents = 410;
  std::cout << "\n## Accuracy vs complete graph (A=4096, d ~ 0.1)\n\n";
  util::Table table({"t", "hypercube eps@90%", "complete eps@90%", "ratio"});
  for (std::uint32_t t : bench::powers_of_two(128, 2048)) {
    const double eh =
        bench::measure_epsilon(cube12, kAgents, t, 0.9, 0xE9B, atrials);
    const double ec =
        bench::measure_epsilon(complete, kAgents, t, 0.9, 0xE9C, atrials);
    table.row()
        .cell(t)
        .cell(util::format_fixed(eh, 4))
        .cell(util::format_fixed(ec, 4))
        .cell(util::format_fixed(eh / ec, 2))
        .commit();
  }
  table.print_markdown(std::cout);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
