// E8 — Lemma 23 / Section 4.4: regular expanders.
//
// λ is *measured* by power iteration on the built random-regular graph,
// then the re-collision curve is compared against λ^m + 1/A (geometric
// decay to the uniform floor), and Algorithm 1 accuracy is compared to
// the complete graph (theory: within O(1/(1-λ)^2)).
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "spectral/walk_matrix.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

void run(const util::Args& args) {
  const auto nodes = static_cast<std::uint32_t>(args.get_uint("nodes", 4096));
  const auto trials = args.get_uint("trials", 400000);
  bench::print_banner(
      "E8", "Lemma 23 / Section 4.4 (regular expanders)",
      "re-collision upper-bounded by lambda^m + 1/A with measured "
      "lambda; semilog decay rate <= lambda; accuracy within a small "
      "factor of the complete graph");

  for (std::uint32_t degree : {4u, 8u}) {
    const graph::Graph g =
        graph::make_random_regular_graph(nodes, degree, 0xE8 + degree);
    const double lambda = spectral::second_eigenvalue_magnitude(g);
    const graph::ExplicitTopology topo(g, "random-regular");
    std::cout << "\n## " << topo.name() << ", measured lambda = "
              << util::format_fixed(lambda, 4)
              << " (Friedman ~ 2*sqrt(d-1)/d = "
              << util::format_fixed(2.0 * std::sqrt(degree - 1.0) / degree, 4)
              << ")\n\n";

    const std::uint32_t m_max = 24;
    const auto curve =
        walk::measure_recollision_curve(topo, m_max, trials, 0xE8A + degree);
    util::Table table({"m", "P measured", "bound lambda^m + 1/A",
                       "measured/bound"});
    std::vector<double> ms, ps;
    for (std::uint32_t m = 1; m <= m_max; m = m < 8 ? m + 1 : m * 2) {
      const double p = curve.probability[m];
      const double bound = core::beta_expander(m, lambda, nodes);
      table.row()
          .cell(m)
          .cell(util::format_sci(p, 3))
          .cell(util::format_sci(bound, 3))
          .cell(util::format_fixed(p / bound, 3))
          .commit();
      if (p > 1.5 / nodes) {  // pre-floor regime only for the decay fit
        ms.push_back(m);
        ps.push_back(p - 1.0 / nodes);
      }
    }
    table.print_markdown(std::cout);
    if (ms.size() >= 2) {
      const auto fit = stats::semilog_fit(ms, ps);
      std::cout << "\nsemilog decay rate exp(slope) = "
                << util::format_fixed(std::exp(fit.slope), 4)
                << " (must be <= lambda = " << util::format_fixed(lambda, 4)
                << ")\n";
    }
  }

  // Accuracy vs the complete graph.
  const auto atrials = static_cast<std::uint32_t>(args.get_uint("atrials", 8));
  const graph::Graph g8 = graph::make_random_regular_graph(nodes, 8, 0xE8F);
  const graph::ExplicitTopology expander(g8, "random-regular");
  const graph::CompleteGraph complete(nodes);
  constexpr std::uint32_t kAgents = 410;
  std::cout << "\n## Accuracy vs complete graph (d ~ 0.1)\n\n";
  util::Table table({"t", "expander eps@90%", "complete eps@90%", "ratio"});
  for (std::uint32_t t : bench::powers_of_two(128, 2048)) {
    const double ee =
        bench::measure_epsilon(expander, kAgents, t, 0.9, 0xE8B, atrials);
    const double ec =
        bench::measure_epsilon(complete, kAgents, t, 0.9, 0xE8C, atrials);
    table.row()
        .cell(t)
        .cell(util::format_fixed(ee, 4))
        .cell(util::format_fixed(ec, 4))
        .cell(util::format_fixed(ee / ec, 2))
        .commit();
  }
  table.print_markdown(std::cout);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
