// E10 — Theorem 27: network size estimation accuracy.
//
// With idealized stationary starts, Algorithm 2's relative error should
// decay like 1/sqrt(n²t) (fit slope ≈ -1/2 against the budget), and the
// theory epsilon from Theorem 27 should upper-envelope the measured
// median error at matching (n, t).  Run on a 3-D torus (slow global
// mixing, strong local mixing) and a random-regular expander.
#include "bench_common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "graph/generators.hpp"
#include "netsize/size_estimator.hpp"
#include "spectral/walk_matrix.hpp"
#include "stats/quantile.hpp"
#include "util/parallel.hpp"

namespace antdense {
namespace {

double median_relative_error(const graph::Graph& g, std::uint32_t walks,
                             std::uint32_t rounds, std::uint32_t trials,
                             std::uint64_t seed) {
  const double truth = g.num_vertices();
  std::vector<double> errs(trials, 1e9);
  util::parallel_for(trials, [&](std::size_t trial) {
    netsize::SizeEstimationConfig cfg;
    cfg.num_walks = walks;
    cfg.rounds = rounds;
    cfg.start_stationary = true;
    const auto r = netsize::estimate_network_size(
        g, cfg, rng::derive_seed(seed, trial));
    if (r.saw_collision) {
      errs[trial] = std::fabs(r.size_estimate - truth) / truth;
    }
  });
  return stats::median(errs);
}

void sweep(const graph::Graph& g, const std::string& label, double b_of_t,
           std::uint32_t trials, std::uint64_t seed) {
  std::cout << "\n## " << label << " (|V| = " << g.num_vertices()
            << ", avg deg = " << util::format_fixed(g.average_degree(), 2)
            << ")\n\n";
  util::Table table({"walks n", "rounds t", "n^2 t", "median rel err",
                     "thm27 eps (delta=0.5)"});
  std::vector<double> budgets, errs;
  const struct {
    std::uint32_t n, t;
  } configs[] = {{16, 16}, {16, 64}, {32, 64}, {64, 64}, {64, 256},
                 {128, 256}};
  for (const auto& c : configs) {
    const double err = median_relative_error(g, c.n, c.t, trials, seed);
    const double budget = static_cast<double>(c.n) * c.n * c.t;
    const double theory = core::theorem27_epsilon(
        c.n, c.t, 0.5, b_of_t, g.average_degree(), g.num_vertices());
    table.row()
        .cell(static_cast<std::uint64_t>(c.n))
        .cell(static_cast<std::uint64_t>(c.t))
        .cell(util::format_count(static_cast<std::uint64_t>(budget)))
        .cell(util::format_fixed(err, 4))
        .cell(util::format_fixed(theory, 4))
        .commit();
    budgets.push_back(budget);
    errs.push_back(err);
  }
  table.print_markdown(std::cout);
  bench::print_power_fit("median err vs n^2 t (expect ~ -0.5)", budgets,
                         errs);
}

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 60));
  bench::print_banner(
      "E10", "Theorem 27 (random-walk network size estimation)",
      "median relative error decays ~ (n^2 t)^{-1/2}; Theorem 27 epsilon "
      "at delta=0.5 envelopes the measured median");

  const graph::Graph torus3 = graph::make_torus_kd_graph(3, 10);  // 1000
  sweep(torus3, "3-D torus", core::b_torus_kd(256, 3, 1000), trials, 0x10A);

  const graph::Graph rr = graph::make_random_regular_graph(1000, 8, 0x10B);
  const double lambda = spectral::second_eigenvalue_magnitude(rr);
  sweep(rr, "random 8-regular expander (lambda = " +
                util::format_fixed(lambda, 3) + ")",
        core::b_expander(256, lambda, 1000), trials, 0x10C);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
