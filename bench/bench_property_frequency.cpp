// E14 — Section 5.2: relative property frequency f_P = d_P / d.
//
// With t rounds sized for the *property* density d_P (the rarer class
// dominates the budget), f~_P = d~_P / d~ should be a (1 ± O(eps))
// estimate.  Sweep f_P and t; report the pooled 90%-quantile of the
// relative frequency error.
#include "bench_common.hpp"

#include <cmath>

#include "core/property_frequency.hpp"
#include "graph/torus2d.hpp"
#include "stats/concentration.hpp"

namespace antdense {
namespace {

void run(const util::Args& args) {
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 8));
  bench::print_banner(
      "E14", "Section 5.2 (robot swarm property frequency)",
      "f~ error decays with t at every f_P; rarer properties need more "
      "rounds (error at fixed t grows as f_P shrinks)");

  const graph::Torus2D torus(64, 64);
  constexpr std::uint32_t kAgents = 410;  // d ~ 0.1
  util::Table table({"f_P", "t", "f error @90%", "d_P error @90%"});
  for (double f_target : {0.5, 0.25, 0.1}) {
    const auto property_count =
        static_cast<std::uint32_t>(f_target * kAgents);
    const double true_f =
        static_cast<double>(property_count) / kAgents;
    for (std::uint32_t t : bench::powers_of_two(256, 4096)) {
      std::vector<double> f_samples, dp_samples;
      double dp_truth = 0.0;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        const auto r = core::estimate_property_frequency(
            torus, kAgents, property_count, t,
            rng::derive_seed(0x14A, t, trial));
        dp_truth = r.true_property_density;
        for (std::size_t i = 0; i < r.frequency_estimates.size(); ++i) {
          if (r.density_estimates[i] > 0.0) {
            f_samples.push_back(r.frequency_estimates[i]);
            dp_samples.push_back(r.property_estimates[i]);
          }
        }
      }
      table.row()
          .cell(util::format_fixed(true_f, 3))
          .cell(t)
          .cell(util::format_fixed(
              stats::epsilon_at_confidence(f_samples, true_f, 0.9), 4))
          .cell(util::format_fixed(
              stats::epsilon_at_confidence(dp_samples, dp_truth, 0.9), 4))
          .commit();
    }
  }
  std::cout << "\n";
  table.print_markdown(std::cout);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
