// E3 — Lemma 4: re-collision probability on the 2-D torus.
//
// Two walkers starting at the same node re-collide at step m with
// probability O(1/(m+1) + 1/A).  The table reports the measured curve
// against the theory overlay; the log-log fit over the pre-floor range
// should have slope near -1.
#include "bench_common.hpp"

#include "core/bounds.hpp"
#include "graph/torus2d.hpp"
#include "stats/bootstrap.hpp"
#include "walk/recollision.hpp"

namespace antdense {
namespace {

void run(const util::Args& args) {
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 256));
  const auto trials = args.get_uint("trials", 300000);
  const auto m_max = static_cast<std::uint32_t>(args.get_uint("mmax", 256));

  bench::print_banner(
      "E3", "Lemma 4 (re-collision probability bound, 2-D torus)",
      "P[C at m] tracks 1/(m+1) + 1/A; log-log slope about -1 before the "
      "1/A floor");

  const graph::Torus2D torus(side, side);
  const auto curve =
      walk::measure_recollision_curve(torus, m_max, trials, 0xE3);

  util::Table table({"m", "P measured", "95% CI", "theory 1/(m+1)+1/A",
                     "ratio"});
  std::vector<double> ms, ps;
  for (std::uint32_t m = 1; m <= m_max; m *= 2) {
    const double p = curve.probability[m];
    const auto ci = stats::wilson_interval(curve.hits[m], curve.trials);
    const double theory = core::beta_torus2d(m, torus.num_nodes());
    table.row()
        .cell(m)
        .cell(util::format_sci(p, 3))
        .cell("[" + util::format_sci(ci.lower, 2) + ", " +
              util::format_sci(ci.upper, 2) + "]")
        .cell(util::format_sci(theory, 3))
        .cell(util::format_fixed(p / theory, 3))
        .commit();
    if (m >= 2 && p > 0.0) {
      ms.push_back(m);
      ps.push_back(p);
    }
  }
  std::cout << "\n";
  util::print_note(std::cout, "torus", torus.name());
  util::print_note(std::cout, "trials", util::format_count(trials));
  std::cout << "\n";
  table.print_markdown(std::cout);
  bench::print_power_fit("P[recollision] vs m", ms, ps);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed "
            << antdense::util::format_fixed(timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
