// E-ENGINE — legacy-vs-engine-vs-type-erased stepping throughput.
//
// Times the frozen pre-engine round loop (sim/legacy_reference.hpp)
// against the observer-based WalkEngine (sim/walk_engine.hpp, via the
// run_density_walk wrapper), against the vector engine
// (sim/vector_walk.hpp: wide-lane RNG, branchless word kernels, dense
// collision counting), and against the scalar engine driven through a
// type-erased graph::AnyTopology handle (the scenario layer's hot
// path), across agent counts and topologies, printing a ns/agent-round
// table and writing the same records to a JSON artifact (default
// BENCH_engine.json) for CI trending.  Every record stamps the host's
// hardware_threads so perf numbers carry their context.
//
// Besides the four explicit families, one cell per implicit family
// (rgg2d / gnp / ba) rides along with a step budget scaled to its
// honest per-query cost — O(deg) cell-window scan for rgg2d, O(n) row
// scan for gnp, O(m) edge scan for ba — plus a resident-set column
// that documents the O(agents) memory the implicit layer promises.
//
// A fifth path, "engine+obs", re-times the scalar engine with the full
// telemetry ambient installed (metrics registry + trace recorder), so
// the cost of observability is a trended number instead of folklore.
// The telemetry-DISABLED gate lives in CI: with no ambient installed,
// the engine rows must stay within 1.05x of the frozen legacy loop on
// the ring/torus2d cells — the dormant probes must cost nothing.
//
// Flags:
//   --out=PATH        JSON output path (default BENCH_engine.json)
//   --tiny            CI smoke mode: small sizes, seconds total
//   --reps=N          timing repetitions, best-of (default 3)
//   --budget=STEPS    target agent-steps per timed run (default 2e7)
//
// Acceptance: the engine path is no slower than the legacy loop at 10k
// agents on the 2-D torus (the batched torus stepping usually makes it
// faster), the anytopology path is within 10% of the engine path there
// (dispatch is per round, not per step), and the JSON must parse and
// carry one record per (path, topology, agents) cell.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/any_topology.hpp"
#include "graph/ba.hpp"
#include "graph/gnp.hpp"
#include "graph/hypercube.hpp"
#include "graph/rgg2d.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/density_sim.hpp"
#include "sim/dynamic_world.hpp"
#include "sim/legacy_reference.hpp"
#include "sim/vector_walk.hpp"
#include "util/table.hpp"

namespace {

using namespace antdense;

struct Cell {
  std::string topology;
  std::uint64_t agents = 0;
  std::uint64_t rounds = 0;
  double legacy_ns = 0.0;
  double engine_ns = 0.0;
  double obs_ns = 0.0;  // engine with metrics + tracing ambient installed
  double vector_ns = 0.0;  // engine=vector (sim/vector_walk.hpp)
  double any_ns = 0.0;  // engine driven through graph::AnyTopology
  double dyn_ns = 0.0;  // AnyTopology engine + attached zero-rate dynamics
  std::uint64_t peak_rss = 0;  // process high-water RSS after this cell
};

/// Best-of-`reps` ns/agent-round for one stepping path.
template <typename RunFn>
double time_path(RunFn&& run, std::uint64_t agents, std::uint64_t rounds,
                 int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::WallTimer timer;
    run(static_cast<std::uint64_t>(rep));
    const double ns = timer.elapsed_seconds() * 1e9 /
                      (static_cast<double>(agents) * rounds);
    best = ns < best ? ns : best;
  }
  return best;
}

template <graph::Topology T>
Cell measure_cell(const T& topo, std::uint32_t agents, std::uint64_t budget,
                  int reps) {
  sim::DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, budget / agents));

  Cell cell;
  cell.topology = topo.name();
  cell.agents = agents;
  cell.rounds = cfg.rounds;
  // DoNotOptimize equivalent: fold a count into a volatile sink.
  static volatile std::uint64_t sink = 0;
  cell.legacy_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::legacy::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  cell.engine_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  // Same engine, full telemetry ambient: counters, phase histograms,
  // and the trace ring all live.  The registry persists across reps —
  // exactly how a long-lived process accumulates — so instrument
  // lookup happens once per run via the EngineTap, not per rep.
  obs::MetricsRegistry obs_metrics;
  obs::TraceRecorder obs_trace;
  obs::Telemetry obs_bundle{&obs_metrics, &obs_trace};
  cell.obs_ns = time_path(
      [&](std::uint64_t rep) {
        obs::ScopedTelemetry ambient(&obs_bundle);
        sink = sink + sim::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  cell.vector_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk_vector(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  const graph::AnyTopology any(topo);
  cell.any_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk(any, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
#if ANTDENSE_DYNAMICS
  // The dynamics layer's overhead row: the same AnyTopology walk with a
  // zero-rate churn model attached — the mutation phase fires every
  // round but mutates nothing, an upper bound on what the layer costs a
  // scenario that never asked for dynamics (whose cfg.dynamics is null
  // and which skips even this).  CI gates dyn/any <= 1.02x on the
  // ring/torus2d cells.
  sim::ChurnDynamics idle_dyn(any, 0.0, 0.0, 10, 0);
  cell.dyn_ns = time_path(
      [&](std::uint64_t rep) {
        const std::vector<double> est =
            sim::run_dynamic_density_walk(any, cfg, idle_dyn, 0xBE7C + rep);
        sink = sink + static_cast<std::uint64_t>(est[0] * 1e9);
      },
      agents, cfg.rounds, reps);
#else
  cell.dyn_ns = cell.any_ns;  // layer compiled out: overhead is zero
#endif
  cell.peak_rss = bench::peak_rss_bytes();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool tiny = args.get_bool("tiny", false);
  const std::string out_path = args.get_string("out", "BENCH_engine.json");
  const std::uint64_t budget =
      args.get_uint("budget", tiny ? 200'000 : 20'000'000);
  // Best-of-3 even in tiny mode: the tiny run feeds the CI vector-vs-
  // engine perf gate, and best-of filtering is what keeps a noisy
  // shared runner from failing it on upward jitter.
  const int reps = static_cast<int>(args.get_uint("reps", 3));

  bench::print_banner(
      "E-ENGINE",
      "unified WalkEngine vs the frozen legacy round loop vs AnyTopology",
      "engine ns/agent-round <= legacy at 10k agents on torus2d; "
      "anytopology within 10% of engine there; dormant telemetry keeps "
      "engine within 1.05x of legacy on ring/torus2d; the dynamics-"
      "capable engine keeps engine within 1.02x of legacy there too; "
      "BENCH_engine.json parses");

  const std::vector<std::uint32_t> agent_counts =
      tiny ? std::vector<std::uint32_t>{200, 1000}
           : std::vector<std::uint32_t>{1000, 10000, 100000};

  std::vector<Cell> cells;
  for (std::uint32_t agents : agent_counts) {
    // Keep density ~0.1 on the tori so occupancy work is realistic.
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(agents) * 10.0)));
    cells.push_back(
        measure_cell(graph::Torus2D(side, side), agents, budget, reps));
    cells.push_back(
        measure_cell(graph::Ring(10 * agents), agents, budget, reps));
    std::uint32_t k = 1;
    while ((1ull << k) < 10ull * agents) {
      ++k;
    }
    cells.push_back(measure_cell(graph::Hypercube(k), agents, budget, reps));
    const auto side3 = static_cast<std::uint32_t>(
        std::ceil(std::cbrt(static_cast<double>(agents) * 10.0)));
    cells.push_back(
        measure_cell(graph::TorusKD(3, side3), agents, budget, reps));
  }

  // One cell per implicit family, step budget scaled to the family's
  // per-query cost so each cell times in seconds, not minutes.  rgg2d
  // answers a neighbor query from an O(deg) cell-window scan, so it
  // takes the full budget; gnp scans its whole O(n) row and ba its
  // whole O(m) edge list per query, so their budgets shrink to match.
  {
    const std::uint32_t implicit_agents = tiny ? 200 : 1000;
    const auto rgg_nodes = static_cast<std::uint64_t>(implicit_agents) * 10;
    // ~8 expected neighbors; rounded so the topology label stays short.
    const double radius =
        std::round(1e4 * std::sqrt(8.0 / (3.14159265358979323846 *
                                          static_cast<double>(rgg_nodes)))) /
        1e4;
    cells.push_back(measure_cell(graph::Rgg2D(rgg_nodes, radius, 7),
                                 implicit_agents,
                                 std::max<std::uint64_t>(1, budget / 10),
                                 reps));
    cells.push_back(measure_cell(graph::Gnp(2000, 0.004, 7),
                                 implicit_agents,
                                 std::max<std::uint64_t>(1, budget / 100),
                                 reps));
    cells.push_back(measure_cell(graph::Ba(2000, 4, 7), implicit_agents,
                                 std::max<std::uint64_t>(1, budget / 400),
                                 reps));
  }

  util::Table table({"topology", "agents", "rounds", "legacy ns/step",
                     "engine ns/step", "obs ns/step", "vector ns/step",
                     "any ns/step", "dyn ns/step", "obs ratio",
                     "vector ratio", "erasure overhead", "dyn overhead",
                     "peak rss MiB"});
  std::vector<bench::BenchRecord> records;
  for (const Cell& c : cells) {
    table.add_row({c.topology, util::format_count(c.agents),
                   util::format_count(c.rounds),
                   util::format_fixed(c.legacy_ns, 2),
                   util::format_fixed(c.engine_ns, 2),
                   util::format_fixed(c.obs_ns, 2),
                   util::format_fixed(c.vector_ns, 2),
                   util::format_fixed(c.any_ns, 2),
                   util::format_fixed(c.dyn_ns, 2),
                   util::format_fixed(c.obs_ns / c.engine_ns, 3),
                   util::format_fixed(c.vector_ns / c.engine_ns, 3),
                   util::format_fixed(c.any_ns / c.engine_ns, 3),
                   util::format_fixed(c.dyn_ns / c.any_ns, 3),
                   util::format_fixed(
                       static_cast<double>(c.peak_rss) / (1024.0 * 1024.0),
                       1)});
    bench::BenchRecord base;
    base.topology = c.topology;
    base.agents = c.agents;
    base.rounds = c.rounds;
    base.peak_rss_bytes = c.peak_rss;
    // Honest host width: perf claims in this artifact are meaningless
    // without knowing how wide the bench machine actually was.
    base.hardware_threads = std::thread::hardware_concurrency();
    base.name = "legacy";
    base.ns_per_agent_round = c.legacy_ns;
    records.push_back(base);
    base.name = "engine";
    base.ns_per_agent_round = c.engine_ns;
    records.push_back(base);
    base.name = "engine+obs";
    base.ns_per_agent_round = c.obs_ns;
    records.push_back(base);
    base.name = "vector";
    base.ns_per_agent_round = c.vector_ns;
    records.push_back(base);
    base.name = "anytopology";
    base.ns_per_agent_round = c.any_ns;
    records.push_back(base);
    base.name = "any+dyn0";
    base.ns_per_agent_round = c.dyn_ns;
    records.push_back(base);
  }
  table.print_markdown(std::cout);

  bench::write_json(out_path, records);
  std::cout << "\nwrote " << records.size() << " records to " << out_path
            << "\n";
  return 0;
}
