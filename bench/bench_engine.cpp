// E-ENGINE — legacy-vs-engine-vs-type-erased stepping throughput.
//
// Times the frozen pre-engine round loop (sim/legacy_reference.hpp)
// against the observer-based WalkEngine (sim/walk_engine.hpp, via the
// run_density_walk wrapper) and against the same engine driven through a
// type-erased graph::AnyTopology handle (the scenario layer's hot
// path), across agent counts and topologies, printing a ns/agent-round
// table and writing the same records to a JSON artifact (default
// BENCH_engine.json) for CI trending.
//
// Flags:
//   --out=PATH        JSON output path (default BENCH_engine.json)
//   --tiny            CI smoke mode: small sizes, one rep, seconds total
//   --reps=N          timing repetitions, best-of (default 3; 1 in tiny)
//   --budget=STEPS    target agent-steps per timed run (default 2e7)
//
// Acceptance: the engine path is no slower than the legacy loop at 10k
// agents on the 2-D torus (the batched torus stepping usually makes it
// faster), the anytopology path is within 10% of the engine path there
// (dispatch is per round, not per step), and the JSON must parse and
// carry one record per (path, topology, agents) cell.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "graph/any_topology.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "sim/density_sim.hpp"
#include "sim/legacy_reference.hpp"
#include "util/table.hpp"

namespace {

using namespace antdense;

struct Cell {
  std::string topology;
  std::uint64_t agents = 0;
  std::uint64_t rounds = 0;
  double legacy_ns = 0.0;
  double engine_ns = 0.0;
  double any_ns = 0.0;  // engine driven through graph::AnyTopology
};

/// Best-of-`reps` ns/agent-round for one stepping path.
template <typename RunFn>
double time_path(RunFn&& run, std::uint64_t agents, std::uint64_t rounds,
                 int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::WallTimer timer;
    run(static_cast<std::uint64_t>(rep));
    const double ns = timer.elapsed_seconds() * 1e9 /
                      (static_cast<double>(agents) * rounds);
    best = ns < best ? ns : best;
  }
  return best;
}

template <graph::Topology T>
Cell measure_cell(const T& topo, std::uint32_t agents, std::uint64_t budget,
                  int reps) {
  sim::DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, budget / agents));

  Cell cell;
  cell.topology = topo.name();
  cell.agents = agents;
  cell.rounds = cfg.rounds;
  // DoNotOptimize equivalent: fold a count into a volatile sink.
  static volatile std::uint64_t sink = 0;
  cell.legacy_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::legacy::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  cell.engine_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk(topo, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  const graph::AnyTopology any(topo);
  cell.any_ns = time_path(
      [&](std::uint64_t rep) {
        sink = sink + sim::run_density_walk(any, cfg, 0xBE7C + rep)
                          .collision_counts[0];
      },
      agents, cfg.rounds, reps);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool tiny = args.get_bool("tiny", false);
  const std::string out_path = args.get_string("out", "BENCH_engine.json");
  const std::uint64_t budget =
      args.get_uint("budget", tiny ? 200'000 : 20'000'000);
  const int reps = static_cast<int>(args.get_uint("reps", tiny ? 1 : 3));

  bench::print_banner(
      "E-ENGINE",
      "unified WalkEngine vs the frozen legacy round loop vs AnyTopology",
      "engine ns/agent-round <= legacy at 10k agents on torus2d; "
      "anytopology within 10% of engine there; BENCH_engine.json parses");

  const std::vector<std::uint32_t> agent_counts =
      tiny ? std::vector<std::uint32_t>{200, 1000}
           : std::vector<std::uint32_t>{1000, 10000, 100000};

  std::vector<Cell> cells;
  for (std::uint32_t agents : agent_counts) {
    // Keep density ~0.1 on the tori so occupancy work is realistic.
    const auto side = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(agents) * 10.0)));
    cells.push_back(
        measure_cell(graph::Torus2D(side, side), agents, budget, reps));
    cells.push_back(
        measure_cell(graph::Ring(10 * agents), agents, budget, reps));
    std::uint32_t k = 1;
    while ((1ull << k) < 10ull * agents) {
      ++k;
    }
    cells.push_back(measure_cell(graph::Hypercube(k), agents, budget, reps));
    const auto side3 = static_cast<std::uint32_t>(
        std::ceil(std::cbrt(static_cast<double>(agents) * 10.0)));
    cells.push_back(
        measure_cell(graph::TorusKD(3, side3), agents, budget, reps));
  }

  util::Table table({"topology", "agents", "rounds", "legacy ns/step",
                     "engine ns/step", "any ns/step", "speedup",
                     "erasure overhead"});
  std::vector<bench::BenchRecord> records;
  for (const Cell& c : cells) {
    table.add_row({c.topology, util::format_count(c.agents),
                   util::format_count(c.rounds),
                   util::format_fixed(c.legacy_ns, 2),
                   util::format_fixed(c.engine_ns, 2),
                   util::format_fixed(c.any_ns, 2),
                   util::format_fixed(c.legacy_ns / c.engine_ns, 3),
                   util::format_fixed(c.any_ns / c.engine_ns, 3)});
    records.push_back({"legacy", c.topology, c.agents, c.rounds,
                       c.legacy_ns});
    records.push_back({"engine", c.topology, c.agents, c.rounds,
                       c.engine_ns});
    records.push_back({"anytopology", c.topology, c.agents, c.rounds,
                       c.any_ns});
  }
  table.print_markdown(std::cout);

  bench::write_json(out_path, records);
  std::cout << "\nwrote " << records.size() << " records to " << out_path
            << "\n";
  return 0;
}
