// E17 — engine microbenchmarks (google-benchmark): raw step throughput
// per topology, collision-counter operations, and full simulator rounds.
// These are the numbers that size every other experiment's runtime.
#include <benchmark/benchmark.h>

#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "sim/density_sim.hpp"

namespace antdense {
namespace {

void BM_Xoshiro256pp(benchmark::State& state) {
  rng::Xoshiro256pp gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen());
  }
}
BENCHMARK(BM_Xoshiro256pp);

template <typename T>
void walk_bench(benchmark::State& state, const T& topo) {
  rng::Xoshiro256pp gen(2);
  auto u = topo.random_node(gen);
  for (auto _ : state) {
    u = topo.random_neighbor(u, gen);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StepTorus2D(benchmark::State& state) {
  walk_bench(state, graph::Torus2D(1024, 1024));
}
BENCHMARK(BM_StepTorus2D);

void BM_StepRing(benchmark::State& state) {
  walk_bench(state, graph::Ring(1 << 20));
}
BENCHMARK(BM_StepRing);

void BM_StepTorus4D(benchmark::State& state) {
  walk_bench(state, graph::TorusKD(4, 32));
}
BENCHMARK(BM_StepTorus4D);

void BM_StepHypercube(benchmark::State& state) {
  walk_bench(state, graph::Hypercube(20));
}
BENCHMARK(BM_StepHypercube);

void BM_StepComplete(benchmark::State& state) {
  walk_bench(state, graph::CompleteGraph(1 << 20));
}
BENCHMARK(BM_StepComplete);

void BM_StepExplicitRegular(benchmark::State& state) {
  static const graph::Graph g = graph::make_random_regular_graph(4096, 8, 3);
  walk_bench(state, graph::ExplicitTopology(g, "rr"));
}
BENCHMARK(BM_StepExplicitRegular);

void BM_CollisionCounterAdd(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  sim::CollisionCounter counter(agents);
  rng::Xoshiro256pp gen(4);
  std::vector<std::uint64_t> keys(agents);
  for (auto& k : keys) {
    k = gen();
  }
  for (auto _ : state) {
    counter.begin_round();
    for (std::uint64_t k : keys) {
      benchmark::DoNotOptimize(counter.add(k));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(agents));
}
BENCHMARK(BM_CollisionCounterAdd)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DensitySimRound(benchmark::State& state) {
  const auto agents = static_cast<std::uint32_t>(state.range(0));
  const graph::Torus2D torus(256, 256);
  sim::DensityConfig cfg;
  cfg.num_agents = agents;
  cfg.rounds = 64;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_density_walk(torus, cfg, seed++));
  }
  // agent-rounds per second.
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(agents));
}
BENCHMARK(BM_DensitySimRound)->Arg(512)->Arg(6554);

}  // namespace
}  // namespace antdense

BENCHMARK_MAIN();
