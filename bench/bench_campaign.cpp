// E-CAMPAIGN — campaign scheduler throughput across worker counts.
//
// Runs one fixed campaign (a topology x agents x rounds grid of small
// density experiments, expanded in-process, journaled to a scratch
// file) at threads = 1, 4, and hardware_concurrency, and reports
// experiments/sec plus the usual ns/agent-round normalization.  The
// scheduler's contract — journals bit-identical across worker counts —
// is asserted here too, so the bench doubles as a smoke check on real
// (non-tiny) campaign sizes.
//
// Flags:
//   --out=PATH        JSON output path (default BENCH_campaign.json)
//   --tiny            CI smoke mode: small grid, seconds total
//   --experiments=N   approximate campaign size (default 96; 24 tiny)
//
// JSON schema: bench_json records, name "scheduler/t<N>", topology
// "campaign-grid", with agents/rounds the per-experiment values and
// ns_per_agent_round = elapsed_ns / (experiments * agents * rounds).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "campaign/journal.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace antdense;

/// A topologies x agent-counts x round-budgets grid of density
/// experiments: 2 topologies x `agent_steps` agent counts x 2 budgets.
campaign::CampaignSpec make_campaign(std::uint64_t agent_steps,
                                     std::uint32_t agents,
                                     std::uint32_t rounds) {
  std::ostringstream agents_list;
  for (std::uint64_t i = 0; i < agent_steps; ++i) {
    agents_list << (i == 0 ? "" : ", ") << agents + i;
  }
  const std::string text = R"({
    "name": "bench",
    "seed": 9,
    "base": {"trials": 1},
    "axes": [
      {"kind": "grid", "key": "topology",
       "values": ["torus2d:32x32", "ring:1024"]},
      {"kind": "grid", "key": "agents", "values": [)" +
                           agents_list.str() + R"(]},
      {"kind": "grid", "key": "rounds", "values": [)" +
                           std::to_string(rounds) + ", " +
                           std::to_string(2 * rounds) + R"(]}
    ]})";
  return campaign::CampaignSpec::from_json(util::JsonValue::parse(text));
}

std::vector<std::string> sorted_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.require_known({"out", "tiny", "experiments", "help"});
  const bool tiny = args.get_bool("tiny", false);
  const std::uint64_t experiments =
      args.get_uint("experiments", tiny ? 24 : 96);
  const std::uint32_t agents = tiny ? 16 : 64;
  const std::uint32_t rounds = tiny ? 16 : 128;

  // 2 topologies x 2 round budgets bracket the agent axis.
  const std::uint64_t agent_steps =
      std::max<std::uint64_t>(1, experiments / 4);
  const campaign::CampaignSpec camp =
      make_campaign(agent_steps, agents, rounds);
  const std::size_t total = camp.expand().size();

  std::vector<unsigned> thread_counts = {1, 4,
                                         util::default_thread_count()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::cout << "# E-CAMPAIGN — scheduler throughput, " << total
            << " experiments per run\n\n";
  util::Table table(
      {"threads", "experiments", "elapsed_s", "exp_per_sec", "speedup"});
  std::vector<bench::BenchRecord> records;
  std::vector<std::string> reference_journal;
  double serial_rate = 0.0;

  for (unsigned threads : thread_counts) {
    const std::string journal_path =
        "bench_campaign_t" + std::to_string(threads) + ".jsonl.tmp";
    std::remove(journal_path.c_str());

    campaign::RunOptions options;
    options.threads = threads;
    util::WallTimer timer;
    const campaign::RunReport report =
        campaign::run_campaign(camp, journal_path, options);
    const double elapsed = timer.elapsed_seconds();
    if (report.executed != total) {
      std::cerr << "executed " << report.executed << " of " << total
                << " experiments\n";
      return 1;
    }
    const std::vector<std::string> journal = sorted_lines(journal_path);
    if (reference_journal.empty()) {
      reference_journal = journal;
    } else if (journal != reference_journal) {
      std::cerr << "journal at threads=" << threads
                << " differs from threads=" << thread_counts.front()
                << " — determinism contract broken\n";
      return 1;
    }
    std::remove(journal_path.c_str());

    const double rate = static_cast<double>(total) / elapsed;
    if (threads == 1) {
      serial_rate = rate;
    }
    // Mean agents over the grid [agents, agents + agent_steps), mean
    // rounds over {rounds, 2*rounds}: the normalization denominator.
    const double mean_agents =
        agents + (static_cast<double>(agent_steps) - 1.0) / 2.0;
    const double mean_rounds = 1.5 * rounds;
    bench::BenchRecord record;
    record.name = "scheduler/t" + std::to_string(threads);
    record.topology = "campaign-grid";
    record.agents = agents;
    record.rounds = rounds;
    record.ns_per_agent_round =
        elapsed * 1e9 /
        (static_cast<double>(total) * mean_agents * mean_rounds);
    records.push_back(record);

    table.add_row({std::to_string(threads), std::to_string(total),
                   util::format_fixed(elapsed, 3),
                   util::format_fixed(rate, 1),
                   serial_rate > 0.0
                       ? util::format_fixed(rate / serial_rate, 2) + "x"
                       : "n/a"});
  }
  table.print_markdown(std::cout);
  std::cout << "\njournals bit-identical across worker counts: yes\n";

  const std::string out_path =
      args.get_string("out", "BENCH_campaign.json");
  bench::write_json(out_path, records);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
