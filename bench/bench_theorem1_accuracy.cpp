// E1 — Theorem 1: random-walk density estimation accuracy on the 2-D
// torus.
//
// Sweeps rounds t at two densities, measuring the empirical ε at
// confidence 1-δ (δ = 0.1) and comparing against Theorem 1's
// ε = sqrt(log(1/δ)/(td))·log(2t) shape.  The normalized column
// ε·sqrt(td)/log(2t) should be roughly flat if the theorem captures the
// true decay; the fitted log-log slope of ε vs t should be near -1/2
// (times residual log factors).
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "graph/torus2d.hpp"

namespace antdense {
namespace {

void run(const util::Args& args) {
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 64));
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 6));
  const double delta = args.get_double("delta", 0.1);
  const auto t_max = static_cast<std::uint32_t>(args.get_uint("tmax", 4096));

  bench::print_banner(
      "E1", "Theorem 1 (random-walk sampling accuracy, 2-D torus)",
      "epsilon decays ~ t^{-1/2} (mod log factor); normalized column "
      "approximately flat; measured epsilon below theory curve at c1=1");

  const graph::Torus2D torus(side, side);
  const double area = static_cast<double>(torus.num_nodes());
  util::Table table({"d", "t", "eps@90% measured", "thm1 eps (c1=1)",
                     "normalized eps*sqrt(td)/log2t", "chernoff ref"});

  for (double d_target : {0.05, 0.2}) {
    const auto agents =
        static_cast<std::uint32_t>(d_target * area) + 1;
    const double d = (agents - 1) / area;
    std::vector<double> ts, epss;
    for (std::uint32_t t : bench::powers_of_two(128, t_max)) {
      const double eps = bench::measure_epsilon(torus, agents, t,
                                                1.0 - delta, 0xE1 + t, trials);
      const double theory = core::theorem1_epsilon(t, d, delta);
      const double normalized =
          eps * std::sqrt(t * d) / std::log(2.0 * t);
      const double chernoff =
          core::independent_sampling_epsilon(t, d, delta);
      table.row()
          .cell(util::format_fixed(d, 3))
          .cell(t)
          .cell(util::format_fixed(eps, 4))
          .cell(util::format_fixed(theory, 4))
          .cell(util::format_fixed(normalized, 4))
          .cell(util::format_fixed(chernoff, 4))
          .commit();
      ts.push_back(t);
      epss.push_back(eps);
    }
    std::cout << "\n";
    table.print_markdown(std::cout);
    bench::print_power_fit("eps vs t at d=" + util::format_fixed(d, 3), ts,
                           epss);
    table = util::Table({"d", "t", "eps@90% measured", "thm1 eps (c1=1)",
                         "normalized eps*sqrt(td)/log2t", "chernoff ref"});
  }

  // Round-budget check: does Theorem 1's t(eps, delta) deliver?
  std::cout << "\n## Round budget check (c2 = 1)\n\n";
  util::Table budget({"target eps", "d", "thm1 t", "measured eps@90%",
                      "delivered"});
  for (double eps_target : {0.3, 0.2}) {
    const double d_target = 0.1;
    const auto agents =
        static_cast<std::uint32_t>(d_target * area) + 1;
    const double d = (agents - 1) / area;
    const std::uint64_t t64 = core::theorem1_rounds(eps_target, d, delta);
    const auto t = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(t64, torus.num_nodes()));
    const double eps =
        bench::measure_epsilon(torus, agents, t, 1.0 - delta, 0x1E1, trials);
    budget.row()
        .cell(util::format_fixed(eps_target, 2))
        .cell(util::format_fixed(d, 3))
        .cell(static_cast<std::uint64_t>(t))
        .cell(util::format_fixed(eps, 4))
        .cell(eps <= eps_target ? "yes" : "NO")
        .commit();
  }
  budget.print_markdown(std::cout);
}

}  // namespace
}  // namespace antdense

int main(int argc, char** argv) {
  const antdense::util::Args args(argc, argv);
  antdense::util::WallTimer timer;
  antdense::run(args);
  std::cout << "\n[elapsed " << antdense::util::format_fixed(
                   timer.elapsed_seconds(), 1)
            << "s]\n";
  return 0;
}
