// Shared helpers for the experiment benches: uniform headers, measured
// epsilon-at-confidence for a density-estimation configuration, and
// power-law fit reporting.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "sim/density_sim.hpp"
#include "sim/trial_runner.hpp"
#include "stats/concentration.hpp"
#include "stats/regression.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace antdense::bench {

/// Prints the standard experiment banner: id, paper artifact, and what
/// shape agreement means for this experiment.
inline void print_banner(const std::string& experiment_id,
                         const std::string& paper_artifact,
                         const std::string& acceptance) {
  std::cout << "# " << experiment_id << " — " << paper_artifact << "\n\n";
  std::cout << "Acceptance (shape, not constants): " << acceptance << "\n";
}

/// Measured ε at confidence level `confidence` for Algorithm 1 run with
/// `num_agents` agents for `rounds` rounds on `topo`, pooling all agents
/// across `trials` runs.
template <graph::Topology T>
double measure_epsilon(const T& topo, std::uint32_t num_agents,
                       std::uint32_t rounds, double confidence,
                       std::uint64_t seed, std::uint32_t trials,
                       unsigned threads = 0) {
  sim::DensityConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = rounds;
  const auto estimates =
      sim::collect_all_agent_estimates(topo, cfg, seed, trials, threads);
  const double d = static_cast<double>(num_agents - 1) /
                   static_cast<double>(topo.num_nodes());
  return stats::epsilon_at_confidence(estimates, d, confidence);
}

/// Prints a one-line power-law fit summary: "fit: y ~ x^slope (R²=...)".
/// Degenerate inputs (fewer than two strictly positive points, e.g. a
/// method with exactly zero error everywhere) print "n/a".
inline void print_power_fit(const std::string& label,
                            const std::vector<double>& x,
                            const std::vector<double>& y) {
  std::size_t usable = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      ++usable;
    }
  }
  if (usable < 2) {
    std::cout << "\nfit [" << label << "]: n/a (fewer than two positive "
              << "points — method is exact here)\n";
    return;
  }
  const stats::LinearFit fit = stats::log_log_fit(x, y);
  std::cout << "\nfit [" << label << "]: slope = "
            << util::format_fixed(fit.slope, 3)
            << " (R^2 = " << util::format_fixed(fit.r_squared, 4) << ")\n";
}

/// Geometric sweep {start, start*2, ..., <= stop}.
inline std::vector<std::uint32_t> powers_of_two(std::uint32_t start,
                                                std::uint32_t stop) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = start; v <= stop; v *= 2) {
    out.push_back(v);
  }
  return out;
}

}  // namespace antdense::bench
