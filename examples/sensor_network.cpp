// Sensor network sampling (paper Section 6.3.1).
//
// A base station estimates the fraction of sensors that recorded an
// event by releasing a query token that random-walks the grid with *no*
// visited-sensor bookkeeping.  The demo compares the naive token against
// the dedup variant (which must carry a visited set) and independent
// sampling, over many token releases.
//
// The grid comes from a scenario-layer topology spec (--grid=torus2d:WxH)
// so the substrate vocabulary matches antdense_run; flags are strict —
// typos fail instead of silently running the default experiment.
#include <cmath>
#include <exception>
#include <iostream>

#include "graph/torus2d.hpp"
#include "scenario/registry.hpp"
#include "sensor/field.hpp"
#include "sensor/token_sampling.hpp"
#include "stats/accumulator.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace antdense;
  const util::Args args(argc, argv);
  args.require_known({"grid", "rate", "steps", "releases", "seed"});
  const std::string grid_spec =
      args.get_string("grid", "torus2d:128x128");
  const double event_rate = args.get_double("rate", 0.2);
  const auto steps = static_cast<std::uint32_t>(args.get_uint("steps", 2048));
  const auto releases =
      static_cast<std::uint32_t>(args.get_uint("releases", 300));
  const std::uint64_t seed = args.get_uint("seed", 5);

  const graph::AnyTopology substrate =
      scenario::Registry::built_in().make(grid_spec);
  const graph::Torus2D* torus = substrate.target<graph::Torus2D>();
  if (torus == nullptr) {
    std::cerr << "sensor_network: --grid must name a torus2d spec "
                 "(sensor fields are 2-D grids), got "
              << grid_spec << "\n";
    return 1;
  }
  const graph::Torus2D& grid = *torus;
  const sensor::SensorField field =
      sensor::SensorField::bernoulli(grid, event_rate, seed);

  std::cout << "Sensor grid " << grid.name() << "; true event fraction = "
            << util::format_fixed(field.mean(), 4) << "\n";
  std::cout << "Token walk length " << steps << " steps, " << releases
            << " independent releases\n\n";

  stats::Accumulator walk, dedup, indep, unique;
  for (std::uint32_t r = 0; r < releases; ++r) {
    const auto result = sensor::run_token_sampling(
        field, steps, rng::derive_seed(seed, 1, r));
    walk.add(result.walk_estimate);
    dedup.add(result.dedup_estimate);
    indep.add(result.independent_estimate);
    unique.add(result.unique_sensors);
  }

  util::Table table({"method", "mean estimate", "stddev",
                     "extra state on token"});
  table.row()
      .cell("naive token walk (ours)")
      .cell(util::format_fixed(walk.mean(), 4))
      .cell(util::format_fixed(walk.sample_stddev(), 4))
      .cell("none")
      .commit();
  table.row()
      .cell("dedup walk")
      .cell(util::format_fixed(dedup.mean(), 4))
      .cell(util::format_fixed(dedup.sample_stddev(), 4))
      .cell("visited-sensor set")
      .commit();
  table.row()
      .cell("independent sampling (ideal)")
      .cell(util::format_fixed(indep.mean(), 4))
      .cell(util::format_fixed(indep.sample_stddev(), 4))
      .cell("global addressing")
      .commit();
  table.print_markdown(std::cout);

  std::cout << "\nmean distinct sensors per release: "
            << util::format_fixed(unique.mean(), 0) << " of " << steps
            << " observations\n";
  std::cout << "walk vs ideal stddev penalty: "
            << util::format_fixed(
                   walk.sample_stddev() / indep.sample_stddev(), 2)
            << "x — the log-factor repeat-visit cost the paper predicts "
               "(Corollary 15); dropping the visited set is nearly free.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "sensor_network: " << e.what() << "\n";
  return 1;
}
