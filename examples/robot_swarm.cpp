// Robot swarm scenarios (paper Sections 5.2 and 6.3.4).
//
// Part 1 — task-group frequency estimation: a swarm with three task
// groups (foragers / builders / idle) where every robot estimates each
// group's share purely from encounter rates.
// Part 2 — density-triggered dispersion: robots start packed in a corner
// and use local density estimates to decide when to spread out.
#include <iostream>

#include "graph/torus2d.hpp"
#include "stats/accumulator.hpp"
#include "swarm/dispersion.hpp"
#include "swarm/task_allocation.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace antdense;
  const util::Args args(argc, argv);
  const std::uint64_t seed = args.get_uint("seed", 11);

  // --- Part 1: who is doing what? ---
  const graph::Torus2D arena = graph::Torus2D::square(32);
  swarm::SwarmConfig cfg;
  cfg.group_sizes = {60, 30, 12};  // foragers, builders, idle
  cfg.rounds = static_cast<std::uint32_t>(args.get_uint("rounds", 800));
  const char* group_names[] = {"foragers", "builders", "idle"};

  std::cout << "Task-group frequency estimation on " << arena.name()
            << " with " << cfg.total_agents() << " robots, " << cfg.rounds
            << " rounds\n\n";
  const swarm::SwarmResult result = swarm::run_swarm_estimation(arena, cfg,
                                                                seed);
  util::Table table({"group", "true share", "mean estimated share",
                     "stddev across robots"});
  for (std::size_t g = 0; g < cfg.group_sizes.size(); ++g) {
    stats::Accumulator acc;
    for (std::size_t a = 0; a < result.group_frequency_estimates.size();
         ++a) {
      if (result.density_estimates[a] > 0.0) {
        acc.add(result.group_frequency_estimates[a][g]);
      }
    }
    table.row()
        .cell(group_names[g])
        .cell(util::format_fixed(result.true_frequencies[g], 3))
        .cell(util::format_fixed(acc.mean(), 3))
        .cell(util::format_fixed(acc.sample_stddev(), 3))
        .commit();
  }
  table.print_markdown(std::cout);

  // --- Part 2: spreading out from a deployment corner. ---
  std::cout << "\nDensity-triggered dispersion (robots deployed in an 8x8 "
               "corner of a 64x64 field)\n\n";
  const graph::Torus2D field = graph::Torus2D::square(64);
  swarm::DispersionConfig dcfg;
  dcfg.num_agents = 120;
  dcfg.epochs = 8;
  dcfg.rounds_per_epoch = 80;
  dcfg.density_threshold = 0.06;
  dcfg.initial_patch_side = 8;
  const swarm::DispersionResult dispersion =
      swarm::run_dispersion(field, dcfg, seed + 1);

  util::Table dtable({"epoch", "mean density estimate",
                      "robots over threshold", "spread (1.0 = uniform)"});
  for (std::size_t e = 0; e < dispersion.epochs.size(); ++e) {
    const auto& stats = dispersion.epochs[e];
    dtable.row()
        .cell(static_cast<std::uint64_t>(e))
        .cell(util::format_fixed(stats.mean_density_estimate, 4))
        .cell(util::format_percent(stats.fraction_overcrowded, 0))
        .cell(util::format_fixed(stats.spread_ratio, 3))
        .commit();
  }
  dtable.print_markdown(std::cout);
  std::cout << "\nAs estimates fall below the threshold, robots stop "
               "sprinting and the spread ratio approaches 1 (uniform "
               "coverage).\n";
  return 0;
}
