// Social network size estimation (paper Section 5.1).
//
// Builds a synthetic social network (Barabási–Albert preferential
// attachment), then estimates |V| with only link queries:
//   1. measure the mixing parameter lambda (power iteration),
//   2. burn in walks from a single seed vertex,
//   3. estimate the average degree (Algorithm 3),
//   4. count degree-weighted collisions for t rounds (Algorithm 2),
//   5. take the median of independent repetitions.
// Also runs the [KLSC14] halt-after-burn-in baseline at the same query
// budget for comparison.
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "graph/generators.hpp"
#include "netsize/katzir.hpp"
#include "netsize/size_estimator.hpp"
#include "spectral/walk_matrix.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace antdense;
  const util::Args args(argc, argv);
  const auto vertices =
      static_cast<std::uint32_t>(args.get_uint("vertices", 2000));
  const auto attach = static_cast<std::uint32_t>(args.get_uint("attach", 3));
  const auto walks = static_cast<std::uint32_t>(args.get_uint("walks", 96));
  const auto rounds = static_cast<std::uint32_t>(args.get_uint("rounds", 96));
  const std::uint64_t seed = args.get_uint("seed", 2024);

  std::cout << "Generating Barabasi-Albert network: " << vertices
            << " users, " << attach << " links per arrival...\n";
  const graph::Graph network =
      graph::make_barabasi_albert_graph(vertices, attach, seed);
  std::cout << "  edges: " << network.num_edges()
            << ", max degree: " << network.max_degree() << "\n";

  const double lambda = spectral::second_eigenvalue_magnitude(network);
  const auto burn_in = static_cast<std::uint32_t>(
      core::burn_in_rounds(network.num_edges(), 0.1, lambda));
  std::cout << "  measured lambda = " << util::format_fixed(lambda, 4)
            << " -> burn-in M = " << burn_in << " steps per walk\n\n";

  netsize::SizeEstimationConfig cfg;
  cfg.num_walks = walks;
  cfg.rounds = rounds;
  cfg.burn_in = burn_in;
  cfg.seed_vertex = 0;
  const auto ours = netsize::estimate_network_size_median(network, cfg, 7,
                                                          seed + 1);

  std::cout << "Algorithm 2 (ours): |V| estimate = "
            << util::format_fixed(ours.size_estimate, 0) << " (truth "
            << vertices << ", error "
            << util::format_percent(
                   std::fabs(ours.size_estimate - vertices) / vertices, 1)
            << ", " << util::format_count(ours.link_queries)
            << " link queries, avg-degree input "
            << util::format_fixed(ours.average_degree_used, 2) << ")\n";

  // Baseline at a comparable query budget: all queries go to burn-in.
  const auto baseline_walks = static_cast<std::uint32_t>(
      ours.link_queries / burn_in);
  netsize::KatzirConfig kcfg;
  kcfg.num_walks = baseline_walks;
  kcfg.burn_in = burn_in;
  kcfg.seed_vertex = 0;
  const auto baseline = netsize::katzir_estimate(network, kcfg, seed + 2);
  std::cout << "KLSC14 baseline:    |V| estimate = "
            << (baseline.saw_collision
                    ? util::format_fixed(baseline.size_estimate, 0)
                    : std::string("no collisions"))
            << " (" << baseline_walks << " walks, "
            << util::format_count(baseline.link_queries)
            << " link queries)\n";
  if (baseline.saw_collision) {
    std::cout << "baseline error:     "
              << util::format_percent(
                     std::fabs(baseline.size_estimate - vertices) / vertices,
                     1)
              << "\n";
  }
  return 0;
}
