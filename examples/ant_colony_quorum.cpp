// Ant colony quorum sensing (Pratt 2005, paper Sections 1 and 6.2).
//
// Temnothorax scouts at a candidate nest site decide whether enough
// nestmates have gathered there.  Each scout runs Algorithm 1 and applies
// the QuorumDetector's threshold rule.  The demo runs the same nest site
// at three occupancy levels — below, inside, and above the quorum band —
// and reports per-scout decisions.
#include <algorithm>
#include <iostream>

#include "core/density_estimator.hpp"
#include "core/quorum.hpp"
#include "graph/torus2d.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace antdense;
  const util::Args args(argc, argv);
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 24));
  const double threshold = args.get_double("threshold", 0.08);
  const double gamma = args.get_double("gamma", 1.0);
  const double delta = args.get_double("delta", 0.1);
  const std::uint64_t seed = args.get_uint("seed", 7);

  const graph::Torus2D nest = graph::Torus2D::square(side);
  const double area = static_cast<double>(nest.num_nodes());
  const core::QuorumDetector detector(threshold, gamma, delta);
  const auto rounds = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      detector.required_rounds(), nest.num_nodes()));

  std::cout << "Nest site: " << nest.name() << "; quorum threshold d >= "
            << util::format_fixed(threshold, 3) << ", gap gamma = " << gamma
            << ", per-scout failure delta = " << delta << "\n";
  std::cout << "Decision rounds per scout (Theorem 1 budget, capped at A): "
            << rounds << "\n\n";

  util::Table table({"scenario", "scouts", "true density", "quorum votes",
                     "colony decision"});
  const struct {
    const char* label;
    double density;
  } scenarios[] = {{"sparse (below threshold)", threshold / 2.0},
                   {"ambiguous (inside band)", threshold * (1.0 + gamma / 2.0)},
                   {"crowded (above band)", threshold * (1.0 + 2.0 * gamma)}};

  std::uint64_t scenario_seed = seed;
  for (const auto& s : scenarios) {
    const auto scouts =
        static_cast<std::uint32_t>(s.density * area) + 1;
    const auto result =
        core::estimate_density(nest, scouts, rounds, scenario_seed++);
    int votes = 0;
    for (double estimate : result.estimates) {
      votes += detector.quorum_reached(estimate) ? 1 : 0;
    }
    // The colony commits when a majority of scouts sense the quorum.
    const bool commit = votes * 2 > static_cast<int>(scouts);
    table.row()
        .cell(s.label)
        .cell(static_cast<std::uint64_t>(scouts))
        .cell(util::format_fixed(result.true_density, 4))
        .cell(std::to_string(votes) + "/" + std::to_string(scouts))
        .cell(commit ? "COMMIT to new nest" : "keep searching")
        .commit();
  }
  table.print_markdown(std::cout);
  std::cout << "\nScouts below the threshold must not commit; scouts above "
               "the band must.  Inside the band either outcome is "
               "acceptable (the paper's don't-care gap).\n";
  return 0;
}
