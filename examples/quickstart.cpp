// Quickstart: estimate population density on a 2-D torus with Algorithm 1.
//
//   $ ./quickstart [--side=64] [--agents=410] [--eps=0.2] [--delta=0.1]
//
// Plans the round budget with Theorem 1 (core::plan_rounds caps it at A,
// the theorem's validity range), runs every agent's estimator
// simultaneously through the scenario facade, and reports how many
// agents landed within (1±eps)d.  The same run is available from the
// unified driver:
//
//   $ ./antdense_run --topology=torus2d:64x64 --workload=density
//       --agents=410 --eps=0.2 --delta=0.1
#include <exception>
#include <iostream>
#include <string>

#include "scenario/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) try {
  using namespace antdense;
  const util::Args args(argc, argv);
  args.require_known({"side", "agents", "eps", "delta", "seed"});
  const auto side = args.get_uint("side", 64);

  scenario::ScenarioSpec spec;
  spec.topology =
      "torus2d:" + std::to_string(side) + "x" + std::to_string(side);
  spec.workload = scenario::Workload::kDensity;
  spec.agents = static_cast<std::uint32_t>(args.get_uint("agents", 410));
  spec.eps = args.get_double("eps", 0.2);
  spec.delta = args.get_double("delta", 0.1);
  spec.seed = args.get_uint("seed", 42);
  spec.rounds = 0;  // plan from (eps, delta) via core::plan_rounds

  // Validates the spec, builds the torus, and resolves the Theorem 1
  // round budget.
  const scenario::Experiment experiment(spec);
  const scenario::ScenarioSpec& resolved = experiment.spec();

  std::cout << "Estimating density on " << experiment.topology().name()
            << " with " << resolved.agents << " agents\n";
  std::cout << "Theorem 1 budget for (eps=" << resolved.eps
            << ", delta=" << resolved.delta << "): t = " << resolved.rounds
            << " rounds\n\n";

  const scenario::ScenarioResult result = experiment.run();

  std::cout << "true density:       "
            << util::format_fixed(result.true_value, 4) << "\n";
  std::cout << "mean estimate:      "
            << util::format_fixed(result.summary.mean, 4) << "\n";
  std::cout << "agents within eps:  "
            << util::format_percent(result.summary.within_eps, 1)
            << " (target >= "
            << util::format_percent(1.0 - resolved.delta, 0) << ")\n";
  std::cout << "agent 0's estimate: "
            << util::format_fixed(result.estimates[0], 4) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "quickstart: " << e.what() << "\n";
  return 1;
}
