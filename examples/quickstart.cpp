// Quickstart: estimate population density on a 2-D torus with Algorithm 1.
//
//   $ ./quickstart [--side=64] [--agents=410] [--eps=0.2] [--delta=0.1]
//
// Plans the round budget with Theorem 1, runs every agent's estimator
// simultaneously, and reports how many agents landed within (1±eps)d.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/density_estimator.hpp"
#include "graph/torus2d.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace antdense;
  const util::Args args(argc, argv);
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 64));
  const auto agents = static_cast<std::uint32_t>(args.get_uint("agents", 410));
  const double eps = args.get_double("eps", 0.2);
  const double delta = args.get_double("delta", 0.1);
  const std::uint64_t seed = args.get_uint("seed", 42);

  const graph::Torus2D torus = graph::Torus2D::square(side);
  const double d = static_cast<double>(agents - 1) /
                   static_cast<double>(torus.num_nodes());

  // Theorem 1 round budget (capped at A, the theorem's validity range).
  const auto rounds = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      core::recommended_rounds(eps, d, delta), torus.num_nodes()));

  std::cout << "Estimating density on " << torus.name() << " with " << agents
            << " agents (true d = " << util::format_fixed(d, 4) << ")\n";
  std::cout << "Theorem 1 budget for (eps=" << eps << ", delta=" << delta
            << "): t = " << rounds << " rounds\n\n";

  const auto result = core::estimate_density(torus, agents, rounds, seed);

  int within = 0;
  double sum = 0.0;
  for (double estimate : result.estimates) {
    sum += estimate;
    if (std::fabs(estimate - d) <= eps * d) {
      ++within;
    }
  }
  std::cout << "mean estimate:      "
            << util::format_fixed(sum / agents, 4) << "\n";
  std::cout << "agents within eps:  " << within << "/" << agents << " ("
            << util::format_percent(static_cast<double>(within) / agents, 1)
            << ", target >= " << util::format_percent(1.0 - delta, 0)
            << ")\n";
  std::cout << "agent 0's estimate: "
            << util::format_fixed(result.estimates[0], 4) << "\n";
  return 0;
}
