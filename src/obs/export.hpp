// File export for telemetry artifacts — the one place the CLIs'
// --metrics-out / --trace-out flags funnel through, so both tools agree
// on formats: a ".json" metrics path gets the registry's ordered JSON
// snapshot, anything else gets Prometheus text exposition; trace paths
// always get Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace antdense::obs {

/// Writes a registry snapshot to `path`.  Format by extension:
/// ".json" -> ordered JSON object; anything else -> Prometheus text.
/// Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path);

/// Writes the recorder's Chrome trace-event JSON document to `path`.
/// Throws std::runtime_error when the file cannot be written.
void write_trace_file(const TraceRecorder& trace, const std::string& path);

}  // namespace antdense::obs
