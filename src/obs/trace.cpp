#include "obs/trace.hpp"

#include <atomic>

namespace antdense::obs {

namespace {

/// Small stable id for the calling OS thread, for the trace "tid"
/// field (raw std::thread::id values are unreadable in a viewer).
std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceRecorder::TraceRecorder(std::uint64_t max_bytes)
    : max_bytes_(max_bytes), epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TraceRecorder::estimate_bytes(const Event& e) {
  // Fixed JSON scaffolding (~90 bytes per event) plus variable text.
  return 90 + e.name.size() + e.category.size() + e.args_json.size();
}

void TraceRecorder::add_complete(const std::string& name,
                                 const std::string& category, double ts_us,
                                 double dur_us,
                                 const std::string& args_json) {
  Event e{name, category, ts_us, dur_us, trace_thread_id(), args_json};
  const std::uint64_t cost = estimate_bytes(e);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
  bytes_ += cost;
  while (bytes_ > max_bytes_ && events_.size() > 1) {
    bytes_ -= estimate_bytes(events_.front());
    events_.pop_front();
    ++dropped_;
  }
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

util::JsonValue TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue events = util::JsonValue::array();
  for (const Event& e : events_) {
    util::JsonValue ev = util::JsonValue::object();
    ev.set("name", e.name);
    ev.set("cat", e.category);
    ev.set("ph", "X");
    ev.set("ts", e.ts_us);
    ev.set("dur", e.dur_us);
    ev.set("pid", std::uint32_t{1});
    ev.set("tid", e.tid);
    if (!e.args_json.empty()) {
      ev.set("args", util::JsonValue::parse(e.args_json));
    }
    events.push_back(std::move(ev));
  }
  util::JsonValue out = util::JsonValue::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  if (dropped_ > 0) {
    out.set("droppedEvents", dropped_);
  }
  return out;
}

std::string TraceRecorder::dump() const { return to_json().dump(0) + "\n"; }

}  // namespace antdense::obs
