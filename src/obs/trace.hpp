// TraceRecorder — Chrome trace-event (catapult) JSON spans.
//
// Records complete ("ph":"X") events with microsecond timestamps
// relative to the recorder's construction.  Events live in a
// byte-capped ring: when the estimated serialized size exceeds the
// cap, the oldest events are dropped (and counted), so a million-round
// run cannot grow the trace without bound.  The output loads directly
// in chrome://tracing or https://ui.perfetto.dev.
//
// Threading: add() takes a mutex — traces are recorded at phase/span
// granularity (per round, per request, per experiment), never per
// agent-step, so the lock is off every hot inner loop.  Thread ids in
// the output are small stable integers assigned per OS thread on
// first use.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace antdense::obs {

class TraceRecorder {
 public:
  /// `max_bytes` caps the estimated serialized size of retained
  /// events (default 4 MiB).
  explicit TraceRecorder(std::uint64_t max_bytes = 4ull << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since recorder construction (monotonic).
  double now_us() const;

  /// Converts a steady_clock time point to this recorder's timeline —
  /// lets callers time with the clock they already hold instead of
  /// calling now_us() twice.
  double us_since_epoch(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  /// Records a complete event spanning [ts_us, ts_us + dur_us) on the
  /// calling thread.  `args_json` is an optional pre-serialized JSON
  /// object ("" for none).
  void add_complete(const std::string& name, const std::string& category,
                    double ts_us, double dur_us,
                    const std::string& args_json = "");

  /// Number of events dropped so far to honor the byte cap.
  std::uint64_t dropped() const;
  std::uint64_t event_count() const;

  /// {"traceEvents":[...], "displayTimeUnit":"ms"} plus a
  /// "droppedEvents" count when the ring overflowed.
  util::JsonValue to_json() const;
  std::string dump() const;

 private:
  struct Event {
    std::string name;
    std::string category;
    double ts_us;
    double dur_us;
    std::uint32_t tid;
    std::string args_json;
  };

  static std::uint64_t estimate_bytes(const Event& e);

  mutable std::mutex mutex_;
  std::deque<Event> events_;
  std::uint64_t bytes_ = 0;
  std::uint64_t max_bytes_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records a complete event on destruction covering the
/// scope's lifetime.  A null recorder makes construction and
/// destruction near-free (one branch each), which is how disabled
/// tracing stays off the hot path.
class SpanScope {
 public:
  SpanScope(TraceRecorder* recorder, std::string name, std::string category)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      name_ = std::move(name);
      category_ = std::move(category);
      start_us_ = recorder_->now_us();
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches args to the event emitted at scope exit (pre-serialized
  /// JSON object text).
  void set_args(std::string args_json) { args_json_ = std::move(args_json); }

  ~SpanScope() {
    if (recorder_ != nullptr) {
      recorder_->add_complete(name_, category_,
                              start_us_, recorder_->now_us() - start_us_,
                              args_json_);
    }
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  std::string args_json_;
};

}  // namespace antdense::obs
