#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace antdense::obs {

namespace detail {

std::size_t thread_sink_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument(
          "histogram bounds must be finite (the +Inf bucket is implicit)");
    }
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
    }
  }
  for (auto& slot : slots_) {
    slot.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& slot : slots_) {
    for (std::size_t b = 0; b < slot.counts.size(); ++b) {
      snap.counts[b] += slot.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += slot.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.counts) {
    snap.count += c;
  }
  return snap;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  // 1 us .. 10 s, roughly x4 per step: covers a sub-ms engine phase
  // and a multi-second experiment in one bucket layout.
  static const std::vector<double> kBounds = {
      1e-6,   4e-6,   16e-6,  64e-6, 256e-6, 1e-3, 4e-3,
      16e-3,  64e-3,  256e-3, 1.0,   4.0,    10.0};
  return kBounds;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (upper_bounds != other.upper_bounds ||
      counts.size() != other.counts.size()) {
    throw std::invalid_argument(
        "cannot merge histogram snapshots with different bucket layouts");
  }
  for (std::size_t b = 0; b < counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  count += other.count;
  sum += other.sum;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) {
      return false;
    }
  }
  return true;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

/// Formats a double the way the exposition format expects: integers
/// without a fractional part, everything else with enough digits to
/// round-trip.
std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  // Shortest representation that round-trips: bucket bounds read as
  // le="1e-06", not le="9.9999999999999995e-07".
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) {
      break;
    }
  }
  return buf;
}

}  // namespace

std::string format_labels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first;
    out += "=\"";
    out += util::json_escape(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, const std::string& help,
    Kind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + name);
  }
  const std::string key = name + format_labels(labels);
  for (auto& e : entries_) {
    if (e->name == name && e->kind != kind) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered as a different kind");
    }
    if (e->key == key) {
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->key = key;
  entry->help = help;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, labels, help, Kind::kCounter);
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, labels, help, Kind::kGauge);
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds,
                                      const Labels& labels,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, labels, help, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(
        upper_bounds.empty() ? Histogram::default_latency_bounds()
                             : upper_bounds);
  }
  return *e.histogram;
}

util::JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::JsonValue out = util::JsonValue::object();
  for (const auto& e : entries_) {
    util::JsonValue item = util::JsonValue::object();
    item.set("type", kind_name(static_cast<int>(e->kind)));
    switch (e->kind) {
      case Kind::kCounter:
        item.set("value", e->counter->value());
        break;
      case Kind::kGauge:
        item.set("value", static_cast<std::int64_t>(e->gauge->value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->snapshot();
        util::JsonValue bounds = util::JsonValue::array();
        for (const double b : snap.upper_bounds) {
          bounds.push_back(b);
        }
        util::JsonValue counts = util::JsonValue::array();
        for (const std::uint64_t c : snap.counts) {
          counts.push_back(c);
        }
        item.set("upper_bounds", std::move(bounds));
        item.set("buckets", std::move(counts));
        item.set("count", snap.count);
        item.set("sum", snap.sum);
        break;
      }
    }
    out.set(e->key, std::move(item));
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::vector<std::string> announced;  // families with HELP/TYPE emitted
  for (const auto& e : entries_) {
    if (std::find(announced.begin(), announced.end(), e->name) ==
        announced.end()) {
      announced.push_back(e->name);
      if (!e->help.empty()) {
        out += "# HELP " + e->name + " " + e->help + "\n";
      }
      out += "# TYPE " + e->name + " " +
             kind_name(static_cast<int>(e->kind)) + "\n";
    }
    const std::string labels_text = format_labels(e->labels);
    switch (e->kind) {
      case Kind::kCounter:
        out += e->name + labels_text + " " +
               std::to_string(e->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += e->name + labels_text + " " +
               std::to_string(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->snapshot();
        // _bucket series are cumulative and carry an `le` label
        // appended to the instrument's own labels.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.counts.size(); ++b) {
          cumulative += snap.counts[b];
          Labels with_le = e->labels;
          with_le.emplace_back(
              "le", b < snap.upper_bounds.size()
                        ? format_number(snap.upper_bounds[b])
                        : std::string("+Inf"));
          out += e->name + "_bucket" + format_labels(with_le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e->name + "_sum" + labels_text + " " +
               format_number(snap.sum) + "\n";
        out += e->name + "_count" + labels_text + " " +
               std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace antdense::obs
