#include "obs/export.hpp"

#include <fstream>
#include <stdexcept>

namespace antdense::obs {

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  out << text;
  if (!out.good()) {
    throw std::runtime_error("write to " + path + " failed");
  }
}

bool has_json_extension(const std::string& path) {
  static constexpr const char kExt[] = ".json";
  static constexpr std::size_t kExtLen = sizeof(kExt) - 1;
  return path.size() >= kExtLen &&
         path.compare(path.size() - kExtLen, kExtLen, kExt) == 0;
}

}  // namespace

void write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path) {
  if (has_json_extension(path)) {
    write_text_file(path, registry.to_json().dump() + "\n");
  } else {
    write_text_file(path, registry.to_prometheus());
  }
}

void write_trace_file(const TraceRecorder& trace, const std::string& path) {
  write_text_file(path, trace.dump());
}

}  // namespace antdense::obs
