// MetricsRegistry — named counters, gauges, and fixed-bucket latency
// histograms with lock-free per-worker sinks.
//
// Design:
//   - Each Counter / Histogram stripes its storage across a small,
//     cache-line-aligned array of atomic slots.  A worker thread picks
//     its slot once (a thread-local index assigned on first use) and
//     then only ever touches that slot with relaxed atomics — no
//     locks, no sharing on the hot path.  Totals are summed across
//     slots on snapshot, so aggregation cost is paid by the reader,
//     never the instrumented loop.
//   - Gauges are a single atomic (they record "current level", not a
//     rate, so striping would change semantics).
//   - The registry itself is a mutex-guarded name -> instrument map.
//     Registration is expected once per run (engines resolve pointers
//     at entry, not per round); lookups never happen on hot paths.
//   - Export: to_json() emits an ordered JSON object (registration
//     order, stable and diffable) and to_prometheus() emits the text
//     exposition format, both via util::json conventions.
//
// Everything here is RNG-neutral by construction: instruments never
// touch generators or simulation state, so enabling metrics cannot
// perturb stream identity.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace antdense::obs {

/// Number of independent sink slots per striped instrument.  Power of
/// two; worker threads hash onto slots, so contention is possible but
/// rare for thread counts near the slot count.
inline constexpr std::size_t kSinkSlots = 16;

namespace detail {

/// Stable small index for the calling thread, assigned on first use.
/// Used to spread workers across sink slots.
std::size_t thread_sink_index();

struct alignas(64) AtomicSlot {
  std::atomic<std::uint64_t> v{0};
};

/// Relaxed add on an atomic double via CAS (fetch_add on atomic
/// floating-point needs C++20 library support we don't assume).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic counter.  add() is lock-free and wait-free on x86
/// (relaxed fetch_add on the caller's sink slot); value() sums the
/// slots.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    slots_[detail::thread_sink_index() & (kSinkSlots - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::AtomicSlot, kSinkSlots> slots_;
};

/// Point-in-time level (queue depth, cache bytes, ...).  A single
/// atomic: set/add are relaxed; last writer wins on set.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Aggregated view of a Histogram (or a merge of several).  `counts`
/// has one entry per finite upper bound plus a final +Inf overflow
/// bucket; entries are per-bucket (not cumulative).
struct HistogramSnapshot {
  std::vector<double> upper_bounds;  ///< finite bounds, ascending
  std::vector<std::uint64_t> counts;  ///< size upper_bounds.size() + 1
  std::uint64_t count = 0;            ///< total observations
  double sum = 0.0;                   ///< sum of observed values

  /// Accumulates another snapshot into this one.  Bounds must match
  /// (throws std::invalid_argument otherwise).
  void merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram.  Bucket upper bounds are set at
/// registration and never change; observe() is a linear scan over the
/// (small) bound array plus two relaxed atomic adds on the caller's
/// sink slot.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) {
    std::size_t bucket = bounds_.size();  // +Inf overflow bucket
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    auto& slot = slots_[detail::thread_sink_index() & (kSinkSlots - 1)];
    slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(slot.sum, v);
  }

  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Sums all sink slots into one aggregated view.
  HistogramSnapshot snapshot() const;

  /// Log-spaced latency bounds from 1 us to ~10 s — the default for
  /// phase/request timings (seconds).
  static const std::vector<double>& default_latency_bounds();

 private:
  struct alignas(64) Slot {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Slot, kSinkSlots> slots_;
};

/// Label set attached to an instrument, e.g. {{"engine","sharded"}}.
/// Order is preserved in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Registry of named instruments.  Thread-safe; instruments returned
/// by reference remain valid (and at a stable address) for the
/// registry's lifetime.  Re-registering the same name+labels returns
/// the existing instrument; registering the same name with a
/// different kind throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `upper_bounds` is consulted only on first registration; pass
  /// empty to use Histogram::default_latency_bounds().
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds = {},
                       const Labels& labels = {},
                       const std::string& help = "");

  /// Ordered JSON snapshot: one key per instrument in registration
  /// order ("name" or "name{k=\"v\"}"), each an object with "type",
  /// "value" (counter/gauge) or "buckets"/"sum"/"count" (histogram).
  util::JsonValue to_json() const;

  /// Prometheus text exposition (version 0.0.4): # HELP / # TYPE per
  /// metric family, `_bucket{le=...}` / `_sum` / `_count` series for
  /// histograms.
  std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Labels labels;
    std::string key;  // name + canonical label text
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// Canonical `{k="v",...}` label text ("" for no labels).
std::string format_labels(const Labels& labels);

}  // namespace antdense::obs
