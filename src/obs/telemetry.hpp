// Ambient telemetry context + the engine-facing instrumentation seam.
//
// The walk engines are header templates with frozen, identity-bearing
// signatures — threading a registry parameter through them would churn
// every call site and invite accidental identity drift.  Instead,
// telemetry is *ambient*: a thread-local pointer installed by
// ScopedTelemetry for the dynamic extent of a run.  Engines consult it
// exactly once at entry (EngineTap's constructor); when nothing is
// installed the tap is inert and every per-round probe collapses to a
// predictable-false branch — the disabled hot path stays within noise
// of the uninstrumented loop (gated ≤ 1.05x in bench-smoke).
//
// RNG-neutrality contract: taps and spans observe wall time and event
// counts only.  They never touch generators, agent state, or counter
// contents, so enabling telemetry cannot change a single output byte
// — goldens across all three engines are pinned byte-identical with
// telemetry on and off (tests/test_obs_telemetry.cpp).  This is also
// why phase scopes live *outside* stream identity: a phase boundary
// is a measurement seam, not an algorithmic one, and must stay
// invisible to `ScenarioSpec::identity_hash`.
//
// Worker threads: the ambient pointer is thread-local and does NOT
// propagate into pool workers automatically.  That is fine for the
// sharded engine — the tap is constructed on the caller thread and its
// striped Counter/Histogram sinks are safe to hit from any worker
// (each worker lands on its own slot).  Code that fans whole trials
// out to workers installs ScopedTelemetry inside the worker lambda.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace antdense::obs {

/// A bundle of sinks.  Either pointer may be null; both null (or a
/// null Telemetry*) means "disabled".
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

namespace detail {

inline Telemetry*& ambient_slot() {
  thread_local Telemetry* slot = nullptr;
  return slot;
}

}  // namespace detail

/// The calling thread's installed telemetry (null when none).
inline Telemetry* ambient_telemetry() { return detail::ambient_slot(); }

/// Installs `telemetry` as the calling thread's ambient context for
/// this scope; restores the previous context on exit.  Pass nullptr
/// to explicitly mask telemetry for a scope.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry* telemetry)
      : previous_(detail::ambient_slot()) {
    detail::ambient_slot() =
        (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;
  }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

  ~ScopedTelemetry() { detail::ambient_slot() = previous_; }

 private:
  Telemetry* previous_;
};

/// Per-walk instrumentation handle.  Constructed once at engine entry:
/// resolves the ambient context and pre-registers the engine's
/// counters and per-phase histograms so the round loop only ever does
/// pointer-null checks and relaxed atomic adds.  An inert tap (no
/// ambient telemetry) costs one branch per probe.
class EngineTap {
 public:
  static constexpr std::size_t kMaxPhases = 4;

  EngineTap(const char* engine,
            std::initializer_list<const char*> phases) {
    Telemetry* tel = ambient_telemetry();
    if (tel == nullptr || !tel->enabled()) {
      return;
    }
    active_ = true;
    trace_ = tel->trace;
    std::size_t i = 0;
    for (const char* p : phases) {
      if (i == kMaxPhases) {
        break;
      }
      phase_names_[i] = p;
      ++i;
    }
    n_phases_ = i;
    if (tel->metrics != nullptr) {
      MetricsRegistry& reg = *tel->metrics;
      const Labels base{{"engine", engine}};
      rounds_ = &reg.counter("antdense_engine_rounds_total", base,
                             "Rounds executed by walk engines");
      agent_steps_ = &reg.counter("antdense_engine_agent_steps_total", base,
                                  "Agent-rounds processed by walk engines");
      for (std::size_t p = 0; p < n_phases_; ++p) {
        Labels labels = base;
        labels.emplace_back("phase", phase_names_[p]);
        phase_hist_[p] = &reg.histogram(
            "antdense_engine_phase_seconds", {}, labels,
            "Wall time per engine phase per round (seconds)");
      }
    }
  }

  EngineTap(const EngineTap&) = delete;
  EngineTap& operator=(const EngineTap&) = delete;

  bool active() const { return active_; }

  /// Striped-counter adds — safe from any thread, including pool
  /// workers that never installed ambient telemetry themselves.
  void add_rounds(std::uint64_t n) {
    if (rounds_ != nullptr) {
      rounds_->add(n);
    }
  }
  void add_agent_steps(std::uint64_t n) {
    if (agent_steps_ != nullptr) {
      agent_steps_->add(n);
    }
  }

  /// RAII timer for one phase of one round: records into the phase
  /// histogram and (when tracing) emits a complete trace event.
  class PhaseSpan {
   public:
    PhaseSpan(EngineTap& tap, std::size_t phase)
        : tap_(tap.active_ ? &tap : nullptr), phase_(phase) {
      if (tap_ != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }

    PhaseSpan(const PhaseSpan&) = delete;
    PhaseSpan& operator=(const PhaseSpan&) = delete;

    ~PhaseSpan() {
      if (tap_ == nullptr) {
        return;
      }
      const auto end = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(end - start_).count();
      if (tap_->phase_hist_[phase_] != nullptr) {
        tap_->phase_hist_[phase_]->observe(seconds);
      }
      if (tap_->trace_ != nullptr) {
        tap_->trace_->add_complete(tap_->phase_names_[phase_], "engine",
                                   tap_->trace_->us_since_epoch(start_),
                                   seconds * 1e6);
      }
    }

   private:
    EngineTap* tap_;
    std::size_t phase_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  friend class PhaseSpan;

  bool active_ = false;
  TraceRecorder* trace_ = nullptr;
  Counter* rounds_ = nullptr;
  Counter* agent_steps_ = nullptr;
  std::size_t n_phases_ = 0;
  std::array<const char*, kMaxPhases> phase_names_{};
  std::array<Histogram*, kMaxPhases> phase_hist_{};
};

}  // namespace antdense::obs
