// Algorithm 1 — the paper's headline contribution.
//
// Paper: Musco, Su & Lynch, "Ant-Inspired Density Estimation via Random
// Walks" (PODC 2016, arXiv:1603.02981).  This header implements
// Algorithm 1 (Section 3) and the Theorem 1 round planner (Section 4);
// see docs/ARCHITECTURE.md for the full concept-to-header map.
//
// Each agent walks randomly for t rounds, summing count(position) after
// every step, and returns c/t.  Theorem 1: on the 2-D torus, with
// t >= c2 log(1/δ)[loglog(1/δ) + log(1/dε)]²/(dε²) rounds (and t <= A),
// the estimate is within (1±ε) of d with probability 1-δ.  Lemma 19
// extends the guarantee to any regular graph through its accumulated
// re-collision mass B(t).
//
// This header is the user-facing API; the engine lives in sim/.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/bounds.hpp"
#include "graph/topology.hpp"
#include "sim/density_sim.hpp"
#include "util/check.hpp"

namespace antdense::core {

struct DensityEstimationResult {
  /// One estimate per agent (every agent runs Algorithm 1 concurrently).
  std::vector<double> estimates;
  /// The true density d = n/A (n = agents - 1) for comparison.
  double true_density = 0.0;
  std::uint32_t rounds = 0;
};

/// Runs Algorithm 1 with `num_agents` agents for `rounds` rounds.
/// Agents are placed i.i.d. uniformly at random (the paper's model).
/// Deterministic in `seed`.
template <graph::Topology T>
DensityEstimationResult estimate_density(const T& topo,
                                         std::uint32_t num_agents,
                                         std::uint32_t rounds,
                                         std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2,
                 "density estimation needs at least two agents");
  sim::DensityConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = rounds;
  const sim::DensityResult raw = sim::run_density_walk(topo, cfg, seed);
  DensityEstimationResult out;
  out.estimates = raw.estimates();
  out.true_density = raw.true_density();
  out.rounds = rounds;
  return out;
}

/// Theorem 1's planning helper: a round budget sufficient for every agent
/// to land within (1±ε)d with probability 1-δ, on the 2-D torus.  The
/// paper leaves the constant unspecified; `constant` defaults to 1, which
/// the E1 bench shows is already conservative for the measured process.
inline std::uint64_t recommended_rounds(double epsilon, double density,
                                        double delta,
                                        double constant = 1.0) {
  return theorem1_rounds(epsilon, density, delta, constant);
}

/// The executable round plan: Theorem 1's budget capped at A = num_nodes
/// (the theorem's validity range t <= A) and clamped into the engine's
/// uint32 round counter, never below one round.  Shared by the
/// quickstart example and the scenario layer's (eps, delta) resolution
/// so the cap lives in exactly one place.
inline std::uint32_t plan_rounds(double epsilon, double delta, double density,
                                 std::uint64_t num_nodes,
                                 double constant = 1.0) {
  const std::uint64_t budget =
      theorem1_rounds(epsilon, density, delta, constant);
  const std::uint64_t capped = std::max<std::uint64_t>(
      1, std::min({budget, num_nodes,
                   std::uint64_t{std::numeric_limits<std::uint32_t>::max()}}));
  return static_cast<std::uint32_t>(capped);
}

}  // namespace antdense::core
