// Sensor calibration for noisy collision detection (Section 6.1).
//
// The failure-injection experiments establish that detection noise
// shifts the estimator linearly: E[d~_noisy] = (1 - p_miss)·d + s where
// p_miss is the per-partner miss probability and s the per-round
// spurious-detection probability.  An agent that knows its sensor rates
// can therefore invert the estimate in closed form — this header is that
// inverse, with the error-propagation helper for planning how much extra
// accuracy the raw estimate needs.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include "util/check.hpp"

namespace antdense::core {

struct NoiseModel {
  double miss_probability = 0.0;      // per colliding partner
  double spurious_probability = 0.0;  // per round

  void validate() const {
    ANTDENSE_CHECK(miss_probability >= 0.0 && miss_probability < 1.0,
                   "miss probability must be in [0,1)");
    ANTDENSE_CHECK(spurious_probability >= 0.0 &&
                       spurious_probability < 1.0,
                   "spurious probability must be in [0,1)");
  }
};

/// Inverts the noise model: given a raw noisy encounter rate, returns
/// the calibrated density estimate (clamped at 0: heavy spurious noise
/// can push the inverse negative on short runs).
inline double calibrate_estimate(double raw_estimate,
                                 const NoiseModel& noise) {
  noise.validate();
  ANTDENSE_CHECK(raw_estimate >= 0.0, "estimate must be non-negative");
  const double corrected = (raw_estimate - noise.spurious_probability) /
                           (1.0 - noise.miss_probability);
  return corrected < 0.0 ? 0.0 : corrected;
}

/// Error propagation: if the raw estimate carries absolute error e, the
/// calibrated estimate carries e / (1 - p_miss).  Useful when planning
/// the Theorem 1 round budget under known noise: request the raw run at
/// eps_raw = eps_target * (1 - p_miss) * d / (d + s-ish slack).
inline double calibrated_absolute_error(double raw_absolute_error,
                                        const NoiseModel& noise) {
  noise.validate();
  ANTDENSE_CHECK(raw_absolute_error >= 0.0, "error must be non-negative");
  return raw_absolute_error / (1.0 - noise.miss_probability);
}

}  // namespace antdense::core
