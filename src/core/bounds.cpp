#include "core/bounds.hpp"

#include <cmath>

#include "util/check.hpp"

namespace antdense::core {

namespace {

void check_density(double d) {
  ANTDENSE_CHECK(d > 0.0 && d <= 1.0, "density must be in (0,1]");
}

void check_delta(double delta) {
  ANTDENSE_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
}

void check_epsilon(double eps) {
  ANTDENSE_CHECK(eps > 0.0 && eps < 1.0, "epsilon must be in (0,1)");
}

}  // namespace

double beta_torus2d(std::uint32_t m, std::uint64_t num_nodes) {
  return 1.0 / (m + 1.0) + 1.0 / static_cast<double>(num_nodes);
}

double beta_ring(std::uint32_t m, std::uint64_t num_nodes) {
  return 1.0 / std::sqrt(m + 1.0) + 1.0 / static_cast<double>(num_nodes);
}

double beta_torus_kd(std::uint32_t m, std::uint32_t k,
                     std::uint64_t num_nodes) {
  return std::pow(m + 1.0, -static_cast<double>(k) / 2.0) +
         1.0 / static_cast<double>(num_nodes);
}

double beta_expander(std::uint32_t m, double lambda,
                     std::uint64_t num_nodes) {
  ANTDENSE_CHECK(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0,1]");
  return std::pow(lambda, static_cast<double>(m)) +
         1.0 / static_cast<double>(num_nodes);
}

double beta_hypercube(std::uint32_t m, std::uint64_t num_nodes) {
  const double decay =
      m == 0 ? 1.0 : std::pow(0.9, static_cast<double>(m) - 1.0);
  return decay + 1.0 / std::sqrt(static_cast<double>(num_nodes));
}

namespace {

template <typename BetaFn>
double accumulate_b(std::uint32_t t, BetaFn beta) {
  double acc = 0.0;
  for (std::uint32_t m = 0; m <= t; ++m) {
    acc += beta(m);
  }
  return acc;
}

}  // namespace

double b_torus2d(std::uint32_t t, std::uint64_t num_nodes) {
  return accumulate_b(t, [&](std::uint32_t m) {
    return beta_torus2d(m, num_nodes);
  });
}

double b_ring(std::uint32_t t, std::uint64_t num_nodes) {
  return accumulate_b(t,
                      [&](std::uint32_t m) { return beta_ring(m, num_nodes); });
}

double b_torus_kd(std::uint32_t t, std::uint32_t k, std::uint64_t num_nodes) {
  return accumulate_b(t, [&](std::uint32_t m) {
    return beta_torus_kd(m, k, num_nodes);
  });
}

double b_expander(std::uint32_t t, double lambda, std::uint64_t num_nodes) {
  return accumulate_b(t, [&](std::uint32_t m) {
    return beta_expander(m, lambda, num_nodes);
  });
}

double b_hypercube(std::uint32_t t, std::uint64_t num_nodes) {
  return accumulate_b(t, [&](std::uint32_t m) {
    return beta_hypercube(m, num_nodes);
  });
}

double theorem1_epsilon(std::uint32_t t, double density, double delta,
                        double constant) {
  ANTDENSE_CHECK(t >= 1, "t must be >= 1");
  check_density(density);
  check_delta(delta);
  return constant * std::sqrt(std::log(1.0 / delta) / (t * density)) *
         std::log(2.0 * t);
}

std::uint64_t theorem1_rounds(double epsilon, double density, double delta,
                              double constant) {
  check_epsilon(epsilon);
  check_density(density);
  check_delta(delta);
  const double log_inv_delta = std::log(1.0 / delta);
  const double loglog = std::log(std::max(std::exp(1.0), log_inv_delta));
  const double log_term = loglog + std::log(1.0 / (density * epsilon));
  const double rounds = constant * log_inv_delta * log_term * log_term /
                        (density * epsilon * epsilon);
  return static_cast<std::uint64_t>(std::ceil(rounds));
}

double lemma19_epsilon(std::uint32_t t, double density, double delta,
                       double b_of_t, double constant) {
  ANTDENSE_CHECK(t >= 1, "t must be >= 1");
  check_density(density);
  check_delta(delta);
  ANTDENSE_CHECK(b_of_t > 0.0, "B(t) must be positive");
  return constant * b_of_t * std::sqrt(std::log(1.0 / delta) / (t * density));
}

double theorem21_epsilon_ring(std::uint32_t t, double density, double delta,
                              double constant) {
  ANTDENSE_CHECK(t >= 1, "t must be >= 1");
  check_density(density);
  check_delta(delta);
  return constant * std::sqrt(1.0 / (std::sqrt(static_cast<double>(t)) *
                                     density * delta));
}

std::uint64_t theorem21_rounds_ring(double epsilon, double density,
                                    double delta, double constant) {
  check_epsilon(epsilon);
  check_density(density);
  check_delta(delta);
  const double base = 1.0 / (density * epsilon * epsilon * delta);
  return static_cast<std::uint64_t>(std::ceil(constant * base * base));
}

double independent_sampling_epsilon(std::uint32_t t, double density,
                                    double delta) {
  ANTDENSE_CHECK(t >= 1, "t must be >= 1");
  check_density(density);
  check_delta(delta);
  return std::sqrt(6.0 * std::log(2.0 / delta) / (t * density));
}

std::uint64_t independent_sampling_rounds(double epsilon, double density,
                                          double delta) {
  check_epsilon(epsilon);
  check_density(density);
  check_delta(delta);
  return static_cast<std::uint64_t>(std::ceil(
      3.0 * std::log(2.0 / delta) / (density * epsilon * epsilon)));
}

double theorem27_n2t(double epsilon, double delta, double b_of_t,
                     double avg_degree, std::uint64_t num_vertices) {
  check_epsilon(epsilon);
  check_delta(delta);
  ANTDENSE_CHECK(b_of_t >= 0.0, "B(t) must be non-negative");
  ANTDENSE_CHECK(avg_degree > 0.0, "average degree must be positive");
  return (b_of_t * avg_degree + 1.0) / (epsilon * epsilon * delta) *
         static_cast<double>(num_vertices);
}

double theorem27_epsilon(std::uint64_t n_walks, std::uint64_t t, double delta,
                         double b_of_t, double avg_degree,
                         std::uint64_t num_vertices) {
  check_delta(delta);
  ANTDENSE_CHECK(n_walks >= 2, "need at least two walks");
  ANTDENSE_CHECK(t >= 1, "t must be >= 1");
  const double n2t =
      static_cast<double>(n_walks) * static_cast<double>(n_walks) *
      static_cast<double>(t);
  return std::sqrt((b_of_t * avg_degree + 1.0) *
                   static_cast<double>(num_vertices) / (delta * n2t));
}

std::uint64_t theorem31_walks(double epsilon, double delta, double avg_degree,
                              double min_degree) {
  check_epsilon(epsilon);
  check_delta(delta);
  ANTDENSE_CHECK(min_degree > 0.0, "minimum degree must be positive");
  ANTDENSE_CHECK(avg_degree >= min_degree,
                 "average degree cannot be below the minimum degree");
  return static_cast<std::uint64_t>(std::ceil(
      (avg_degree / min_degree) / (epsilon * epsilon * delta)));
}

std::uint64_t burn_in_rounds(std::uint64_t num_edges, double delta,
                             double lambda) {
  check_delta(delta);
  ANTDENSE_CHECK(lambda >= 0.0 && lambda < 1.0, "lambda must be in [0,1)");
  ANTDENSE_CHECK(num_edges > 0, "graph must have edges");
  return static_cast<std::uint64_t>(std::ceil(
      std::log(static_cast<double>(num_edges) / delta) / (1.0 - lambda)));
}

}  // namespace antdense::core
