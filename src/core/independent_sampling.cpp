#include "core/independent_sampling.hpp"

#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::core {

IndependentSamplingResult run_independent_sampling(
    const graph::Torus2D& torus, std::uint32_t num_agents,
    std::uint32_t rounds, std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(rounds >= 1, "need at least one round");
  ANTDENSE_CHECK(rounds < torus.height(),
                 "Algorithm 4 requires t < sqrt(A): walkers must not wrap");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xA14u));
  std::vector<graph::Torus2D::node_type> pos(num_agents);
  std::vector<bool> walking(num_agents);
  for (std::uint32_t i = 0; i < num_agents; ++i) {
    pos[i] = torus.random_node(gen);
    walking[i] = rng::coin_flip(gen);
  }

  std::vector<std::uint64_t> counts(num_agents, 0);
  std::vector<std::uint64_t> keys(num_agents);
  sim::CollisionCounter counter(num_agents);

  for (std::uint32_t r = 0; r < rounds; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      if (walking[i]) {
        pos[i] = torus.step(pos[i], /*dir=+y*/ 2);
      }
      keys[i] = torus.key(pos[i]);
      counter.add(keys[i]);
    }
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      counts[i] += counter.occupancy(keys[i]) - 1;
    }
  }

  IndependentSamplingResult out;
  out.rounds = rounds;
  out.true_density = static_cast<double>(num_agents - 1) /
                     static_cast<double>(torus.num_nodes());
  out.estimates.reserve(num_agents);
  for (std::uint32_t i = 0; i < num_agents; ++i) {
    const std::uint64_t corrected = counts[i] % rounds;
    out.estimates.push_back(2.0 * static_cast<double>(corrected) /
                            static_cast<double>(rounds));
  }
  return out;
}

}  // namespace antdense::core
