// Per-agent confidence intervals around the density estimate — a
// practical extension (Section 6.3 direction): an agent reports not just
// d~ = c/t but an interval derived from its *own* observation stream.
//
// Paper: Musco, Su & Lynch, "Ant-Inspired Density Estimation via Random
// Walks" (PODC 2016, arXiv:1603.02981).  Not an algorithm stated in the
// paper; it builds directly on the paper's variance analysis — the
// correlation-inflation factor below is Lemma 19's B(t) (log(2t) on the
// 2-D torus, Lemma 4) applied to an empirical-Bernstein interval.
//
// The agent keeps per-round collision counts x_1..x_t (mean is d~) and
// forms an empirical-Bernstein interval
//     d~ ± [ sqrt(2 V log(3/δ) / t) + 3 log(3/δ) / t ]
// with V the sample variance of the x_r.  The paper's analysis makes the
// caveat precise: the x_r are positively correlated on slow-mixing
// graphs, so nominal coverage needs an inflation factor on the order of
// the collision mass B(t) (log t on the 2-D torus).  The interval
// carries that factor explicitly; the tests measure actual coverage with
// and without it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::core {

struct AgentInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;

  bool contains(double d) const { return d >= lower && d <= upper; }
};

/// Computes the empirical-Bernstein interval from one agent's per-round
/// collision counts.  `correlation_inflation` multiplies the width
/// (1.0 = assume independence; ~log(2t) is the torus-safe choice).
AgentInterval empirical_bernstein_interval(
    const std::vector<std::uint32_t>& per_round_counts, double delta,
    double correlation_inflation = 1.0);

struct ConfidenceRunResult {
  std::vector<AgentInterval> intervals;  // one per agent
  double true_density = 0.0;
};

/// Runs Algorithm 1 keeping every agent's per-round counts and returns
/// each agent's interval at confidence 1-delta.
template <graph::Topology T>
ConfidenceRunResult estimate_density_with_intervals(
    const T& topo, std::uint32_t num_agents, std::uint32_t rounds,
    double delta, double correlation_inflation, std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(rounds >= 2, "need at least two rounds for a variance");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xC1u));
  std::vector<typename T::node_type> pos(num_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }
  std::vector<std::uint64_t> keys(num_agents);
  // per_round[a * rounds + r]
  std::vector<std::uint32_t> per_round(
      static_cast<std::size_t>(num_agents) * rounds, 0);
  sim::CollisionCounter counter(num_agents);

  for (std::uint32_t r = 0; r < rounds; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      counter.add(keys[i]);
    }
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      per_round[static_cast<std::size_t>(i) * rounds + r] =
          counter.occupancy(keys[i]) - 1;
    }
  }

  ConfidenceRunResult result;
  result.true_density = static_cast<double>(num_agents - 1) /
                        static_cast<double>(topo.num_nodes());
  result.intervals.reserve(num_agents);
  std::vector<std::uint32_t> row(rounds);
  for (std::uint32_t a = 0; a < num_agents; ++a) {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      row[r] = per_round[static_cast<std::size_t>(a) * rounds + r];
    }
    result.intervals.push_back(
        empirical_bernstein_interval(row, delta, correlation_inflation));
  }
  return result;
}

}  // namespace antdense::core
