#include "core/confidence.hpp"

#include <algorithm>
#include <cmath>

namespace antdense::core {

AgentInterval empirical_bernstein_interval(
    const std::vector<std::uint32_t>& per_round_counts, double delta,
    double correlation_inflation) {
  ANTDENSE_CHECK(per_round_counts.size() >= 2,
                 "need at least two rounds for a variance");
  ANTDENSE_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  ANTDENSE_CHECK(correlation_inflation >= 1.0,
                 "inflation factor must be >= 1");

  const auto t = static_cast<double>(per_round_counts.size());
  double sum = 0.0;
  for (std::uint32_t x : per_round_counts) {
    sum += x;
  }
  const double mean = sum / t;
  double ss = 0.0;
  for (std::uint32_t x : per_round_counts) {
    const double d = x - mean;
    ss += d * d;
  }
  const double variance = ss / (t - 1.0);

  // Maurer & Pontil empirical-Bernstein half-width, inflated for the
  // correlated-rounds regime.
  const double log_term = std::log(3.0 / delta);
  const double half = correlation_inflation *
                      (std::sqrt(2.0 * variance * log_term / t) +
                       3.0 * log_term / t);

  AgentInterval out;
  out.estimate = mean;
  out.lower = std::max(0.0, mean - half);
  out.upper = mean + half;
  return out;
}

}  // namespace antdense::core
