// Section 5.2 — relative frequency estimation.
//
// Agents separately track encounters with agents carrying a detectable
// property P (successful foragers, enemies, robots of a task group).
// With d the overall density and d_P the density of P-agents, the ratio
// f̃_P = d̃_P / d̃ estimates f_P = d_P / d; the paper shows that t rounds
// sufficient for (ε, δ) estimation of d_P give a (1±O(ε)) estimate of
// f_P with probability 1-2δ.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "sim/density_sim.hpp"
#include "util/check.hpp"

namespace antdense::core {

struct PropertyFrequencyResult {
  std::vector<double> density_estimates;    // d~ per agent
  std::vector<double> property_estimates;   // d~_P per agent
  std::vector<double> frequency_estimates;  // f~_P = d~_P / d~ per agent
  double true_density = 0.0;
  double true_property_density = 0.0;
  double true_frequency = 0.0;
  std::uint32_t rounds = 0;
};

/// Runs the two-rate tracker with `num_property` of the `num_agents`
/// agents carrying property P (assigned uniformly at random, matching the
/// paper's uniform-distribution assumption).  Agents with zero total
/// encounters report frequency 0.
template <graph::Topology T>
PropertyFrequencyResult estimate_property_frequency(const T& topo,
                                                    std::uint32_t num_agents,
                                                    std::uint32_t num_property,
                                                    std::uint32_t rounds,
                                                    std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(num_property <= num_agents,
                 "property count cannot exceed agent count");

  // Uniformly random assignment of the property.
  rng::Xoshiro256pp assign_gen(rng::derive_seed(seed, 0xF00Du));
  std::vector<bool> has_property(num_agents, false);
  const auto chosen = rng::sample_without_replacement(
      assign_gen, num_agents, num_property);
  for (std::uint64_t idx : chosen) {
    has_property[idx] = true;
  }

  sim::DensityConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = rounds;
  const sim::PropertyResult raw =
      sim::run_property_walk(topo, cfg, has_property, seed);

  PropertyFrequencyResult out;
  out.rounds = rounds;
  const double area = static_cast<double>(topo.num_nodes());
  out.true_density = static_cast<double>(num_agents - 1) / area;
  // From a non-P agent's viewpoint there are num_property P-agents; from
  // a P-agent's viewpoint, num_property - 1.  For reporting we use the
  // population value d_P = num_property / A, the quantity Section 5.2
  // defines.
  out.true_property_density = static_cast<double>(num_property) / area;
  out.true_frequency = out.true_density == 0.0
                           ? 0.0
                           : out.true_property_density / out.true_density;
  out.density_estimates.reserve(num_agents);
  out.property_estimates.reserve(num_agents);
  out.frequency_estimates.reserve(num_agents);
  for (std::uint32_t i = 0; i < num_agents; ++i) {
    const double c = static_cast<double>(raw.total_counts[i]);
    const double cp = static_cast<double>(raw.property_counts[i]);
    out.density_estimates.push_back(c / rounds);
    out.property_estimates.push_back(cp / rounds);
    out.frequency_estimates.push_back(c == 0.0 ? 0.0 : cp / c);
  }
  return out;
}

}  // namespace antdense::core
