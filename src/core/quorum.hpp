// Quorum sensing (Section 6.2) — the headline biological application.
//
// Temnothorax scouts commit to a nest site when the scout density there
// crosses a threshold.  The detector wraps Theorem 1: to separate
// d >= θ(1+γ) from d <= θ with probability 1-δ it suffices to estimate
// with relative error ε = (γ/2)/(1+γ) and compare the estimate against
// the midpoint threshold θ(1+γ/2).
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "core/bounds.hpp"
#include "util/check.hpp"

namespace antdense::core {

class QuorumDetector {
 public:
  /// threshold θ > 0: the density that constitutes a quorum;
  /// gamma γ in (0,1): the separation gap — densities in (θ, θ(1+γ)) are
  /// a "don't care" band;
  /// delta: per-agent failure probability.
  QuorumDetector(double threshold, double gamma, double delta)
      : threshold_(threshold), gamma_(gamma), delta_(delta) {
    ANTDENSE_CHECK(threshold > 0.0 && threshold < 1.0,
                   "threshold must be in (0,1)");
    ANTDENSE_CHECK(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
    ANTDENSE_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  }

  /// The relative accuracy Theorem 1 must deliver: both
  /// (1-ε)(1+γ) >= 1+γ/2 and (1+ε) <= 1+γ/2 hold for ε = (γ/2)/(1+γ).
  double required_epsilon() const { return (gamma_ / 2.0) / (1.0 + gamma_); }

  /// Round budget via Theorem 1, evaluated at the threshold density (the
  /// hardest in-scope case: higher densities only collide more).
  std::uint64_t required_rounds(double constant = 1.0) const {
    return theorem1_rounds(required_epsilon(), threshold_, delta_, constant);
  }

  /// The decision rule applied to an Algorithm-1 estimate.
  bool quorum_reached(double density_estimate) const {
    return density_estimate >= threshold_ * (1.0 + gamma_ / 2.0);
  }

  double threshold() const { return threshold_; }
  double gamma() const { return gamma_; }
  double delta() const { return delta_; }

 private:
  double threshold_;
  double gamma_;
  double delta_;
};

}  // namespace antdense::core
