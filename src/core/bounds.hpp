// Closed-form theory bounds from the paper, used as overlays and
// planning helpers.
//
// Paper: Musco, Su & Lynch, "Ant-Inspired Density Estimation via Random
// Walks" (PODC 2016, arXiv:1603.02981).  Implements the re-collision
// curves β(m) of Lemmas 4/20/22/23/25, the accumulated mass B(t) of
// Lemma 19, the accuracy bounds of Theorem 1 and Theorem 21, the
// independent-sampling Chernoff reference (Theorem 32 / Appendix A),
// and the network-size budgets of Theorems 27 and 31 (Section 5.1).
//
// All bounds are stated in the paper up to unspecified constants; the
// functions here use constant 1 unless a `constant` parameter is given,
// so benches report *shape* ratios (measured / theory), which should be
// roughly flat across a sweep when the bound's dependence is right.
#pragma once

#include <cstdint>

namespace antdense::core {

// ---------------------------------------------------------------------------
// Re-collision probability curves β(m) (Lemmas 4, 20, 22, 23, 25).
// ---------------------------------------------------------------------------

/// Lemma 4 (2-D torus): β(m) = 1/(m+1) + 1/A.
double beta_torus2d(std::uint32_t m, std::uint64_t num_nodes);

/// Lemma 20 (ring): β(m) = 1/sqrt(m+1) + 1/A.
double beta_ring(std::uint32_t m, std::uint64_t num_nodes);

/// Lemma 22 (k-dim torus): β(m) = 1/(m+1)^(k/2) + 1/A.
double beta_torus_kd(std::uint32_t m, std::uint32_t k,
                     std::uint64_t num_nodes);

/// Lemma 23 (regular expander): β(m) = λ^m + 1/A.
double beta_expander(std::uint32_t m, double lambda, std::uint64_t num_nodes);

/// Lemma 25 (hypercube): β(m) = (9/10)^(m-1) + 1/sqrt(A).
double beta_hypercube(std::uint32_t m, std::uint64_t num_nodes);

// ---------------------------------------------------------------------------
// B(t) = sum_{m=0..t} β(m) (Lemma 19's accumulated re-collision mass).
// ---------------------------------------------------------------------------

double b_torus2d(std::uint32_t t, std::uint64_t num_nodes);
double b_ring(std::uint32_t t, std::uint64_t num_nodes);
double b_torus_kd(std::uint32_t t, std::uint32_t k, std::uint64_t num_nodes);
double b_expander(std::uint32_t t, double lambda, std::uint64_t num_nodes);
double b_hypercube(std::uint32_t t, std::uint64_t num_nodes);

// ---------------------------------------------------------------------------
// Density estimation accuracy (Theorem 1, Lemma 19, Theorems 21 and 32).
// ---------------------------------------------------------------------------

/// Theorem 1 (first form): the ε achievable after t rounds at confidence
/// 1-δ on the 2-D torus: ε = c1 * sqrt(log(1/δ)/(t d)) * log(2t).
double theorem1_epsilon(std::uint32_t t, double density, double delta,
                        double constant = 1.0);

/// Theorem 1 (second form): rounds sufficient for (ε, δ) accuracy:
/// t = c2 * log(1/δ) * [loglog(1/δ) + log(1/(dε))]^2 / (d ε²).
std::uint64_t theorem1_rounds(double epsilon, double density, double delta,
                              double constant = 1.0);

/// Lemma 19 (general regular graph): ε = B(t) * sqrt(log(1/δ)/(t d)).
double lemma19_epsilon(std::uint32_t t, double density, double delta,
                       double b_of_t, double constant = 1.0);

/// Theorem 21 (ring, Chebyshev analysis): ε = sqrt(1/(sqrt(t) d δ)).
double theorem21_epsilon_ring(std::uint32_t t, double density, double delta,
                              double constant = 1.0);

/// Theorem 21 round bound: t = (1/(d ε² δ))².
std::uint64_t theorem21_rounds_ring(double epsilon, double density,
                                    double delta, double constant = 1.0);

/// Theorem 32 / complete-graph Chernoff reference:
/// ε = sqrt(6 log(2/δ) / (t d)) — the independent-sampling accuracy.
double independent_sampling_epsilon(std::uint32_t t, double density,
                                    double delta);

/// Chernoff round bound for independent sampling: t = 3 log(2/δ)/(d ε²).
std::uint64_t independent_sampling_rounds(double epsilon, double density,
                                          double delta);

// ---------------------------------------------------------------------------
// Network size estimation (Theorems 27 and 31, Section 5.1).
// ---------------------------------------------------------------------------

/// Theorem 27: the n²t budget sufficient for (ε, δ):
/// n²t = (B(t)·avg_deg + 1) / (ε² δ) * |V|.
double theorem27_n2t(double epsilon, double delta, double b_of_t,
                     double avg_degree, std::uint64_t num_vertices);

/// Theorem 27 inverted: predicted ε for a given (n, t) budget.
double theorem27_epsilon(std::uint64_t n_walks, std::uint64_t t, double delta,
                         double b_of_t, double avg_degree,
                         std::uint64_t num_vertices);

/// Theorem 31: walks needed for average-degree estimation:
/// n = (1/(ε² δ)) * (avg_deg / min_deg).
std::uint64_t theorem31_walks(double epsilon, double delta, double avg_degree,
                              double min_degree);

/// Section 5.1.4 burn-in length: M = log(|E|/δ)/(1-λ).
std::uint64_t burn_in_rounds(std::uint64_t num_edges, double delta,
                             double lambda);

}  // namespace antdense::core
