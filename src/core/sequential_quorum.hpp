// Sequential (anytime) quorum detection — the Section 6.2 extension the
// paper sketches: for threshold detection an agent does not need a
// (1±ε) estimate of d itself, only to decide d >= θ(1+γ) vs d <= θ, and
// it can stop as soon as its running evidence is conclusive.
//
// The detector combines the anytime estimate c/r with the per-agent
// empirical-Bernstein interval (core/confidence.hpp): it declares
// quorum when the interval's lower end clears θ(1+γ/2), declares
// no-quorum when the upper end falls below it, and keeps walking
// otherwise, up to the Theorem 1 budget.  Densities far from the
// threshold resolve in far fewer rounds than the worst-case budget —
// the property the benches quantify.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/confidence.hpp"
#include "core/quorum.hpp"
#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::core {

enum class QuorumDecision : std::uint8_t {
  kQuorum,
  kNoQuorum,
  kUndecided,  // budget exhausted inside the don't-care band
};

struct SequentialQuorumResult {
  std::vector<QuorumDecision> decisions;      // per agent
  std::vector<std::uint32_t> decision_round;  // round of stopping (or budget)
  double true_density = 0.0;
  std::uint32_t budget = 0;
};

struct SequentialQuorumConfig {
  double threshold = 0.0;     // θ
  double gamma = 0.0;         // separation gap
  double delta = 0.0;         // per-agent failure probability
  std::uint32_t check_every = 32;  // interval-evaluation cadence
  /// Width inflation handed to the empirical-Bernstein interval
  /// (log-flavored on the torus; see core/confidence.hpp).
  double correlation_inflation = 2.0;
  /// Hard round cap; 0 means "use the Theorem 1 budget".
  std::uint32_t max_rounds = 0;
};

/// Runs all agents' sequential detectors simultaneously on `topo`.
template <graph::Topology T>
SequentialQuorumResult run_sequential_quorum(
    const T& topo, std::uint32_t num_agents,
    const SequentialQuorumConfig& cfg, std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(cfg.check_every >= 1, "check cadence must be >= 1");
  const QuorumDetector detector(cfg.threshold, cfg.gamma, cfg.delta);
  const double midpoint = cfg.threshold * (1.0 + cfg.gamma / 2.0);
  const std::uint32_t budget =
      cfg.max_rounds > 0
          ? cfg.max_rounds
          : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                detector.required_rounds(), topo.num_nodes()));

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x5EBu));
  std::vector<typename T::node_type> pos(num_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }
  std::vector<std::uint64_t> keys(num_agents);
  // Per-agent streaming moments of the per-round counts (for the
  // empirical-Bernstein width without storing the full history).
  std::vector<double> sum(num_agents, 0.0);
  std::vector<double> sum_sq(num_agents, 0.0);
  sim::CollisionCounter counter(num_agents);

  SequentialQuorumResult result;
  result.true_density = static_cast<double>(num_agents - 1) /
                        static_cast<double>(topo.num_nodes());
  result.budget = budget;
  result.decisions.assign(num_agents, QuorumDecision::kUndecided);
  result.decision_round.assign(num_agents, budget);
  std::uint32_t undecided = num_agents;

  const double log_term = std::log(3.0 / cfg.delta);
  for (std::uint32_t r = 1; r <= budget && undecided > 0; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      counter.add(keys[i]);
    }
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      const double x = counter.occupancy(keys[i]) - 1;
      sum[i] += x;
      sum_sq[i] += x * x;
    }
    if (r % cfg.check_every != 0 || r < 2) {
      continue;
    }
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      if (result.decisions[i] != QuorumDecision::kUndecided) {
        continue;
      }
      const double t = r;
      const double mean = sum[i] / t;
      const double variance =
          std::max(0.0, (sum_sq[i] - t * mean * mean) / (t - 1.0));
      const double half =
          cfg.correlation_inflation *
          (std::sqrt(2.0 * variance * log_term / t) + 3.0 * log_term / t);
      if (mean - half > midpoint) {
        result.decisions[i] = QuorumDecision::kQuorum;
        result.decision_round[i] = r;
        --undecided;
      } else if (mean + half < midpoint) {
        result.decisions[i] = QuorumDecision::kNoQuorum;
        result.decision_round[i] = r;
        --undecided;
      }
    }
  }

  // Budget exhausted: fall back to the fixed-horizon rule for agents
  // whose interval still straddles the midpoint.
  for (std::uint32_t i = 0; i < num_agents; ++i) {
    if (result.decisions[i] == QuorumDecision::kUndecided) {
      result.decisions[i] = (sum[i] / budget) >= midpoint
                                ? QuorumDecision::kQuorum
                                : QuorumDecision::kNoQuorum;
    }
  }
  return result;
}

}  // namespace antdense::core
