// Algorithm 4 (Appendix A) — the independent-sampling baseline.
//
// Agents flip a fair coin into `walking` or `stationary` state.  Walkers
// take the *deterministic* step (0,1) every round; everyone counts
// collisions.  Because walkers sweep disjoint fresh squares (t < sqrt(A))
// and stationary agents are uniform, each walker's count is a sum of
// independent Bernoulli(t/2A) samples over the other agents.  The final
// `c := c mod t` removes the t-fold collision trains produced by agents
// that started stacked on the same square in the same state.
// Theorem 32: t = Θ(log(1/δ)/(dε²)) suffices — the reference point the
// random-walk algorithm is measured against.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/torus2d.hpp"

namespace antdense::core {

struct IndependentSamplingResult {
  std::vector<double> estimates;  // per agent: 2*(c mod t)/t
  double true_density = 0.0;
  std::uint32_t rounds = 0;
};

/// Runs Algorithm 4 on the given torus.  Requires rounds < min(width,
/// height) so a walker's swept column never wraps (the theorem's
/// t < sqrt(A) condition on a square torus).
IndependentSamplingResult run_independent_sampling(
    const graph::Torus2D& torus, std::uint32_t num_agents,
    std::uint32_t rounds, std::uint64_t seed);

}  // namespace antdense::core
