#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace antdense::graph {

Graph Graph::from_edges(
    std::uint32_t num_vertices,
    const std::vector<std::pair<vertex, vertex>>& edges) {
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges) {
    ANTDENSE_CHECK(u < num_vertices && v < num_vertices,
                   "edge endpoint out of range");
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(g.offsets_.back());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                    g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Sorted adjacency makes neighborhood membership tests and tests'
  // comparisons deterministic.
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  g.num_edges_ = edges.size();
  return g;
}

bool Graph::is_regular(std::uint32_t* out_degree) const {
  const std::uint32_t n = num_vertices();
  if (n == 0) {
    return false;
  }
  const std::uint32_t d = degree(0);
  for (vertex v = 1; v < n; ++v) {
    if (degree(v) != d) {
      return false;
    }
  }
  if (out_degree != nullptr) {
    *out_degree = d;
  }
  return true;
}

std::uint32_t Graph::min_degree() const {
  ANTDENSE_CHECK(num_vertices() > 0, "empty graph");
  std::uint32_t best = degree(0);
  for (vertex v = 1; v < num_vertices(); ++v) {
    best = std::min(best, degree(v));
  }
  return best;
}

std::uint32_t Graph::max_degree() const {
  ANTDENSE_CHECK(num_vertices() > 0, "empty graph");
  std::uint32_t best = degree(0);
  for (vertex v = 1; v < num_vertices(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

double Graph::average_degree() const {
  ANTDENSE_CHECK(num_vertices() > 0, "empty graph");
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(num_vertices());
}

std::uint64_t Graph::sum_degree_squared() const {
  std::uint64_t acc = 0;
  for (vertex v = 0; v < num_vertices(); ++v) {
    const std::uint64_t d = degree(v);
    acc += d * d;
  }
  return acc;
}

}  // namespace antdense::graph
