// Perturbed movement model (Section 6.1): a 2-D torus whose walkers pick
// steps from a *non-uniform* distribution over
// {+x, -x, +y, -y, stay}.  Models ants with directional drift or pauses.
//
// Key property the experiments probe: per-agent drift does not break the
// uniform stationary marginals (each node still has in-probability equal
// to out-probability under translation invariance), so Lemma 2's
// unbiasedness survives; what changes is the *relative* walk between two
// agents and hence the re-collision structure and variance.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/topology.hpp"
#include "graph/torus2d.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class BiasedTorus2D {
 public:
  using node_type = Torus2D::node_type;

  /// probabilities: {+x, -x, +y, -y, stay}; must be non-negative and sum
  /// to 1 (within 1e-9).
  BiasedTorus2D(std::uint32_t width, std::uint32_t height,
                const std::array<double, 5>& probabilities)
      : base_(width, height), probs_(probabilities) {
    double total = 0.0;
    for (double p : probs_) {
      ANTDENSE_CHECK(p >= 0.0, "step probabilities must be non-negative");
      total += p;
    }
    ANTDENSE_CHECK(total > 1.0 - 1e-9 && total < 1.0 + 1e-9,
                   "step probabilities must sum to 1");
    cumulative_[0] = probs_[0];
    for (int i = 1; i < 5; ++i) {
      cumulative_[i] = cumulative_[i - 1] + probs_[i];
    }
  }

  /// The paper's pure random walk: uniform over the four directions.
  static BiasedTorus2D unbiased(std::uint32_t width, std::uint32_t height) {
    return BiasedTorus2D(width, height, {0.25, 0.25, 0.25, 0.25, 0.0});
  }

  /// Drift: extra weight `drift` moved from -x onto +x.
  static BiasedTorus2D with_drift(std::uint32_t width, std::uint32_t height,
                                  double drift) {
    ANTDENSE_CHECK(drift >= 0.0 && drift <= 0.25, "drift must be in [0,0.25]");
    return BiasedTorus2D(width, height,
                         {0.25 + drift, 0.25 - drift, 0.25, 0.25, 0.0});
  }

  /// Pause: probability `pause` of standing still, rest split evenly.
  static BiasedTorus2D with_pause(std::uint32_t width, std::uint32_t height,
                                  double pause) {
    ANTDENSE_CHECK(pause >= 0.0 && pause < 1.0, "pause must be in [0,1)");
    const double move = (1.0 - pause) / 4.0;
    return BiasedTorus2D(width, height, {move, move, move, move, pause});
  }

  std::uint64_t num_nodes() const { return base_.num_nodes(); }
  std::uint64_t degree() const { return 4; }
  std::uint32_t width() const { return base_.width(); }
  std::uint32_t height() const { return base_.height(); }
  const std::array<double, 5>& step_probabilities() const { return probs_; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return base_.random_node(gen);
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const double r = rng::uniform_unit(gen);
    for (int dir = 0; dir < 4; ++dir) {
      if (r < cumulative_[dir]) {
        return base_.step(u, dir);
      }
    }
    return u;  // stay
  }

  std::uint64_t key(node_type u) const { return base_.key(u); }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    base_.for_each_neighbor(u, fn);
  }

  std::string name() const {
    return "biased-" + base_.name();
  }

 private:
  Torus2D base_;
  std::array<double, 5> probs_;
  std::array<double, 5> cumulative_ = {};
};

static_assert(Topology<BiasedTorus2D>);

}  // namespace antdense::graph
