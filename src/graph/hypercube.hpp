// The k-dimensional hypercube of Section 4.5: A = 2^k vertices labeled by
// bit strings, one random bit flip per step.  Despite the spectral gap
// shrinking as 1/log A, local mixing *improves* with A: re-collision
// probability <= (9/10)^(m-1) + 1/sqrt(A) (Lemma 25), so density
// estimation matches independent sampling.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class Hypercube {
 public:
  using node_type = std::uint64_t;  // bit i = coordinate i

  explicit Hypercube(std::uint32_t dimensions) : k_(dimensions) {
    ANTDENSE_CHECK(dimensions >= 1 && dimensions <= 63,
                   "hypercube dimension must be in [1,63]");
  }

  std::uint64_t num_nodes() const { return std::uint64_t{1} << k_; }
  std::uint64_t degree() const { return k_; }
  std::uint32_t dimensions() const { return k_; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return gen() & (num_nodes() - 1);
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t bit = rng::uniform_below(gen, k_);
    return u ^ (std::uint64_t{1} << bit);
  }

  /// Batched stepping, same generator stream as sequential
  /// random_neighbor calls.  The bit-flip choice needs Lemire rejection
  /// (variable draw count), so batching cannot prefetch raw words here;
  /// the gain is the single inlined loop the engine drives.
  /// `out[i]` replaces `in[i]`; the spans may alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = in[i] ^ (std::uint64_t{1} << rng::uniform_below(gen, k_));
    }
  }

  /// UniformPickTopology factoring of random_neighbor: pick the bit to
  /// flip, then a pure XOR step.
  std::uint64_t pick_bound() const { return k_; }
  node_type pick_step(node_type u, std::uint64_t pick) const {
    return u ^ (std::uint64_t{1} << pick);
  }

  std::uint64_t key(node_type u) const { return u; }

  /// Hamming distance, for tests.
  static std::uint32_t hamming(node_type a, node_type b) {
    return static_cast<std::uint32_t>(__builtin_popcountll(a ^ b));
  }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (std::uint32_t b = 0; b < k_; ++b) {
      fn(u ^ (std::uint64_t{1} << b));
    }
  }

  std::string name() const { return "hypercube(k=" + std::to_string(k_) + ")"; }

 private:
  std::uint32_t k_;
};

static_assert(Topology<Hypercube>);
static_assert(BulkTopology<Hypercube>);
static_assert(UniformPickTopology<Hypercube>);

}  // namespace antdense::graph
