// Per-node / per-edge randomness derivation for the implicit topology
// generators (graph/rgg2d.hpp, graph/gnp.hpp, graph/ba.hpp).
//
// The implicit families never store a neighbor list: every adjacency
// query recomputes the generator's randomness from (user seed, domain
// tag, entity index) through the same SplitMix64-based derive_seed
// machinery the sharded engine uses for its per-shard streams
// (rng/stream.hpp).  Two properties are contractual and pinned by
// tests/test_implicit_golden.cpp:
//
//   1. Stability: every derivation below is pure 64-bit integer
//      arithmetic, so an implicit neighborhood is the same on every
//      platform, compiler, and release.  Changing any function or tag
//      here re-goldens every implicit-topology walk ever recorded —
//      treat a golden failure as a contract break, not a test to update.
//   2. Domain separation: each family owns an 8-byte ASCII tag, so a
//      node's RGG jitter can never collide with a GNP edge word or a BA
//      attachment stream derived from the same user seed, nor with the
//      engine's shard streams (kShardStreamTag) or the campaign/driver
//      tags.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).  The layer is
// modeled on KaGen's communication-free generators (Funke et al.), where
// recomputable per-chunk randomness replaces stored adjacency.
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace antdense::graph::implicit_hash {

/// "RGGJITTR": per-node position jitter of the 2-D random geometric
/// graph — one 64-bit word per node, split into a 32-bit jitter per
/// axis.
inline constexpr std::uint64_t kRgg2DJitterTag = 0x5247474A49545452ULL;

/// "GNPEDGEW": per-unordered-pair edge word of G(n, p) — compared
/// against the quantized edge threshold.
inline constexpr std::uint64_t kGnpEdgeTag = 0x474E504544474557ULL;

/// "BAATTACH": per-edge attachment stream of the Batagelj–Brandes
/// Barabási–Albert construction — seeds the SplitMix64 stream that
/// draws the edge's uniform array position (with Lemire rejection).
inline constexpr std::uint64_t kBaAttachTag = 0x4241415454414348ULL;

/// Node `u`'s jitter word in an RGG rooted at `seed`: low 32 bits are
/// the x jitter, high 32 bits the y jitter (cell-relative fixed point).
constexpr std::uint64_t rgg2d_jitter_word(std::uint64_t seed,
                                          std::uint64_t node) {
  return rng::derive_seed(seed, kRgg2DJitterTag, node);
}

/// The edge word of unordered pair {a, b} in G(n, p) rooted at `seed`.
/// Callers pass the canonical orientation a < b, so both endpoints
/// recompute the identical word and the graph is symmetric by
/// construction.
constexpr std::uint64_t gnp_edge_word(std::uint64_t seed, std::uint64_t a,
                                      std::uint64_t b) {
  return rng::derive_seed(seed, kGnpEdgeTag, a, b);
}

/// Seed of edge `j`'s private attachment stream in a Barabási–Albert
/// graph rooted at `seed`.
constexpr std::uint64_t ba_attach_seed(std::uint64_t seed,
                                       std::uint64_t edge) {
  return rng::derive_seed(seed, kBaAttachTag, edge);
}

}  // namespace antdense::graph::implicit_hash
