// Implicit 2-D random geometric graph — the massive-scale spatial
// substrate (ants/robots in continuous space; Hindes et al.'s
// stochastic-sensing swarms are exactly this regime).
//
// Nodes are points on the unit *torus* [0,1)^2, and u ~ v iff their
// wrap-aware Euclidean distance is at most `radius`.  Nothing is ever
// materialized: node u's position is recomputed on demand from
// implicit_hash::rgg2d_jitter_word(seed, u), so the topology costs O(1)
// memory at any n and a billion-node ScenarioSpec walks in O(agents)
// total (tests/test_implicit_memory.cpp pins the RSS bound).
//
// Point process: stratified one-point-per-cell placement.  The square is
// divided into side x side cells (side = ceil(sqrt(n))); node u sits in
// cell (u % side, u / side) at a hash-derived uniform jitter inside the
// cell (ids >= n in the final row are simply absent).  Stratified
// placement is what makes neighbor queries O(expected degree): a radius-
// r ball overlaps O((r*side+1)^2) cells and each cell holds at most one
// recomputable point.  The expected degree matches the i.i.d. RGG's
// pi*r^2*n exactly (each foreign cell's point is uniform in its cell, so
// inclusion probabilities integrate to the ball area) — the variance is
// slightly *below* binomial, which the degree-distribution tests
// account for.  For perfect-square n the process is exactly uniform;
// otherwise the trailing partial cell row thins the top band.
//
// All geometry is integer: positions are 32.32-style fixed point (cell
// index in the high bits, jitter in the low 32), distances compare in
// unsigned 128-bit, and the only floating-point step is the one IEEE
// double multiplication radius * world_width at construction — so
// neighborhoods are bit-stable across platforms and releases
// (tests/test_implicit_golden.cpp).
//
// Degree is *near*-uniform, not uniform: degree() reports the nominal
// expected degree for the Topology concept, degree_of(u) the exact
// value.  Isolated nodes (possible for tiny radius) self-loop, keeping
// the walk total.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#include "graph/implicit_hash.hpp"
#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::graph {

class Rgg2D {
 public:
  using node_type = std::uint64_t;

  /// Fixed-point position on the torus, in units of 1/(side * 2^32) of
  /// the unit square per axis.
  struct Position {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
  };

  Rgg2D(std::uint64_t num_nodes, double radius, std::uint64_t seed)
      : n_(num_nodes), radius_(radius), seed_(seed) {
    ANTDENSE_CHECK(num_nodes >= 2, "rgg2d requires at least 2 nodes");
    ANTDENSE_CHECK(num_nodes <= (std::uint64_t{1} << 32),
                   "rgg2d supports at most 2^32 nodes");
    ANTDENSE_CHECK(radius > 0.0 && radius < 1.0,
                   "rgg2d radius must be in (0, 1)");
    side_ = integer_sqrt_ceil(num_nodes);
    world_ = side_ << kCellBits;
    // The one floating-point step: one correctly-rounded IEEE double
    // multiplication (world_ <= 2^48 is exactly representable), so the
    // integer threshold is platform-stable.
    threshold_ =
        static_cast<std::uint64_t>(radius * static_cast<double>(world_));
    threshold_sq_ = static_cast<unsigned __int128>(threshold_) * threshold_;
    reach_ = (threshold_ >> kCellBits) + 1;
  }

  std::uint64_t num_nodes() const { return n_; }
  /// Nominal (expected) degree pi * r^2 * n — the substrate is
  /// near-regular, not regular; degree_of(u) is the exact per-node value.
  std::uint64_t degree() const {
    const double expected =
        3.14159265358979323846 * radius_ * radius_ * static_cast<double>(n_);
    const auto nominal = static_cast<std::uint64_t>(std::llround(expected));
    return nominal < 1 ? 1 : (nominal > n_ - 1 ? n_ - 1 : nominal);
  }
  double radius() const { return radius_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t side() const { return side_; }
  /// Cells within Chebyshev distance reach() can hold neighbors.
  std::uint64_t reach() const { return reach_; }

  /// Node u's recomputed position: cell origin plus hash-derived jitter.
  Position position(node_type u) const {
    const std::uint64_t w = implicit_hash::rgg2d_jitter_word(seed_, u);
    return Position{((u % side_) << kCellBits) |
                        (w & 0xFFFFFFFFULL),
                    ((u / side_) << kCellBits) | (w >> 32)};
  }

  /// Wrap-aware Euclidean adjacency test (exact, integer-only).
  bool connected(node_type u, node_type v) const {
    if (u == v) {
      return false;
    }
    return within_radius(position(u), position(v));
  }

  /// Exact degree of u, by scanning the O(reach^2) candidate cells.
  std::uint64_t degree_of(node_type u) const {
    std::uint64_t count = 0;
    for_each_neighbor(u, [&count](node_type) { ++count; });
    return count;
  }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return rng::uniform_below(gen, n_);
  }

  /// Uniform over N(u), recomputed on the fly: one count pass, one
  /// uniform draw, one selection pass.  Isolated nodes self-loop (the
  /// walk must stay total; for radii above the connectivity threshold
  /// isolation is vanishingly rare).
  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t deg = degree_of(u);
    if (deg == 0) {
      return u;
    }
    const std::uint64_t pick = rng::uniform_below(gen, deg);
    std::uint64_t index = 0;
    node_type chosen = u;
    for_each_neighbor(u, [&](node_type v) {
      if (index == pick) {
        chosen = v;
      }
      ++index;
    });
    return chosen;
  }

  /// Batched stepping: same generator stream as sequential
  /// random_neighbor calls (the BulkTopology contract).  The spans may
  /// alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = random_neighbor(in[i], gen);
    }
  }

  std::uint64_t key(node_type u) const { return u; }

  void keys(std::span<const node_type> nodes,
            std::span<std::uint64_t> out) const {
    ANTDENSE_CHECK(nodes.size() == out.size(),
                   "key batching needs equal-sized spans");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = nodes[i];
    }
  }

  /// Enumerates N(u) in a fixed deterministic order (cell-major over the
  /// candidate window).  O(reach^2) candidate cells = O(expected degree)
  /// work.
  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    const Position pu = position(u);
    const std::uint64_t cx = u % side_;
    const std::uint64_t cy = u / side_;
    const auto visit = [&](std::uint64_t ccx, std::uint64_t ccy) {
      const node_type v = ccy * side_ + ccx;
      if (v >= n_ || v == u) {
        return;
      }
      if (within_radius(pu, position(v))) {
        fn(v);
      }
    };
    if (2 * reach_ + 1 >= side_) {
      // The window wraps onto itself: scan every cell exactly once.
      for (std::uint64_t y = 0; y < side_; ++y) {
        for (std::uint64_t x = 0; x < side_; ++x) {
          visit(x, y);
        }
      }
      return;
    }
    for (std::uint64_t dy = 0; dy <= 2 * reach_; ++dy) {
      const std::uint64_t ccy = (cy + side_ - reach_ + dy) % side_;
      for (std::uint64_t dx = 0; dx <= 2 * reach_; ++dx) {
        visit((cx + side_ - reach_ + dx) % side_, ccy);
      }
    }
  }

  std::string name() const {
    return "rgg2d(n=" + std::to_string(n_) +
           ",r=" + util::format_shortest(radius_) + ")";
  }

 private:
  static constexpr std::uint32_t kCellBits = 32;

  static std::uint64_t integer_sqrt_ceil(std::uint64_t n) {
    auto s = static_cast<std::uint64_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    // Correct any floating-point slop: smallest s with s*s >= n.
    while (s > 0 && (s - 1) * (s - 1) >= n) {
      --s;
    }
    while (s * s < n) {
      ++s;
    }
    return s;
  }

  std::uint64_t axis_distance(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t d = a > b ? a - b : b - a;
    return d <= world_ - d ? d : world_ - d;
  }

  bool within_radius(const Position& a, const Position& b) const {
    const std::uint64_t dx = axis_distance(a.x, b.x);
    const std::uint64_t dy = axis_distance(a.y, b.y);
    const unsigned __int128 dist_sq =
        static_cast<unsigned __int128>(dx) * dx +
        static_cast<unsigned __int128>(dy) * dy;
    return dist_sq <= threshold_sq_;
  }

  std::uint64_t n_;
  double radius_;
  std::uint64_t seed_;
  std::uint64_t side_ = 0;       // cells per axis
  std::uint64_t world_ = 0;      // torus width in fixed-point units
  std::uint64_t threshold_ = 0;  // radius in fixed-point units
  unsigned __int128 threshold_sq_ = 0;
  std::uint64_t reach_ = 0;      // candidate-cell Chebyshev radius
};

static_assert(Topology<Rgg2D>);
static_assert(BulkTopology<Rgg2D>);

}  // namespace antdense::graph
