#include "graph/torus2d.hpp"

#include <algorithm>
#include <cstdlib>

namespace antdense::graph {

std::uint64_t Torus2D::l1_distance(node_type a, node_type b) const {
  const auto wrap_dist = [](std::uint32_t p, std::uint32_t q,
                            std::uint32_t side) {
    const std::uint32_t d = p > q ? p - q : q - p;
    return std::min(d, side - d);
  };
  return static_cast<std::uint64_t>(wrap_dist(x_of(a), x_of(b), width_)) +
         wrap_dist(y_of(a), y_of(b), height_);
}

}  // namespace antdense::graph
