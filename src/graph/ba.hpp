// Implicit Barabási–Albert preferential-attachment graph, via the
// Batagelj–Brandes linear construction made storage-free.
//
// Batagelj & Brandes (2005) build BA(n, d) by writing the endpoint array
// M[0..2m): edge j has source M[2j] = j / d, and target M[2j+1] = M[r]
// for r uniform in [0, 2j+1).  Landing on an even slot copies a node id
// directly; landing on an odd slot copies an earlier *target*, which is
// exactly what makes attachment proportional to current degree.  We
// never store M: edge j's draw comes from its own private SplitMix64
// stream seeded by implicit_hash::ba_attach_seed(seed, j), so any M[r]
// can be recomputed on demand by chasing the odd-slot chain — a
// geometric chain with expected O(1) length.  The construction is
// all-integer (Lemire rejection on 64-bit words), hence bit-stable
// across platforms (pinned by tests/test_implicit_golden.cpp).
//
// Faithful BA semantics retained, quirks included: the graph is a
// multigraph, edge 0 is a self-loop on node 0 (r is forced to 0), and a
// self-loop contributes the node twice to its own neighbor multiset —
// the same convention as graph::Graph::from_edges, so differential
// tests compare like with like.  The degree distribution has the
// classic power-law tail with exponent ~3.
//
// Honest complexity note: out-neighbors (the d attachments of u) cost
// O(d) chains, but in-neighbors require scanning all m = n*d edge
// targets, so neighbor enumeration is O(m).  Like gnp, ba is an
// exact-in-distribution family for small and moderate n; rgg2d is the
// massive-scale one.
//
// Degree is heavy-tailed: degree() reports the nominal mean 2d for the
// Topology concept, degree_of(u) the exact value.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/implicit_hash.hpp"
#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class Ba {
 public:
  using node_type = std::uint64_t;

  Ba(std::uint64_t num_nodes, std::uint64_t attach_degree, std::uint64_t seed)
      : n_(num_nodes), d_(attach_degree), seed_(seed) {
    ANTDENSE_CHECK(num_nodes >= 2, "ba requires at least 2 nodes");
    ANTDENSE_CHECK(attach_degree >= 1, "ba attachment degree must be >= 1");
    ANTDENSE_CHECK(attach_degree < num_nodes,
                   "ba attachment degree must be < n");
    ANTDENSE_CHECK(num_nodes <= (std::uint64_t{1} << 32) &&
                       attach_degree <= (std::uint64_t{1} << 16),
                   "ba supports n <= 2^32 and d <= 2^16");
    m_ = n_ * d_;
  }

  std::uint64_t num_nodes() const { return n_; }
  /// Nominal (mean) degree 2d — the distribution is a power law;
  /// degree_of(u) is the exact value.
  std::uint64_t degree() const {
    const std::uint64_t nominal = 2 * d_;
    return nominal > n_ - 1 ? n_ - 1 : nominal;
  }
  std::uint64_t attach_degree() const { return d_; }
  std::uint64_t num_edges() const { return m_; }
  std::uint64_t seed() const { return seed_; }

  /// Source endpoint of edge j (the attaching node).
  node_type source_of(std::uint64_t edge) const { return edge / d_; }

  /// Target endpoint of edge j, recomputed by chasing the Batagelj–
  /// Brandes odd-slot chain (expected O(1) steps).
  node_type target_of(std::uint64_t edge) const {
    std::uint64_t j = edge;
    while (true) {
      rng::SplitMix64 gen(implicit_hash::ba_attach_seed(seed_, j));
      const std::uint64_t r = rng::uniform_below(gen, 2 * j + 1);
      if (r % 2 == 0) {
        return (r / 2) / d_;  // even slot holds edge (r/2)'s source
      }
      j = (r - 1) / 2;  // odd slot holds edge ((r-1)/2)'s target
    }
  }

  /// Exact degree of u (multi-edges counted with multiplicity, a
  /// self-loop counted twice) — O(m) target scan (see header note).
  std::uint64_t degree_of(node_type u) const {
    std::uint64_t count = 0;
    for_each_neighbor(u, [&count](node_type) { ++count; });
    return count;
  }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return rng::uniform_below(gen, n_);
  }

  /// Uniform over u's neighbor *multiset*: one count pass, one uniform
  /// draw, one selection pass.  Every node has degree >= d >= 1, so no
  /// self-loop fallback is needed.
  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t deg = degree_of(u);
    const std::uint64_t pick = rng::uniform_below(gen, deg);
    std::uint64_t index = 0;
    node_type chosen = u;
    for_each_neighbor(u, [&](node_type v) {
      if (index == pick) {
        chosen = v;
      }
      ++index;
    });
    return chosen;
  }

  /// Batched stepping, same generator stream as sequential calls.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = random_neighbor(in[i], gen);
    }
  }

  std::uint64_t key(node_type u) const { return u; }

  void keys(std::span<const node_type> nodes,
            std::span<std::uint64_t> out) const {
    ANTDENSE_CHECK(nodes.size() == out.size(),
                   "key batching needs equal-sized spans");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = nodes[i];
    }
  }

  /// Enumerates u's neighbor multiset in a fixed deterministic order:
  /// first the targets of u's own d edges (ascending edge id), then the
  /// sources of every edge targeting u (ascending edge id).
  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (std::uint64_t j = u * d_; j < (u + 1) * d_; ++j) {
      fn(target_of(j));
    }
    for (std::uint64_t j = 0; j < m_; ++j) {
      if (target_of(j) == u) {
        fn(source_of(j));
      }
    }
  }

  std::string name() const {
    return "ba(n=" + std::to_string(n_) + ",d=" + std::to_string(d_) + ")";
  }

 private:
  std::uint64_t n_;
  std::uint64_t d_;
  std::uint64_t seed_;
  std::uint64_t m_ = 0;  // total edges n * d
};

static_assert(Topology<Ba>);
static_assert(BulkTopology<Ba>);

}  // namespace antdense::graph
