#include "graph/algos.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace antdense::graph {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         Graph::vertex source) {
  ANTDENSE_CHECK(source < g.num_vertices(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  std::queue<Graph::vertex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const Graph::vertex v = frontier.front();
    frontier.pop();
    for (Graph::vertex u : g.neighbors(v)) {
      if (dist[u] == kUnreached) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) {
    return false;
  }
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreached; });
}

std::uint32_t connected_component_count(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::uint32_t components = 0;
  for (Graph::vertex s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    std::queue<Graph::vertex> frontier;
    frontier.push(s);
    seen[s] = true;
    while (!frontier.empty()) {
      const Graph::vertex v = frontier.front();
      frontier.pop();
      for (Graph::vertex u : g.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          frontier.push(u);
        }
      }
    }
  }
  return components;
}

bool is_bipartite(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::int8_t> color(n, -1);
  for (Graph::vertex s = 0; s < n; ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    std::queue<Graph::vertex> frontier;
    frontier.push(s);
    while (!frontier.empty()) {
      const Graph::vertex v = frontier.front();
      frontier.pop();
      for (Graph::vertex u : g.neighbors(v)) {
        if (u == v) {
          return false;  // self-loop
        }
        if (color[u] == -1) {
          color[u] = static_cast<std::int8_t>(1 - color[v]);
          frontier.push(u);
        } else if (color[u] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t diameter(const Graph& g) {
  ANTDENSE_CHECK(g.num_vertices() > 0, "empty graph");
  ANTDENSE_CHECK(is_connected(g), "diameter requires a connected graph");
  std::uint32_t best = 0;
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (std::uint32_t d : dist) {
      best = std::max(best, d);
    }
  }
  return best;
}

DegreeStats degree_stats(const Graph& g) {
  ANTDENSE_CHECK(g.num_vertices() > 0, "empty graph");
  DegreeStats s;
  s.min = g.min_degree();
  s.max = g.max_degree();
  s.mean = g.average_degree();
  double acc = 0.0;
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const double d = g.degree(v) - s.mean;
    acc += d * d;
  }
  s.variance = acc / g.num_vertices();
  return s;
}

}  // namespace antdense::graph
