#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::graph {

namespace {

using Edge = std::pair<Graph::vertex, Graph::vertex>;

Edge ordered(Graph::vertex a, Graph::vertex b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}

std::uint64_t edge_key(Graph::vertex a, Graph::vertex b) {
  const auto [lo, hi] = ordered(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

Graph make_ring_graph(std::uint32_t n) {
  ANTDENSE_CHECK(n >= 3, "ring requires n >= 3");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    edges.emplace_back(i, (i + 1) % n);
  }
  return Graph::from_edges(n, edges);
}

Graph make_path_graph(std::uint32_t n) {
  ANTDENSE_CHECK(n >= 2, "path requires n >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(i, i + 1);
  }
  return Graph::from_edges(n, edges);
}

Graph make_star_graph(std::uint32_t n) {
  ANTDENSE_CHECK(n >= 2, "star requires n >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (std::uint32_t i = 1; i < n; ++i) {
    edges.emplace_back(0, i);
  }
  return Graph::from_edges(n, edges);
}

Graph make_complete_graph(std::uint32_t n) {
  ANTDENSE_CHECK(n >= 2, "complete graph requires n >= 2");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      edges.emplace_back(i, j);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_torus2d_graph(std::uint32_t width, std::uint32_t height) {
  ANTDENSE_CHECK(width >= 3 && height >= 3,
                 "explicit torus requires sides >= 3 (smaller sides create "
                 "parallel edges)");
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return y * width + x;
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      edges.emplace_back(id(x, y), id((x + 1) % width, y));
      edges.emplace_back(id(x, y), id(x, (y + 1) % height));
    }
  }
  return Graph::from_edges(width * height, edges);
}

Graph make_hypercube_graph(std::uint32_t k) {
  ANTDENSE_CHECK(k >= 1 && k <= 24, "hypercube dimension must be in [1,24]");
  const std::uint32_t n = 1u << k;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < k; ++b) {
      const std::uint32_t u = v ^ (1u << b);
      if (v < u) {
        edges.emplace_back(v, u);
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_torus_kd_graph(std::uint32_t dimensions, std::uint32_t side) {
  ANTDENSE_CHECK(dimensions >= 1 && dimensions <= 8,
                 "dimensions must be in [1,8]");
  ANTDENSE_CHECK(side >= 3, "side must be >= 3 for a simple graph");
  std::uint64_t total = 1;
  for (std::uint32_t d = 0; d < dimensions; ++d) {
    total *= side;
    ANTDENSE_CHECK(total <= (1ULL << 31), "torus too large for explicit form");
  }
  const auto n = static_cast<std::uint32_t>(total);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dimensions);
  std::uint64_t stride = 1;
  for (std::uint32_t d = 0; d < dimensions; ++d) {
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint64_t coord = (v / stride) % side;
      const std::uint64_t fwd_coord = (coord + 1) % side;
      const auto u = static_cast<std::uint32_t>(
          v - coord * stride + fwd_coord * stride);
      edges.emplace_back(v, u);
    }
    stride *= side;
  }
  return Graph::from_edges(n, edges);
}

Graph make_erdos_renyi_graph(std::uint32_t n, std::uint64_t m,
                             std::uint64_t seed) {
  ANTDENSE_CHECK(n >= 2, "G(n,m) requires n >= 2");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  ANTDENSE_CHECK(m <= max_edges, "too many edges requested");
  rng::Xoshiro256pp gen(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto a = static_cast<Graph::vertex>(rng::uniform_below(gen, n));
    const auto b = static_cast<Graph::vertex>(rng::uniform_below(gen, n));
    if (a == b) continue;
    if (chosen.insert(edge_key(a, b)).second) {
      edges.push_back(ordered(a, b));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_barabasi_albert_graph(std::uint32_t n, std::uint32_t attach,
                                 std::uint64_t seed) {
  ANTDENSE_CHECK(attach >= 1, "attachment count must be >= 1");
  ANTDENSE_CHECK(n > attach, "n must exceed the attachment count");
  rng::Xoshiro256pp gen(seed);
  // Seed with a clique on (attach + 1) vertices so every early vertex has
  // positive degree, then grow.  `targets` holds one entry per edge
  // endpoint, so sampling an element uniformly is degree-proportional
  // sampling.
  std::vector<Edge> edges;
  std::vector<Graph::vertex> endpoint_pool;
  const std::uint32_t seed_size = attach + 1;
  for (std::uint32_t i = 0; i < seed_size; ++i) {
    for (std::uint32_t j = i + 1; j < seed_size; ++j) {
      edges.emplace_back(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }
  std::vector<Graph::vertex> picks;
  picks.reserve(attach);
  for (std::uint32_t v = seed_size; v < n; ++v) {
    picks.clear();
    // Sample `attach` distinct existing vertices, degree-proportionally.
    std::unordered_set<Graph::vertex> seen;
    while (picks.size() < attach) {
      const Graph::vertex target =
          endpoint_pool[rng::uniform_below(gen, endpoint_pool.size())];
      if (seen.insert(target).second) {
        picks.push_back(target);
      }
    }
    for (Graph::vertex target : picks) {
      edges.emplace_back(v, target);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_watts_strogatz_graph(std::uint32_t n, std::uint32_t k, double beta,
                                std::uint64_t seed) {
  ANTDENSE_CHECK(k >= 1, "k must be >= 1");
  ANTDENSE_CHECK(n > 2 * k, "n must exceed 2k");
  ANTDENSE_CHECK(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  rng::Xoshiro256pp gen(seed);
  std::set<Edge> edge_set;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      edge_set.insert(ordered(v, (v + j) % n));
    }
  }
  // Rewire: each lattice edge (v, v+j) keeps v and redirects the other
  // endpoint with probability beta.
  std::vector<Edge> lattice(edge_set.begin(), edge_set.end());
  for (const Edge& e : lattice) {
    if (!rng::bernoulli(gen, beta)) continue;
    edge_set.erase(e);
    Graph::vertex v = e.first;
    // Retry until we find a non-duplicate, non-self target; bounded
    // retries keep generation total (fails only on near-complete graphs,
    // excluded by the n > 2k precondition).
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto w = static_cast<Graph::vertex>(rng::uniform_below(gen, n));
      if (w == v) continue;
      if (edge_set.insert(ordered(v, w)).second) {
        break;
      }
    }
  }
  std::vector<Edge> edges(edge_set.begin(), edge_set.end());
  return Graph::from_edges(n, edges);
}

Graph make_random_regular_graph(std::uint32_t n, std::uint32_t k,
                                std::uint64_t seed) {
  ANTDENSE_CHECK(k >= 1 && k < n, "degree must be in [1, n)");
  ANTDENSE_CHECK((static_cast<std::uint64_t>(n) * k) % 2 == 0,
                 "n*k must be even");
  rng::Xoshiro256pp gen(seed);
  const std::uint64_t num_stubs = static_cast<std::uint64_t>(n) * k;

  // Configuration model with edge-swap repair.  A full restart succeeds
  // with probability ~e^{-(k^2-1)/4}, which is hopeless for k >= 6;
  // instead, pair stubs once and repair each self-loop/parallel edge by
  // double-edge swaps with uniformly random good edges.  Each swap
  // strictly reduces the violation count (we only accept swaps whose two
  // replacement edges are both new and loop-free), so this terminates
  // quickly and leaves degrees untouched.
  std::vector<Graph::vertex> stubs(num_stubs);
  for (std::uint64_t i = 0; i < num_stubs; ++i) {
    stubs[i] = static_cast<Graph::vertex>(i / k);
  }
  rng::shuffle(gen, stubs);
  std::vector<Edge> edges;
  edges.reserve(num_stubs / 2);
  for (std::uint64_t i = 0; i < num_stubs; i += 2) {
    edges.push_back(ordered(stubs[i], stubs[i + 1]));
  }

  std::unordered_set<std::uint64_t> edge_set;
  edge_set.reserve(edges.size() * 2);
  std::vector<char> is_bad(edges.size(), 0);
  std::vector<std::size_t> bad;  // indices of violating edges
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [a, b] = edges[i];
    if (a == b || !edge_set.insert(edge_key(a, b)).second) {
      is_bad[i] = 1;
      bad.push_back(i);
    }
  }

  const std::uint64_t max_attempts = 200ull * num_stubs + 100000ull;
  std::uint64_t attempts = 0;
  while (!bad.empty()) {
    ANTDENSE_ASSERT(++attempts <= max_attempts,
                    "edge-swap repair did not converge");
    const std::size_t bad_idx = bad.back();
    auto [a, b] = edges[bad_idx];
    // Pick a random partner edge; must itself be a good edge (a bad
    // duplicate can share its key with a registered good copy, so the
    // per-index flag — not a key lookup — decides eligibility).
    const std::size_t other_idx = rng::uniform_below(gen, edges.size());
    if (other_idx == bad_idx || is_bad[other_idx]) continue;
    auto [c, d] = edges[other_idx];
    // Randomize orientation of the partner edge.
    if (rng::coin_flip(gen)) {
      std::swap(c, d);
    }
    // Proposed replacements: (a, c) and (b, d).
    if (a == c || b == d) continue;
    if (edge_set.count(edge_key(a, c)) > 0 ||
        edge_set.count(edge_key(b, d)) > 0) {
      continue;
    }
    if (edge_key(a, c) == edge_key(b, d)) continue;
    // Commit: remove the partner edge, add both replacements.  The bad
    // edge was never in edge_set (it was a violation).
    edge_set.erase(edge_key(c, d));
    edge_set.insert(edge_key(a, c));
    edge_set.insert(edge_key(b, d));
    edges[bad_idx] = ordered(a, c);
    edges[other_idx] = ordered(b, d);
    is_bad[bad_idx] = 0;
    bad.pop_back();
  }
  return Graph::from_edges(n, edges);
}

}  // namespace antdense::graph
