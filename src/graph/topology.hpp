// The Topology concept: the minimal interface the density-estimation
// engine needs from a graph substrate.
//
// All of the paper's substrates are *regular* graphs (uniform degree) —
// regularity is what keeps uniformly-placed random walkers uniformly
// distributed in every round (Lemma 2 relies on it).  Topologies are
// value types; nodes are cheap handles with a packed 64-bit key used by
// the collision counter.
//
// Implemented models:
//   Torus2D      — the paper's main model (Section 2)
//   Ring         — 1-D torus (Section 4.2)
//   TorusKD      — k-dimensional torus (Section 4.3)
//   Hypercube    — k-dimensional hypercube (Section 4.5)
//   CompleteGraph— the independent-sampling reference (Section 1.1)
//   ExplicitTopology — any regular CSR graph, e.g. random-regular
//                  expanders (Section 4.4)
//
// A concept rather than a virtual base keeps the per-step cost inlined;
// benches push billions of steps through these calls.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {

template <typename T>
concept Topology = requires(const T& t, const typename T::node_type& u,
                            rng::Xoshiro256pp& g) {
  typename T::node_type;
  { t.num_nodes() } -> std::convertible_to<std::uint64_t>;
  { t.degree() } -> std::convertible_to<std::uint64_t>;
  { t.random_node(g) } -> std::same_as<typename T::node_type>;
  { t.random_neighbor(u, g) } -> std::same_as<typename T::node_type>;
  { t.key(u) } -> std::same_as<std::uint64_t>;
  { t.name() } -> std::convertible_to<std::string>;
};

}  // namespace antdense::graph
