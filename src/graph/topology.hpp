// The Topology concept: the minimal interface the density-estimation
// engine needs from a graph substrate.
//
// All of the paper's substrates are *regular* graphs (uniform degree) —
// regularity is what keeps uniformly-placed random walkers uniformly
// distributed in every round (Lemma 2 relies on it).  Topologies are
// value types; nodes are cheap handles with a packed 64-bit key used by
// the collision counter.
//
// Implemented models:
//   Torus2D      — the paper's main model (Section 2)
//   Ring         — 1-D torus (Section 4.2)
//   TorusKD      — k-dimensional torus (Section 4.3)
//   Hypercube    — k-dimensional hypercube (Section 4.5)
//   CompleteGraph— the independent-sampling reference (Section 1.1)
//   ExplicitTopology — any regular CSR graph, e.g. random-regular
//                  expanders (Section 4.4)
//
// A concept rather than a virtual base keeps the per-step cost inlined;
// benches push billions of steps through these calls.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <string>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::graph {

template <typename T>
concept Topology = requires(const T& t, const typename T::node_type& u,
                            rng::Xoshiro256pp& g) {
  typename T::node_type;
  { t.num_nodes() } -> std::convertible_to<std::uint64_t>;
  { t.degree() } -> std::convertible_to<std::uint64_t>;
  { t.random_node(g) } -> std::same_as<typename T::node_type>;
  { t.random_neighbor(u, g) } -> std::same_as<typename T::node_type>;
  { t.key(u) } -> std::same_as<std::uint64_t>;
  { t.name() } -> std::convertible_to<std::string>;
};

/// A topology with a batched neighbor-sampling member.  The member must
/// consume the generator exactly as in.size() sequential random_neighbor
/// calls would (same draws, same order), so batched and per-agent
/// stepping are interchangeable bit-for-bit at a fixed seed.
template <typename T>
concept BulkTopology =
    Topology<T> &&
    requires(const T& t, std::span<const typename T::node_type> in,
             std::span<typename T::node_type> out, rng::Xoshiro256pp& g) {
      { t.random_neighbors(in, out, g) } -> std::same_as<void>;
    };

/// A topology whose neighbor draw factors into "uniform pick below a
/// node-independent bound, then a pure function of (node, pick)".  The
/// contract, relied on by the vector engine's batched Lemire stepping:
///   random_neighbor(u, g) == pick_step(u, uniform_below(g, pick_bound()))
/// consuming the generator identically.
template <typename T>
concept UniformPickTopology =
    Topology<T> && requires(const T& t, const typename T::node_type& u,
                            std::uint64_t pick) {
      { t.pick_bound() } -> std::convertible_to<std::uint64_t>;
      { t.pick_step(u, pick) } -> std::same_as<typename T::node_type>;
    };

/// Same factoring with a per-node pick bound (irregular-degree families):
///   random_neighbor(u, g) == pick_step(u, uniform_below(g, pick_bound(u)))
template <typename T>
concept VariablePickTopology =
    Topology<T> && requires(const T& t, const typename T::node_type& u,
                            std::uint64_t pick) {
      { t.pick_bound(u) } -> std::convertible_to<std::uint64_t>;
      { t.pick_step(u, pick) } -> std::same_as<typename T::node_type>;
    };

namespace detail {

/// Shared scaffold for topologies whose step needs exactly one raw
/// generator word (ring, torus2d): draws a block of words sequentially
/// (one per node — the stream-compatibility contract), then applies
/// `step(node, word)` in a tight loop the compiler can vectorize.
/// The spans may alias elementwise.
template <typename Node, rng::BitGenerator64 G, typename StepFn>
inline void blocked_random_neighbors(std::span<const Node> in,
                                     std::span<Node> out, G& gen,
                                     StepFn&& step) {
  constexpr std::size_t kBlock = 256;
  std::uint64_t words[kBlock];
  for (std::size_t done = 0; done < in.size();) {
    const std::size_t m = std::min(kBlock, in.size() - done);
    for (std::size_t j = 0; j < m; ++j) {
      words[j] = gen();
    }
    for (std::size_t j = 0; j < m; ++j) {
      out[done + j] = step(in[done + j], words[j]);
    }
    done += m;
  }
}

}  // namespace detail

/// Samples one neighbor for every node in `in`, writing to `out`
/// (`out[i]` replaces `in[i]`; the spans may alias elementwise, so
/// stepping a position array in place is fine).  Dispatches to the
/// topology's batched member when it has one, else falls back to
/// sequential random_neighbor calls — the generator stream is identical
/// either way.
template <Topology T, rng::BitGenerator64 G>
inline void random_neighbors(const T& topo,
                             std::span<const typename T::node_type> in,
                             std::span<typename T::node_type> out, G& gen) {
  ANTDENSE_CHECK(in.size() == out.size(),
                 "bulk neighbor sampling needs equal-sized spans");
  if constexpr (requires { topo.random_neighbors(in, out, gen); }) {
    topo.random_neighbors(in, out, gen);
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = topo.random_neighbor(in[i], gen);
    }
  }
}

/// Computes `out[i] = topo.key(nodes[i])` for every node, dispatching to
/// a batched `keys` member when the topology has one.  Concrete
/// topologies inline the per-node loop; type-erased handles
/// (graph::AnyTopology) override the batched member so occupancy
/// counting costs one virtual call per round, not one per agent.
template <Topology T>
inline void node_keys(const T& topo,
                      std::span<const typename T::node_type> nodes,
                      std::span<std::uint64_t> out) {
  ANTDENSE_CHECK(nodes.size() == out.size(),
                 "key batching needs equal-sized spans");
  if constexpr (requires { topo.keys(nodes, out); }) {
    topo.keys(nodes, out);
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = topo.key(nodes[i]);
    }
  }
}

}  // namespace antdense::graph
