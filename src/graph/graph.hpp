// Explicit undirected graph in compressed-sparse-row form.
//
// This is the substrate for Section 4.4 (regular expanders run through
// Algorithm 1) and Section 5.1 (network size estimation over graphs we
// can only crawl by neighborhood queries).  Vertices are dense uint32
// ids; parallel edges and self-loops are permitted (the configuration
// model can produce them) but the generators avoid them unless asked.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace antdense::graph {

class Graph {
 public:
  using vertex = std::uint32_t;

  Graph() = default;

  /// Builds from an undirected edge list over vertices [0, num_vertices).
  /// Each pair {u, v} contributes v to u's adjacency and u to v's.
  static Graph from_edges(std::uint32_t num_vertices,
                          const std::vector<std::pair<vertex, vertex>>& edges);

  std::uint32_t num_vertices() const {
    return offsets_.empty()
               ? 0
               : static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// Number of undirected edges (self-loop counts once).
  std::uint64_t num_edges() const { return num_edges_; }

  std::uint32_t degree(vertex v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const vertex> neighbors(vertex v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The i-th neighbor of v, 0 <= i < degree(v).
  vertex neighbor(vertex v, std::uint32_t i) const {
    return adjacency_[offsets_[v] + i];
  }

  /// True when every vertex has the same degree (and the graph is
  /// non-empty); that shared degree is returned through *out if non-null.
  bool is_regular(std::uint32_t* out_degree = nullptr) const;

  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;
  /// 2|E| / |V|.
  double average_degree() const;

  /// Sum over vertices of degree^2 — the [KLSC14] baseline's key
  /// quantity.
  std::uint64_t sum_degree_squared() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size |V|+1
  std::vector<vertex> adjacency_;       // size 2|E| (self-loop appears twice)
  std::uint64_t num_edges_ = 0;
};

}  // namespace antdense::graph
