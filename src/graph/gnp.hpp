// Implicit Erdős–Rényi G(n, p) — every unordered pair {u, v} is an edge
// independently with probability p, decided by comparing the pair's
// recomputable hash word implicit_hash::gnp_edge_word(seed, min, max)
// against a fixed 64-bit threshold.  Both endpoints recompute the same
// word, so the graph is symmetric by construction, and nothing is ever
// stored: the topology is O(1) memory at any n.
//
// The realized edge probability is threshold / 2^64 with threshold =
// round-toward-zero of p * 2^64 — a quantization of p below one part in
// 2^64, far under any statistical resolution.  The threshold is the
// product of one IEEE double ldexp/multiply at construction, so
// adjacency is bit-stable across platforms (pinned by
// tests/test_implicit_golden.cpp).
//
// Honest complexity note: unlike rgg2d there is no spatial structure to
// exploit, so neighbor enumeration scans all n-1 candidate pairs —
// queries are O(n), not O(degree).  G(n, p) is therefore the
// exact-in-distribution reference family for small and moderate n
// (differential tests, campaign sweeps), not the massive-scale one;
// rgg2d fills that role.
//
// Degree is Binomial(n-1, p): degree() reports the nominal mean for the
// Topology concept, degree_of(u) the exact value.  Isolated nodes
// self-loop so the walk stays total.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#include "graph/implicit_hash.hpp"
#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::graph {

class Gnp {
 public:
  using node_type = std::uint64_t;

  Gnp(std::uint64_t num_nodes, double p, std::uint64_t seed)
      : n_(num_nodes), p_(p), seed_(seed) {
    ANTDENSE_CHECK(num_nodes >= 2, "gnp requires at least 2 nodes");
    ANTDENSE_CHECK(num_nodes <= (std::uint64_t{1} << 32),
                   "gnp supports at most 2^32 nodes");
    ANTDENSE_CHECK(p > 0.0 && p <= 1.0, "gnp p must be in (0, 1]");
    // Quantize p to a 64-bit acceptance threshold: edge iff word <
    // threshold.  p == 1 saturates (every word is below 2^64).
    all_edges_ = p >= 1.0;
    threshold_ = all_edges_
                     ? ~std::uint64_t{0}
                     : static_cast<std::uint64_t>(std::ldexp(p, 64));
  }

  std::uint64_t num_nodes() const { return n_; }
  /// Nominal (mean) degree p * (n - 1); degree_of(u) is exact.
  std::uint64_t degree() const {
    const auto nominal = static_cast<std::uint64_t>(
        std::llround(p_ * static_cast<double>(n_ - 1)));
    return nominal < 1 ? 1 : (nominal > n_ - 1 ? n_ - 1 : nominal);
  }
  double probability() const { return p_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t threshold() const { return threshold_; }

  /// Exact pairwise adjacency test: one hash word, one compare.
  bool connected(node_type u, node_type v) const {
    if (u == v) {
      return false;
    }
    if (all_edges_) {
      return true;
    }
    const node_type a = u < v ? u : v;
    const node_type b = u < v ? v : u;
    return implicit_hash::gnp_edge_word(seed_, a, b) < threshold_;
  }

  /// Exact degree of u — O(n) candidate scan (see header note).
  std::uint64_t degree_of(node_type u) const {
    std::uint64_t count = 0;
    for_each_neighbor(u, [&count](node_type) { ++count; });
    return count;
  }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return rng::uniform_below(gen, n_);
  }

  /// Uniform over N(u): one count pass, one uniform draw, one selection
  /// pass.  Isolated nodes self-loop.
  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t deg = degree_of(u);
    if (deg == 0) {
      return u;
    }
    const std::uint64_t pick = rng::uniform_below(gen, deg);
    std::uint64_t index = 0;
    node_type chosen = u;
    for_each_neighbor(u, [&](node_type v) {
      if (index == pick) {
        chosen = v;
      }
      ++index;
    });
    return chosen;
  }

  /// Batched stepping, same generator stream as sequential calls.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = random_neighbor(in[i], gen);
    }
  }

  std::uint64_t key(node_type u) const { return u; }

  void keys(std::span<const node_type> nodes,
            std::span<std::uint64_t> out) const {
    ANTDENSE_CHECK(nodes.size() == out.size(),
                   "key batching needs equal-sized spans");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = nodes[i];
    }
  }

  /// Enumerates N(u) in ascending node order.
  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (node_type v = 0; v < n_; ++v) {
      if (v != u && connected(u, v)) {
        fn(v);
      }
    }
  }

  std::string name() const {
    return "gnp(n=" + std::to_string(n_) +
           ",p=" + util::format_shortest(p_) + ")";
  }

 private:
  std::uint64_t n_;
  double p_;
  std::uint64_t seed_;
  std::uint64_t threshold_ = 0;
  bool all_edges_ = false;
};

static_assert(Topology<Gnp>);
static_assert(BulkTopology<Gnp>);

}  // namespace antdense::graph
