// The complete graph K_A — the paper's independent-sampling reference
// point (Section 1.1).  Every step goes to a uniformly random *other*
// node, so collisions are (essentially) independent Bernoulli samples and
// the Chernoff bound applies directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class CompleteGraph {
 public:
  using node_type = std::uint64_t;

  explicit CompleteGraph(std::uint64_t num_nodes) : size_(num_nodes) {
    ANTDENSE_CHECK(num_nodes >= 2, "complete graph requires >= 2 nodes");
  }

  std::uint64_t num_nodes() const { return size_; }
  std::uint64_t degree() const { return size_ - 1; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return rng::uniform_below(gen, size_);
  }

  /// Uniform over the A-1 nodes other than u.
  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t r = rng::uniform_below(gen, size_ - 1);
    return r >= u ? r + 1 : r;
  }

  /// Batched stepping, same generator stream as sequential
  /// random_neighbor calls.  `out[i]` replaces `in[i]`; the spans may
  /// alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::uint64_t r = rng::uniform_below(gen, size_ - 1);
      out[i] = r >= in[i] ? r + 1 : r;
    }
  }

  /// UniformPickTopology factoring of random_neighbor: pick among the
  /// A-1 other nodes, then skip past u.
  std::uint64_t pick_bound() const { return size_ - 1; }
  node_type pick_step(node_type u, std::uint64_t pick) const {
    return pick >= u ? pick + 1 : pick;
  }

  std::uint64_t key(node_type u) const { return u; }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (std::uint64_t v = 0; v < size_; ++v) {
      if (v != u) fn(v);
    }
  }

  std::string name() const {
    return "complete(" + std::to_string(size_) + ")";
  }

 private:
  std::uint64_t size_;
};

static_assert(Topology<CompleteGraph>);
static_assert(BulkTopology<CompleteGraph>);
static_assert(UniformPickTopology<CompleteGraph>);

}  // namespace antdense::graph
