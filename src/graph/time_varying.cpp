#include "graph/time_varying.hpp"

#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

TimeVaryingWorld::TimeVaryingWorld(const AnyTopology& topo) : topo_(&topo) {}

bool TimeVaryingWorld::fail_node(node_type u) {
  const std::uint64_t key = topo_->key(u);
  if (node_failed(key)) {
    return false;
  }
  failed_index_.emplace(key, failed_.size());
  failed_.push_back(key);
  return true;
}

bool TimeVaryingWorld::drop_edge(node_type u, node_type v) {
  ANTDENSE_CHECK(u != v, "an edge needs two distinct endpoints");
  const EdgeKey key = canonical_edge(topo_->key(u), topo_->key(v));
  if (down_index_.find(key) != down_index_.end()) {
    return false;
  }
  down_index_.emplace(key, down_.size());
  down_.push_back(key);
  return true;
}

void TimeVaryingWorld::recover(double recover_probability,
                               rng::Xoshiro256pp& gen) {
  ANTDENSE_CHECK(recover_probability >= 0.0 && recover_probability <= 1.0,
                 "recovery probability must be in [0,1]");
  if (recover_probability == 0.0) {
    return;
  }
  // One Bernoulli per element in insertion order, then swap-and-pop the
  // recovered indices from the back so earlier removals never move an
  // element that is still pending a decision.
  std::vector<std::size_t> recovered;
  for (std::size_t i = 0; i < failed_.size(); ++i) {
    if (rng::bernoulli(gen, recover_probability)) {
      recovered.push_back(i);
    }
  }
  for (std::size_t r = recovered.size(); r-- > 0;) {
    const std::size_t i = recovered[r];
    failed_index_.erase(failed_[i]);
    if (i + 1 != failed_.size()) {
      failed_[i] = failed_.back();
      failed_index_[failed_[i]] = i;
    }
    failed_.pop_back();
  }
  recovered.clear();
  for (std::size_t i = 0; i < down_.size(); ++i) {
    if (rng::bernoulli(gen, recover_probability)) {
      recovered.push_back(i);
    }
  }
  for (std::size_t r = recovered.size(); r-- > 0;) {
    const std::size_t i = recovered[r];
    down_index_.erase(down_[i]);
    if (i + 1 != down_.size()) {
      down_[i] = down_.back();
      down_index_[down_[i]] = i;
    }
    down_.pop_back();
  }
}

TimeVaryingWorld::node_type TimeVaryingWorld::deflect(
    node_type from, std::vector<node_type>& scratch) const {
  const std::uint64_t from_key = topo_->key(from);
  scratch.clear();
  topo_->append_neighbors(from, scratch);
  node_type best = from;
  std::uint64_t best_key = 0;
  bool found = false;
  for (const node_type w : scratch) {
    const std::uint64_t w_key = topo_->key(w);
    if (w_key == from_key || node_failed(w_key) ||
        edge_down(from_key, w_key)) {
      continue;
    }
    if (!found || w_key < best_key) {
      best = w;
      best_key = w_key;
      found = true;
    }
  }
  return best;
}

}  // namespace antdense::graph
