// The two-dimensional torus — the paper's primary model (Section 2).
//
// Nodes are (x, y) coordinates with 0 <= x < width, 0 <= y < height,
// packed into a single uint64 (x in the low 32 bits).  A random-walk step
// moves to one of the four axis neighbors chosen uniformly; coordinates
// wrap around.  The paper uses a square sqrt(A) x sqrt(A) torus; this
// class supports rectangles, and square(side) is the paper's case.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class Torus2D {
 public:
  using node_type = std::uint64_t;  // packed (y << 32) | x

  Torus2D(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height) {
    ANTDENSE_CHECK(width >= 2 && height >= 2,
                   "torus dimensions must be at least 2x2");
  }

  static Torus2D square(std::uint32_t side) { return Torus2D(side, side); }

  std::uint64_t num_nodes() const {
    return static_cast<std::uint64_t>(width_) * height_;
  }
  std::uint64_t degree() const { return 4; }
  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }

  static node_type pack(std::uint32_t x, std::uint32_t y) {
    return (static_cast<std::uint64_t>(y) << 32) | x;
  }
  static std::uint32_t x_of(node_type u) {
    return static_cast<std::uint32_t>(u & 0xFFFFFFFFULL);
  }
  static std::uint32_t y_of(node_type u) {
    return static_cast<std::uint32_t>(u >> 32);
  }

  node_type make_node(std::uint32_t x, std::uint32_t y) const {
    ANTDENSE_CHECK(x < width_ && y < height_, "coordinates out of range");
    return pack(x, y);
  }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    const auto x =
        static_cast<std::uint32_t>(rng::uniform_below(gen, width_));
    const auto y =
        static_cast<std::uint32_t>(rng::uniform_below(gen, height_));
    return pack(x, y);
  }

  /// One step of the paper's random walk: uniform over {+x, -x, +y, -y}.
  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t dir = gen() >> 62;  // two uniform bits
    return step(u, static_cast<int>(dir));
  }

  /// Batched stepping: one neighbor per input node, same generator
  /// stream as sequential random_neighbor calls.  Draws a block of raw
  /// words first, then applies a branchless wrap, so the position update
  /// runs as a tight select-based loop instead of a per-agent switch.
  /// `out[i]` replaces `in[i]`; the spans may alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    detail::blocked_random_neighbors(
        in, out, gen, [this](node_type u, std::uint64_t word) {
          return step_branchless(u, static_cast<std::uint32_t>(word >> 62));
        });
  }

  /// Deterministic step, dir in {0:+x, 1:-x, 2:+y, 3:-y}.  Exposed for
  /// the displacement experiments and for the independent-sampling
  /// baseline (Algorithm 4), which walks a fixed pattern.
  node_type step(node_type u, int dir) const {
    std::uint32_t x = x_of(u);
    std::uint32_t y = y_of(u);
    switch (dir & 3) {
      case 0:
        x = (x + 1 == width_) ? 0 : x + 1;
        break;
      case 1:
        x = (x == 0) ? width_ - 1 : x - 1;
        break;
      case 2:
        y = (y + 1 == height_) ? 0 : y + 1;
        break;
      default:
        y = (y == 0) ? height_ - 1 : y - 1;
        break;
    }
    return pack(x, y);
  }

  std::uint64_t key(node_type u) const {
    return static_cast<std::uint64_t>(y_of(u)) * width_ + x_of(u);
  }

  /// Torus (wrap-aware) L1 distance between nodes; used by tests and the
  /// swarm dispersion demo.
  std::uint64_t l1_distance(node_type a, node_type b) const;

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (int dir = 0; dir < 4; ++dir) {
      fn(step(u, dir));
    }
  }

  std::string name() const {
    return "torus2d(" + std::to_string(width_) + "x" +
           std::to_string(height_) + ")";
  }

 private:
  /// step() without the switch: adds width-1 / height-1 for the backward
  /// directions (≡ -1 mod size) and wraps with one conditional subtract,
  /// so the compiler can turn the bulk loop into compare-and-blend code.
  node_type step_branchless(node_type u, std::uint32_t dir) const {
    std::uint32_t x = x_of(u);
    std::uint32_t y = y_of(u);
    const std::uint32_t dx = dir == 0 ? 1u : (dir == 1 ? width_ - 1 : 0u);
    const std::uint32_t dy = dir == 2 ? 1u : (dir == 3 ? height_ - 1 : 0u);
    x += dx;
    x = x >= width_ ? x - width_ : x;
    y += dy;
    y = y >= height_ ? y - height_ : y;
    return pack(x, y);
  }

  std::uint32_t width_;
  std::uint32_t height_;
};

static_assert(Topology<Torus2D>);
static_assert(BulkTopology<Torus2D>);

}  // namespace antdense::graph
