// The k-dimensional torus of Section 4.3.  For k >= 3 local mixing is so
// strong (re-collision probability ~ 1/(m+1)^(k/2), Lemma 22) that
// encounter-rate density estimation matches independent sampling up to
// constants, even though the *global* mixing time is still ~A^(2/k).
//
// Nodes pack k coordinates (each < side) into a uint64, `bits` bits per
// dimension; k * bits must fit in 64.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class TorusKD {
 public:
  using node_type = std::uint64_t;

  TorusKD(std::uint32_t dimensions, std::uint32_t side)
      : k_(dimensions), side_(side) {
    ANTDENSE_CHECK(dimensions >= 1 && dimensions <= 16,
                   "dimensions must be in [1,16]");
    ANTDENSE_CHECK(side >= 2, "side length must be at least 2");
    bits_ = std::bit_width(static_cast<std::uint32_t>(side - 1));
    if (bits_ == 0) bits_ = 1;
    ANTDENSE_CHECK(static_cast<std::uint64_t>(bits_) * k_ <= 64,
                   "k * bits-per-dimension must fit in 64 bits");
    mask_ = (bits_ == 64) ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << bits_) - 1);
    num_nodes_ = 1;
    for (std::uint32_t i = 0; i < k_; ++i) {
      num_nodes_ *= side_;
    }
  }

  std::uint64_t num_nodes() const { return num_nodes_; }
  std::uint64_t degree() const { return 2ULL * k_; }
  std::uint32_t dimensions() const { return k_; }
  std::uint32_t side() const { return side_; }

  std::uint32_t coordinate(node_type u, std::uint32_t dim) const {
    ANTDENSE_CHECK(dim < k_, "dimension out of range");
    return static_cast<std::uint32_t>((u >> (dim * bits_)) & mask_);
  }

  node_type make_node(const std::vector<std::uint32_t>& coords) const {
    ANTDENSE_CHECK(coords.size() == k_, "coordinate count must equal k");
    node_type u = 0;
    for (std::uint32_t d = 0; d < k_; ++d) {
      ANTDENSE_CHECK(coords[d] < side_, "coordinate out of range");
      u |= static_cast<std::uint64_t>(coords[d]) << (d * bits_);
    }
    return u;
  }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    node_type u = 0;
    for (std::uint32_t d = 0; d < k_; ++d) {
      u |= rng::uniform_below(gen, side_) << (d * bits_);
    }
    return u;
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const std::uint64_t pick = rng::uniform_below(gen, 2ULL * k_);
    const auto dim = static_cast<std::uint32_t>(pick >> 1);
    const bool forward = (pick & 1) != 0;
    return step(u, dim, forward);
  }

  /// Batched stepping, same generator stream as sequential
  /// random_neighbor calls (the 2k-way direction draw keeps Lemire
  /// rejection, so raw words cannot be prefetched).  `out[i]` replaces
  /// `in[i]`; the spans may alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::uint64_t pick = rng::uniform_below(gen, 2ULL * k_);
      out[i] = step(in[i], static_cast<std::uint32_t>(pick >> 1),
                    (pick & 1) != 0);
    }
  }

  /// UniformPickTopology factoring of random_neighbor: a 2k-way pick
  /// (dimension in the high bits, direction in bit 0) then a pure step.
  std::uint64_t pick_bound() const { return 2ULL * k_; }
  node_type pick_step(node_type u, std::uint64_t pick) const {
    return step(u, static_cast<std::uint32_t>(pick >> 1), (pick & 1) != 0);
  }

  node_type step(node_type u, std::uint32_t dim, bool forward) const {
    const std::uint32_t shift = dim * bits_;
    auto c = static_cast<std::uint32_t>((u >> shift) & mask_);
    if (forward) {
      c = (c + 1 == side_) ? 0 : c + 1;
    } else {
      c = (c == 0) ? side_ - 1 : c - 1;
    }
    return (u & ~(mask_ << shift)) | (static_cast<std::uint64_t>(c) << shift);
  }

  std::uint64_t key(node_type u) const {
    // Mixed-radix index: dense in [0, num_nodes).
    std::uint64_t idx = 0;
    for (std::uint32_t d = k_; d-- > 0;) {
      idx = idx * side_ + coordinate(u, d);
    }
    return idx;
  }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (std::uint32_t d = 0; d < k_; ++d) {
      fn(step(u, d, true));
      fn(step(u, d, false));
    }
  }

  std::string name() const {
    return "torus" + std::to_string(k_) + "d(side=" + std::to_string(side_) +
           ")";
  }

 private:
  std::uint32_t k_;
  std::uint32_t side_;
  std::uint32_t bits_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t num_nodes_ = 0;
};

static_assert(Topology<TorusKD>);
static_assert(BulkTopology<TorusKD>);
static_assert(UniformPickTopology<TorusKD>);

}  // namespace antdense::graph
