// The ring (one-dimensional torus) of Section 4.2 — the paper's example
// of *weak* local mixing: re-collision probability decays only as
// 1/sqrt(m+1), so encounter-rate estimation converges like t^(-1/4)
// (Theorem 21) instead of ~t^(-1/2).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class Ring {
 public:
  using node_type = std::uint64_t;

  explicit Ring(std::uint64_t num_nodes) : size_(num_nodes) {
    ANTDENSE_CHECK(num_nodes >= 3, "ring requires at least 3 nodes");
  }

  std::uint64_t num_nodes() const { return size_; }
  std::uint64_t degree() const { return 2; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return rng::uniform_below(gen, size_);
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const bool forward = (gen() >> 63) != 0;
    return forward ? (u + 1 == size_ ? 0 : u + 1)
                   : (u == 0 ? size_ - 1 : u - 1);
  }

  /// Batched stepping: same generator stream as sequential
  /// random_neighbor calls, with the wrap done as a branchless add of
  /// +1 or size-1 (≡ -1 mod size) plus one conditional subtract.
  /// `out[i]` replaces `in[i]`; the spans may alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    detail::blocked_random_neighbors(
        in, out, gen, [this](node_type u, std::uint64_t word) {
          const std::uint64_t delta = (word >> 63) != 0 ? 1 : size_ - 1;
          const node_type v = u + delta;
          return v >= size_ ? v - size_ : v;
        });
  }

  std::uint64_t key(node_type u) const { return u; }

  /// Wrap-aware distance, for tests.
  std::uint64_t distance(node_type a, node_type b) const {
    const std::uint64_t d = a > b ? a - b : b - a;
    return d < size_ - d ? d : size_ - d;
  }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    fn(u + 1 == size_ ? 0 : u + 1);
    fn(u == 0 ? size_ - 1 : u - 1);
  }

  std::string name() const { return "ring(" + std::to_string(size_) + ")"; }

 private:
  std::uint64_t size_;
};

static_assert(Topology<Ring>);
static_assert(BulkTopology<Ring>);

}  // namespace antdense::graph
