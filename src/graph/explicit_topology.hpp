// Adapter exposing any explicit Graph with positive minimum degree
// through the Topology concept.  Regular graphs (Section 4.4 expanders,
// crawled regular networks) run Algorithm 1 unchanged; irregular graphs
// are accepted too so implicit generators (graph/rgg2d.hpp, gnp, ba) can
// be materialized into small explicit references for the differential
// suite — there degree() reports the nominal (average) degree and each
// neighbor draw is uniform over the node's own adjacency slice.  For a
// regular graph the per-node and nominal degrees coincide, so the
// generator stream is bit-identical to the historical regular-only
// adapter.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::graph {

class ExplicitTopology {
 public:
  using node_type = Graph::vertex;

  /// Borrows the graph; the Graph must outlive the adapter.  Every
  /// vertex needs at least one neighbor (walks must be total).
  explicit ExplicitTopology(const Graph& g, std::string label = "explicit")
      : graph_(&g), label_(std::move(label)) {
    ANTDENSE_CHECK(g.num_vertices() >= 1, "graph must be non-empty");
    ANTDENSE_CHECK(g.min_degree() >= 1,
                   "ExplicitTopology requires minimum degree >= 1 "
                   "(walks must be total)");
    std::uint32_t d = 0;
    regular_ = g.is_regular(&d);
    degree_ = regular_ ? d
                       : static_cast<std::uint32_t>(
                             std::llround(g.average_degree()));
    if (degree_ < 1) {
      degree_ = 1;
    }
  }

  std::uint64_t num_nodes() const { return graph_->num_vertices(); }
  /// Nominal degree: exact for regular graphs, the rounded average
  /// otherwise.  Per-node truth is graph().degree(u).
  std::uint64_t degree() const { return degree_; }
  bool is_regular() const { return regular_; }
  const Graph& graph() const { return *graph_; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return static_cast<node_type>(
        rng::uniform_below(gen, graph_->num_vertices()));
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const auto i = static_cast<std::uint32_t>(
        rng::uniform_below(gen, graph_->degree(u)));
    return graph_->neighbor(u, i);
  }

  /// Batched stepping, same generator stream as sequential
  /// random_neighbor calls.  `out[i]` replaces `in[i]`; the spans may
  /// alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      const auto pick = static_cast<std::uint32_t>(
          rng::uniform_below(gen, graph_->degree(in[i])));
      out[i] = graph_->neighbor(in[i], pick);
    }
  }

  /// VariablePickTopology factoring of random_neighbor: pick below the
  /// node's own degree, then index its adjacency slice.
  std::uint64_t pick_bound(node_type u) const { return graph_->degree(u); }
  node_type pick_step(node_type u, std::uint64_t pick) const {
    return graph_->neighbor(u, static_cast<std::uint32_t>(pick));
  }

  std::uint64_t key(node_type u) const { return u; }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (node_type v : graph_->neighbors(u)) {
      fn(v);
    }
  }

  std::string name() const {
    if (regular_) {
      return label_ + "(" + std::to_string(num_nodes()) +
             ",d=" + std::to_string(degree_) + ")";
    }
    return label_ + "(" + std::to_string(num_nodes()) + ",davg=" +
           util::format_shortest(graph_->average_degree()) + ")";
  }

 private:
  const Graph* graph_;
  std::uint32_t degree_;
  bool regular_ = false;
  std::string label_;
};

static_assert(Topology<ExplicitTopology>);
static_assert(BulkTopology<ExplicitTopology>);
static_assert(VariablePickTopology<ExplicitTopology>);

}  // namespace antdense::graph
