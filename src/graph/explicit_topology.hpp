// Adapter exposing any *regular* explicit Graph through the Topology
// concept, so Algorithm 1 runs unchanged on random-regular expanders
// (Section 4.4) or any crawled regular network.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class ExplicitTopology {
 public:
  using node_type = Graph::vertex;

  /// Borrows the graph; the Graph must outlive the adapter.
  explicit ExplicitTopology(const Graph& g, std::string label = "explicit")
      : graph_(&g), label_(std::move(label)) {
    std::uint32_t d = 0;
    ANTDENSE_CHECK(g.is_regular(&d),
                   "ExplicitTopology requires a regular graph");
    ANTDENSE_CHECK(d >= 1, "graph must have positive degree");
    degree_ = d;
  }

  std::uint64_t num_nodes() const { return graph_->num_vertices(); }
  std::uint64_t degree() const { return degree_; }
  const Graph& graph() const { return *graph_; }

  template <rng::BitGenerator64 G>
  node_type random_node(G& gen) const {
    return static_cast<node_type>(
        rng::uniform_below(gen, graph_->num_vertices()));
  }

  template <rng::BitGenerator64 G>
  node_type random_neighbor(node_type u, G& gen) const {
    const auto i =
        static_cast<std::uint32_t>(rng::uniform_below(gen, degree_));
    return graph_->neighbor(u, i);
  }

  /// Batched stepping, same generator stream as sequential
  /// random_neighbor calls.  `out[i]` replaces `in[i]`; the spans may
  /// alias elementwise.
  template <rng::BitGenerator64 G>
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out, G& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    for (std::size_t i = 0; i < in.size(); ++i) {
      const auto pick =
          static_cast<std::uint32_t>(rng::uniform_below(gen, degree_));
      out[i] = graph_->neighbor(in[i], pick);
    }
  }

  std::uint64_t key(node_type u) const { return u; }

  template <typename Fn>
  void for_each_neighbor(node_type u, Fn&& fn) const {
    for (node_type v : graph_->neighbors(u)) {
      fn(v);
    }
  }

  std::string name() const {
    return label_ + "(" + std::to_string(num_nodes()) +
           ",d=" + std::to_string(degree_) + ")";
  }

 private:
  const Graph* graph_;
  std::uint32_t degree_;
  std::string label_;
};

static_assert(Topology<ExplicitTopology>);
static_assert(BulkTopology<ExplicitTopology>);

}  // namespace antdense::graph
