// A time-varying overlay on a static graph::AnyTopology: a set of
// currently-failed nodes and currently-down edges, mutated between
// walk rounds by the dynamics layer (sim/dynamic_world.hpp) and
// consulted when walkers move.
//
// The base topology is never modified — failure state is a sparse
// difference on top of it, so implicit billion-node generators stay
// O(state) in memory.  Node identity is the topology's stable `key`
// space (handles may be packed encodings), while sampling and neighbor
// enumeration work on handles.
//
// Determinism: the overlay's containers are a vector (iteration order =
// insertion order, removals by swap-and-pop) plus a hash index for O(1)
// membership.  Iteration order therefore depends only on the sequence
// of mutations, never on hash-table internals, so recovery sweeps that
// draw one Bernoulli per element consume the mutation stream in a
// platform-stable order.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/any_topology.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {

class TimeVaryingWorld {
 public:
  using node_type = AnyTopology::node_type;
  /// Canonical undirected edge identity: (min key, max key).
  using EdgeKey = std::pair<std::uint64_t, std::uint64_t>;

  explicit TimeVaryingWorld(const AnyTopology& topo);

  const AnyTopology& base() const { return *topo_; }
  std::size_t num_failed_nodes() const { return failed_.size(); }
  std::size_t num_down_edges() const { return down_.size(); }

  bool node_failed(std::uint64_t key) const {
    return failed_index_.find(key) != failed_index_.end();
  }
  bool edge_down(std::uint64_t key_a, std::uint64_t key_b) const {
    return !down_.empty() &&
           down_index_.find(canonical_edge(key_a, key_b)) !=
               down_index_.end();
  }
  /// Whether a walker standing on the node keyed `from_key` may move to
  /// the node keyed `to_key`: the destination is up and the edge is not
  /// down.  (Staying put is always allowed.)
  bool move_allowed(std::uint64_t from_key, std::uint64_t to_key) const {
    if (from_key == to_key) {
      return true;
    }
    return !node_failed(to_key) && !edge_down(from_key, to_key);
  }

  /// Marks the node behind handle `u` failed; returns false when it
  /// already was.
  bool fail_node(node_type u);
  /// Takes the undirected edge {u, v} down; returns false when it
  /// already was.
  bool drop_edge(node_type u, node_type v);

  /// One recovery sweep: every failed node and down edge independently
  /// recovers with probability `recover_probability` (one Bernoulli per
  /// element from `gen`, in insertion order).
  void recover(double recover_probability, rng::Xoshiro256pp& gen);

  /// The deterministic deflection target for a walker at handle `from`:
  /// the admissible neighbor (destination up, edge up) with the
  /// smallest key, or `from` itself when every neighbor is blocked.
  /// `scratch` avoids per-call allocation; const and race-free, so the
  /// sharded engine may call it concurrently.
  node_type deflect(node_type from, std::vector<node_type>& scratch) const;

 private:
  static EdgeKey canonical_edge(std::uint64_t a, std::uint64_t b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& e) const {
      // SplitMix64-style avalanche over both endpoint keys.
      std::uint64_t h = e.first * 0x9E3779B97F4A7C15ULL;
      h ^= h >> 30;
      h = (h + e.second) * 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  const AnyTopology* topo_;
  std::vector<std::uint64_t> failed_;  // node keys, insertion order
  std::unordered_map<std::uint64_t, std::size_t> failed_index_;
  std::vector<EdgeKey> down_;  // down edges, insertion order
  std::unordered_map<EdgeKey, std::size_t, EdgeKeyHash> down_index_;
};

}  // namespace antdense::graph
