// Graph generators.
//
// Lattice generators produce explicit copies of the implicit topologies
// (used to cross-validate the engine against the spectral module), and
// the random families reproduce the regimes Section 5.1 distinguishes:
//   - random_regular:      expanders — fast global mixing (Section 4.4)
//   - barabasi_albert:     power-law degrees, the social-network stand-in
//   - watts_strogatz:      small-world, slow-ish mixing with shortcuts
//   - erdos_renyi:         the classical baseline
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace antdense::graph {

/// Cycle on n >= 3 vertices.
Graph make_ring_graph(std::uint32_t n);

/// Path on n >= 2 vertices (not regular; netsize-only substrate).
Graph make_path_graph(std::uint32_t n);

/// Star with one hub and n-1 leaves (extreme degree skew for
/// degree-estimation tests).
Graph make_star_graph(std::uint32_t n);

/// Complete graph K_n.
Graph make_complete_graph(std::uint32_t n);

/// 2-D torus (wraps in both dimensions); 4-regular for sides >= 3.
Graph make_torus2d_graph(std::uint32_t width, std::uint32_t height);

/// k-dimensional hypercube, 2^k vertices.
Graph make_hypercube_graph(std::uint32_t k);

/// k-dimensional torus with the given side length; 2k-regular for
/// side >= 3.
Graph make_torus_kd_graph(std::uint32_t dimensions, std::uint32_t side);

/// Erdős–Rényi G(n, m): m distinct uniform edges, no self-loops.
Graph make_erdos_renyi_graph(std::uint32_t n, std::uint64_t m,
                             std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small clique
/// and attaches each new vertex with `attach` edges chosen proportional
/// to current degree.  Produces the power-law degree profile typical of
/// social networks.
Graph make_barabasi_albert_graph(std::uint32_t n, std::uint32_t attach,
                                 std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta.
Graph make_watts_strogatz_graph(std::uint32_t n, std::uint32_t k, double beta,
                                std::uint64_t seed);

/// Random k-regular simple graph via the configuration model with
/// restarts (retries until no self-loops or parallel edges remain).
/// n*k must be even.  For k >= 3 this is an expander with high
/// probability — the Section 4.4 substrate.
Graph make_random_regular_graph(std::uint32_t n, std::uint32_t k,
                                std::uint64_t seed);

}  // namespace antdense::graph
