// Materializes any Topology with neighbor enumeration into an explicit
// CSR Graph — the reference object of the implicit-generator
// differential suite (tests/test_implicit_differential.cpp): an implicit
// family is sampled on the fly, its materialization is walked through
// ExplicitTopology, and the two must agree on edge set, degree sequence,
// and sampling distribution.
//
// Faithful to multigraph semantics: an edge of multiplicity k appears k
// times, and a self-loop appears twice in its node's own neighbor
// multiset (the Graph::from_edges convention, which graph/ba.hpp also
// follows).  Symmetry is verified, not assumed — an implicit generator
// whose u->v and v->u views disagree is exactly the bug this layer
// exists to catch, so materialize() throws rather than papering over it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace antdense::graph {

template <typename T>
Graph materialize(const T& topo) {
  const std::uint64_t n = topo.num_nodes();
  ANTDENSE_CHECK(n <= std::numeric_limits<std::uint32_t>::max(),
                 "materialize: graph too large for explicit vertex ids");
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint64_t u = 0; u < n; ++u) {
    topo.for_each_neighbor(
        static_cast<typename T::node_type>(u), [&](auto v) {
          const auto vid = static_cast<std::uint64_t>(v);
          ANTDENSE_CHECK(vid < n, "materialize: neighbor id out of range");
          adjacency[u].push_back(static_cast<std::uint32_t>(vid));
        });
    std::sort(adjacency[u].begin(), adjacency[u].end());
  }

  const auto multiplicity = [&](std::uint64_t u, std::uint32_t v) {
    const auto [lo, hi] =
        std::equal_range(adjacency[u].begin(), adjacency[u].end(), v);
    return static_cast<std::uint64_t>(hi - lo);
  };

  std::vector<std::pair<Graph::vertex, Graph::vertex>> edges;
  for (std::uint64_t u = 0; u < n; ++u) {
    std::size_t i = 0;
    while (i < adjacency[u].size()) {
      const std::uint32_t v = adjacency[u][i];
      const std::uint64_t count = multiplicity(u, v);
      i += count;
      if (v < u) {
        continue;  // counted from the other endpoint
      }
      if (v == u) {
        // A self-loop occupies two slots of its own multiset.
        ANTDENSE_CHECK(count % 2 == 0,
                       "materialize: node " + std::to_string(u) +
                           " lists itself an odd number of times");
        for (std::uint64_t k = 0; k < count / 2; ++k) {
          edges.emplace_back(static_cast<Graph::vertex>(u),
                             static_cast<Graph::vertex>(u));
        }
        continue;
      }
      ANTDENSE_CHECK(
          multiplicity(v, u) == count,
          "materialize: asymmetric adjacency between nodes " +
              std::to_string(u) + " and " + std::to_string(v));
      for (std::uint64_t k = 0; k < count; ++k) {
        edges.emplace_back(static_cast<Graph::vertex>(u),
                           static_cast<Graph::vertex>(v));
      }
    }
  }
  // The v < u skip above assumed symmetry; a neighbor listed only on the
  // lower side would vanish silently, so re-check from that side too.
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < adjacency[u].size();) {
      const std::uint32_t v = adjacency[u][i];
      i += multiplicity(u, v);
      ANTDENSE_CHECK(v >= u || multiplicity(v, u) == multiplicity(u, v),
                     "materialize: asymmetric adjacency between nodes " +
                         std::to_string(v) + " and " + std::to_string(u));
    }
  }
  return Graph::from_edges(static_cast<std::uint32_t>(n), edges);
}

}  // namespace antdense::graph
