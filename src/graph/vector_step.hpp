// Vectorized stepping for the vector walk engine (sim/vector_walk.hpp):
// advances a whole position array one round, drawing from a
// rng::WideStream.
//
// The semantics are fully specified by the sequential contract:
//
//   vector_step(topo, pos, stream)  ==  for each i in order:
//       pos[i] = topo.random_neighbor(pos[i], stream)
//
// bit-for-bit, for every topology.  Everything else in this header is
// acceleration that preserves that contract:
//   - ring / torus2d consume exactly one raw word per agent, so their
//     steps run as branchless word kernels (AVX2 when compiled in, and
//     an equivalent scalar loop the autovectorizer handles) over bulk
//     stream fills;
//   - uniform-pick families (toruskd, hypercube, complete) batch the
//     Lemire rejection via rng::uniform_below_batch (same draws, same
//     order) and then apply the pure pick_step map;
//   - variable-pick families (explicit CSR graphs) batch per-node-bound
//     Lemire the same way;
//   - everything else (implicit rgg2d/gnp/ba, whose neighbor queries
//     dominate anyway) falls back to the topology's own bulk sampler
//     with the stream as an ordinary BitGenerator64.
//
// Because the contract is sequential-equivalent, which lane/kernel/batch
// path executed is unobservable in the results — pinned differentially
// in tests/test_vector_walk.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "graph/ring.hpp"
#include "graph/topology.hpp"
#include "graph/torus2d.hpp"
#include "rng/random.hpp"
#include "rng/xoshiro_wide.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace antdense::graph {

namespace veckernel {

/// Ring step over a word block: pos[j] advances by the step
/// random_neighbor(pos[j], ...) would take given raw word words[j]
/// (top bit = forward).  The AVX2 path needs signed 64-bit compares, so
/// it only runs while positions and size stay below 2^62 — far beyond
/// any ring the engine instantiates, but guarded anyway.
inline void step_words(const Ring& topo, std::span<std::uint64_t> pos,
                       const std::uint64_t* words) {
  const std::uint64_t size = topo.num_nodes();
  std::size_t j = 0;
#if defined(__AVX2__)
  if (size < (std::uint64_t{1} << 62)) {
    const __m256i vzero = _mm256_setzero_si256();
    const __m256i vone = _mm256_set1_epi64x(1);
    const __m256i vsize = _mm256_set1_epi64x(static_cast<long long>(size));
    const __m256i vsize1 =
        _mm256_set1_epi64x(static_cast<long long>(size - 1));
    for (; j + 4 <= pos.size(); j += 4) {
      const __m256i u = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pos.data() + j));
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + j));
      // Top bit set (word "negative") means forward: delta 1, else size-1.
      const __m256i fwd = _mm256_cmpgt_epi64(vzero, w);
      const __m256i delta = _mm256_blendv_epi8(vsize1, vone, fwd);
      __m256i v = _mm256_add_epi64(u, delta);
      const __m256i wrap = _mm256_cmpgt_epi64(v, vsize1);
      v = _mm256_sub_epi64(v, _mm256_and_si256(vsize, wrap));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos.data() + j), v);
    }
  }
#endif
  for (; j < pos.size(); ++j) {
    const std::uint64_t delta = (words[j] >> 63) != 0 ? 1 : size - 1;
    const std::uint64_t v = pos[j] + delta;
    pos[j] = v >= size ? v - size : v;
  }
}

/// Torus2D step over a word block: two uniform bits (word >> 62) pick
/// the direction, coordinates wrap with a conditional subtract — the
/// same branchless form as Torus2D::step_branchless, on unpacked
/// (y << 32) | x lanes.
inline void step_words(const Torus2D& topo, std::span<std::uint64_t> pos,
                       const std::uint64_t* words) {
  const std::uint64_t width = topo.width();
  const std::uint64_t height = topo.height();
  std::size_t j = 0;
#if defined(__AVX2__)
  {
    const __m256i vxmask = _mm256_set1_epi64x(0xFFFFFFFFLL);
    const __m256i vone = _mm256_set1_epi64x(1);
    const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(width));
    const __m256i vw1 = _mm256_set1_epi64x(static_cast<long long>(width - 1));
    const __m256i vh = _mm256_set1_epi64x(static_cast<long long>(height));
    const __m256i vh1 =
        _mm256_set1_epi64x(static_cast<long long>(height - 1));
    const __m256i d0 = _mm256_setzero_si256();
    const __m256i d1 = vone;
    const __m256i d2 = _mm256_set1_epi64x(2);
    const __m256i d3 = _mm256_set1_epi64x(3);
    for (; j + 4 <= pos.size(); j += 4) {
      const __m256i u = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(pos.data() + j));
      const __m256i w = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + j));
      const __m256i dir = _mm256_srli_epi64(w, 62);
      __m256i x = _mm256_and_si256(u, vxmask);
      __m256i y = _mm256_srli_epi64(u, 32);
      // dx = dir==0 ? 1 : dir==1 ? width-1 : 0 (and dy symmetrically):
      // masked selects, exactly step_branchless's adds mod size.
      const __m256i dx = _mm256_or_si256(
          _mm256_and_si256(_mm256_cmpeq_epi64(dir, d0), vone),
          _mm256_and_si256(_mm256_cmpeq_epi64(dir, d1), vw1));
      const __m256i dy = _mm256_or_si256(
          _mm256_and_si256(_mm256_cmpeq_epi64(dir, d2), vone),
          _mm256_and_si256(_mm256_cmpeq_epi64(dir, d3), vh1));
      x = _mm256_add_epi64(x, dx);
      x = _mm256_sub_epi64(
          x, _mm256_and_si256(vw, _mm256_cmpgt_epi64(x, vw1)));
      y = _mm256_add_epi64(y, dy);
      y = _mm256_sub_epi64(
          y, _mm256_and_si256(vh, _mm256_cmpgt_epi64(y, vh1)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos.data() + j),
                          _mm256_or_si256(_mm256_slli_epi64(y, 32), x));
    }
  }
#endif
  for (; j < pos.size(); ++j) {
    const auto dir = static_cast<std::uint32_t>(words[j] >> 62);
    std::uint64_t x = pos[j] & 0xFFFFFFFFULL;
    std::uint64_t y = pos[j] >> 32;
    const std::uint64_t dx = dir == 0 ? 1 : (dir == 1 ? width - 1 : 0);
    const std::uint64_t dy = dir == 2 ? 1 : (dir == 3 ? height - 1 : 0);
    x += dx;
    x = x >= width ? x - width : x;
    y += dy;
    y = y >= height ? y - height : y;
    pos[j] = (y << 32) | x;
  }
}

}  // namespace veckernel

/// A topology with a one-raw-word-per-step kernel in veckernel.
template <typename T>
concept WordSteppable =
    Topology<T> && std::same_as<typename T::node_type, std::uint64_t> &&
    requires(const T& t, std::span<std::uint64_t> pos,
             const std::uint64_t* words) {
      veckernel::step_words(t, pos, words);
    };

/// Advances every position in `pos` one walk step in place, drawing from
/// the wide stream.  Sequential-equivalent (see header comment): the
/// result and the stream state match per-agent random_neighbor calls.
template <Topology T>
inline void vector_step(const T& topo,
                        std::span<typename T::node_type> pos,
                        rng::WideStream& stream) {
  using node = typename T::node_type;
  if constexpr (requires { topo.step_nodes(pos, stream); }) {
    // Type-erased handles (graph::AnyTopology) carry their own virtual
    // wide-stepping entry point: one dispatch per round.
    topo.step_nodes(pos, stream);
  } else if constexpr (WordSteppable<T>) {
    constexpr std::size_t kBlock = 256;
    std::uint64_t words[kBlock];
    for (std::size_t done = 0; done < pos.size();) {
      const std::size_t m = std::min(kBlock, pos.size() - done);
      stream.fill({words, m});
      veckernel::step_words(topo, pos.subspan(done, m), words);
      done += m;
    }
  } else if constexpr (UniformPickTopology<T>) {
    constexpr std::size_t kBlock = 256;
    std::uint64_t picks[kBlock];
    const std::uint64_t bound = topo.pick_bound();
    for (std::size_t done = 0; done < pos.size();) {
      const std::size_t m = std::min(kBlock, pos.size() - done);
      rng::uniform_below_batch(stream, bound, {picks, m});
      for (std::size_t j = 0; j < m; ++j) {
        pos[done + j] = topo.pick_step(pos[done + j], picks[j]);
      }
      done += m;
    }
  } else if constexpr (VariablePickTopology<T>) {
    constexpr std::size_t kBlock = 256;
    std::uint64_t bounds[kBlock];
    std::uint64_t picks[kBlock];
    for (std::size_t done = 0; done < pos.size();) {
      const std::size_t m = std::min(kBlock, pos.size() - done);
      for (std::size_t j = 0; j < m; ++j) {
        bounds[j] = topo.pick_bound(pos[done + j]);
      }
      rng::uniform_below_batch(
          stream, std::span<const std::uint64_t>(bounds, m), {picks, m});
      for (std::size_t j = 0; j < m; ++j) {
        pos[done + j] = topo.pick_step(pos[done + j], picks[j]);
      }
      done += m;
    }
  } else {
    // Implicit families: the per-query adjacency scan dominates, so the
    // bulk sampler with the stream as a plain BitGenerator64 is already
    // the honest cost.
    graph::random_neighbors(topo, std::span<const node>(pos), pos, stream);
  }
}

}  // namespace antdense::graph
