// Classical graph algorithms used for validation (connectivity and
// bipartiteness checks before running estimators) and for test oracles.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace antdense::graph {

/// BFS distances from `source`; unreachable vertices get UINT32_MAX.
std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                         Graph::vertex source);

bool is_connected(const Graph& g);

/// Number of connected components.
std::uint32_t connected_component_count(const Graph& g);

/// True when the graph is bipartite (2-colorable).  The paper notes the
/// torus is bipartite, which zeroes odd-step re-collision probabilities;
/// tests use this to pick the right parity when comparing curves.
bool is_bipartite(const Graph& g);

/// Exact diameter by BFS from every vertex.  O(V * E) — small graphs only.
std::uint32_t diameter(const Graph& g);

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  double variance = 0.0;
};

DegreeStats degree_stats(const Graph& g);

}  // namespace antdense::graph
