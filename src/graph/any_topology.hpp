// Runtime topology selection: a value-semantic, type-erased handle over
// any Topology, so scenario specs can pick the substrate at runtime
// ("run the Section 6.1 noise sweep on a hypercube instead of the
// torus") without instantiating a new template binary per graph family.
//
// The paper states Algorithm 1 over *any* regular substrate (Musco, Su
// & Lynch, PODC 2016, arXiv:1603.02981, Section 4), so the erasure
// boundary sits exactly at the Topology concept.  The hot path stays
// fast because the walk engine drives topologies through the *batched*
// calls — random_neighbors for stepping and keys for occupancy — so a
// type-erased round costs two virtual calls total, not one per agent
// step (see docs/ARCHITECTURE.md, "The scenario layer").
//
// AnyTopology satisfies Topology and BulkTopology, so every templated
// driver (run_density_walk, run_property_walk, run_trajectory,
// trial_runner) accepts it unchanged, and walks through the handle are
// bit-identical to walks through the wrapped concrete topology at a
// fixed seed (tests/test_any_topology.cpp pins this differentially).
//
// Node handles are widened to uint64 (every concrete node_type fits).
// Copies share the immutable wrapped topology; all calls are const and
// thread-safe, so one handle can serve parallel trial runners.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/topology.hpp"
#include "graph/vector_step.hpp"
#include "rng/xoshiro256pp.hpp"
#include "rng/xoshiro_wide.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class AnyTopology {
 public:
  using node_type = std::uint64_t;

  /// Wraps a concrete topology by value.
  template <Topology T>
    requires(!std::same_as<std::remove_cvref_t<T>, AnyTopology>)
  explicit AnyTopology(T topo)
      : impl_(std::make_shared<const Model<T>>(std::move(topo), nullptr)) {}

  /// Wraps a topology that *borrows* external storage (e.g. an
  /// ExplicitTopology over a Graph): `payload` is kept alive for the
  /// lifetime of every copy of the handle.
  template <Topology T>
  static AnyTopology with_payload(T topo,
                                  std::shared_ptr<const void> payload) {
    AnyTopology any;
    any.impl_ =
        std::make_shared<const Model<T>>(std::move(topo), std::move(payload));
    return any;
  }

  std::uint64_t num_nodes() const { return impl_->num_nodes(); }
  std::uint64_t degree() const { return impl_->degree(); }

  node_type random_node(rng::Xoshiro256pp& gen) const {
    return impl_->random_node(gen);
  }
  node_type random_neighbor(node_type u, rng::Xoshiro256pp& gen) const {
    return impl_->random_neighbor(u, gen);
  }

  /// Wide-stream overloads for the vector engine (sim/vector_walk.hpp).
  /// The virtual interface is typed on the concrete scalar generator, so
  /// the wide word source needs its own entry points; they obey the same
  /// sequential-equivalence contract as graph::vector_step.
  node_type random_node(rng::WideStream& stream) const {
    return impl_->random_node_wide(stream);
  }
  node_type random_neighbor(node_type u, rng::WideStream& stream) const {
    return impl_->random_neighbor_wide(u, stream);
  }

  /// Advances every position one step in place, drawing from the wide
  /// stream — one virtual call per round, forwarding to the wrapped
  /// topology's graph::vector_step path (word kernels / batched Lemire).
  void step_nodes(std::span<node_type> pos, rng::WideStream& stream) const {
    impl_->step_nodes_wide(pos, stream);
  }

  /// Batched stepping — one virtual call for the whole round, forwarding
  /// to the wrapped topology's own batched member (same generator stream
  /// as sequential random_neighbor calls, per the BulkTopology contract).
  /// `out[i]` replaces `in[i]`; the spans may alias elementwise.
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out,
                        rng::Xoshiro256pp& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    impl_->random_neighbors(in, out, gen);
  }

  std::uint64_t key(node_type u) const { return impl_->key(u); }

  /// Batched key computation — the occupancy-counting counterpart of
  /// random_neighbors, again one virtual call per round.
  void keys(std::span<const node_type> nodes,
            std::span<std::uint64_t> out) const {
    ANTDENSE_CHECK(nodes.size() == out.size(),
                   "key batching needs equal-sized spans");
    impl_->keys(nodes, out);
  }

  /// Appends u's neighbors to `out` (ball enumeration for the generic
  /// local-density workload).  Throws if the wrapped topology cannot
  /// enumerate neighbors.
  void append_neighbors(node_type u, std::vector<node_type>& out) const {
    impl_->append_neighbors(u, out);
  }

  std::string name() const { return impl_->name(); }

  /// The wrapped topology when it is exactly a T, else nullptr — for
  /// consumers needing substrate-specific extras (coordinates, distance).
  template <Topology T>
  const T* target() const {
    const auto* model = dynamic_cast<const Model<T>*>(impl_.get());
    return model == nullptr ? nullptr : &model->topo;
  }

 private:
  AnyTopology() = default;

  struct Concept {
    virtual ~Concept() = default;
    virtual std::uint64_t num_nodes() const = 0;
    virtual std::uint64_t degree() const = 0;
    virtual node_type random_node(rng::Xoshiro256pp& gen) const = 0;
    virtual node_type random_neighbor(node_type u,
                                      rng::Xoshiro256pp& gen) const = 0;
    virtual void random_neighbors(std::span<const node_type> in,
                                  std::span<node_type> out,
                                  rng::Xoshiro256pp& gen) const = 0;
    virtual node_type random_node_wide(rng::WideStream& stream) const = 0;
    virtual node_type random_neighbor_wide(node_type u,
                                           rng::WideStream& stream) const = 0;
    virtual void step_nodes_wide(std::span<node_type> pos,
                                 rng::WideStream& stream) const = 0;
    virtual std::uint64_t key(node_type u) const = 0;
    virtual void keys(std::span<const node_type> nodes,
                      std::span<std::uint64_t> out) const = 0;
    virtual void append_neighbors(node_type u,
                                  std::vector<node_type>& out) const = 0;
    virtual std::string name() const = 0;
  };

  template <Topology T>
  struct Model final : Concept {
    using wrapped_node = typename T::node_type;

    Model(T t, std::shared_ptr<const void> keep)
        : topo(std::move(t)), payload(std::move(keep)) {}

    std::uint64_t num_nodes() const override { return topo.num_nodes(); }
    std::uint64_t degree() const override { return topo.degree(); }

    node_type random_node(rng::Xoshiro256pp& gen) const override {
      return static_cast<node_type>(topo.random_node(gen));
    }
    node_type random_neighbor(node_type u,
                              rng::Xoshiro256pp& gen) const override {
      return static_cast<node_type>(
          topo.random_neighbor(static_cast<wrapped_node>(u), gen));
    }

    void random_neighbors(std::span<const node_type> in,
                          std::span<node_type> out,
                          rng::Xoshiro256pp& gen) const override {
      if constexpr (std::same_as<wrapped_node, node_type>) {
        graph::random_neighbors(topo, in, out, gen);
      } else {
        // Narrower node handles cannot view the uint64 spans directly;
        // step elementwise, which the BulkTopology contract guarantees
        // consumes the generator exactly as the batched member would.
        for (std::size_t i = 0; i < in.size(); ++i) {
          out[i] = static_cast<node_type>(topo.random_neighbor(
              static_cast<wrapped_node>(in[i]), gen));
        }
      }
    }

    node_type random_node_wide(rng::WideStream& stream) const override {
      return static_cast<node_type>(topo.random_node(stream));
    }
    node_type random_neighbor_wide(node_type u,
                                   rng::WideStream& stream) const override {
      return static_cast<node_type>(
          topo.random_neighbor(static_cast<wrapped_node>(u), stream));
    }

    void step_nodes_wide(std::span<node_type> pos,
                         rng::WideStream& stream) const override {
      if constexpr (std::same_as<wrapped_node, node_type>) {
        graph::vector_step(topo, pos, stream);
      } else {
        // Narrower node handles cannot view the uint64 span; step
        // elementwise — sequential-equivalent by the vector_step
        // contract, so the stream state matches either way.
        for (node_type& p : pos) {
          p = static_cast<node_type>(
              topo.random_neighbor(static_cast<wrapped_node>(p), stream));
        }
      }
    }

    std::uint64_t key(node_type u) const override {
      return topo.key(static_cast<wrapped_node>(u));
    }
    void keys(std::span<const node_type> nodes,
              std::span<std::uint64_t> out) const override {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        out[i] = topo.key(static_cast<wrapped_node>(nodes[i]));
      }
    }

    void append_neighbors(node_type u,
                          std::vector<node_type>& out) const override {
      if constexpr (requires(const T& t, wrapped_node n) {
                      t.for_each_neighbor(n, [](wrapped_node) {});
                    }) {
        topo.for_each_neighbor(static_cast<wrapped_node>(u),
                               [&out](wrapped_node v) {
                                 out.push_back(static_cast<node_type>(v));
                               });
      } else {
        ANTDENSE_CHECK(false, "topology '" + topo.name() +
                                  "' cannot enumerate neighbors");
      }
    }

    std::string name() const override { return topo.name(); }

    T topo;
    std::shared_ptr<const void> payload;
  };

  std::shared_ptr<const Concept> impl_;
};

static_assert(Topology<AnyTopology>);
static_assert(BulkTopology<AnyTopology>);

}  // namespace antdense::graph
