// Runtime topology selection: a value-semantic, type-erased handle over
// any Topology, so scenario specs can pick the substrate at runtime
// ("run the Section 6.1 noise sweep on a hypercube instead of the
// torus") without instantiating a new template binary per graph family.
//
// The paper states Algorithm 1 over *any* regular substrate (Musco, Su
// & Lynch, PODC 2016, arXiv:1603.02981, Section 4), so the erasure
// boundary sits exactly at the Topology concept.  The hot path stays
// fast because the walk engine drives topologies through the *batched*
// calls — random_neighbors for stepping and keys for occupancy — so a
// type-erased round costs two virtual calls total, not one per agent
// step (see docs/ARCHITECTURE.md, "The scenario layer").
//
// AnyTopology satisfies Topology and BulkTopology, so every templated
// driver (run_density_walk, run_property_walk, run_trajectory,
// trial_runner) accepts it unchanged, and walks through the handle are
// bit-identical to walks through the wrapped concrete topology at a
// fixed seed (tests/test_any_topology.cpp pins this differentially).
//
// Node handles are widened to uint64 (every concrete node_type fits).
// Copies share the immutable wrapped topology; all calls are const and
// thread-safe, so one handle can serve parallel trial runners.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/topology.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::graph {

class AnyTopology {
 public:
  using node_type = std::uint64_t;

  /// Wraps a concrete topology by value.
  template <Topology T>
    requires(!std::same_as<std::remove_cvref_t<T>, AnyTopology>)
  explicit AnyTopology(T topo)
      : impl_(std::make_shared<const Model<T>>(std::move(topo), nullptr)) {}

  /// Wraps a topology that *borrows* external storage (e.g. an
  /// ExplicitTopology over a Graph): `payload` is kept alive for the
  /// lifetime of every copy of the handle.
  template <Topology T>
  static AnyTopology with_payload(T topo,
                                  std::shared_ptr<const void> payload) {
    AnyTopology any;
    any.impl_ =
        std::make_shared<const Model<T>>(std::move(topo), std::move(payload));
    return any;
  }

  std::uint64_t num_nodes() const { return impl_->num_nodes(); }
  std::uint64_t degree() const { return impl_->degree(); }

  node_type random_node(rng::Xoshiro256pp& gen) const {
    return impl_->random_node(gen);
  }
  node_type random_neighbor(node_type u, rng::Xoshiro256pp& gen) const {
    return impl_->random_neighbor(u, gen);
  }

  /// Batched stepping — one virtual call for the whole round, forwarding
  /// to the wrapped topology's own batched member (same generator stream
  /// as sequential random_neighbor calls, per the BulkTopology contract).
  /// `out[i]` replaces `in[i]`; the spans may alias elementwise.
  void random_neighbors(std::span<const node_type> in,
                        std::span<node_type> out,
                        rng::Xoshiro256pp& gen) const {
    ANTDENSE_CHECK(in.size() == out.size(),
                   "bulk neighbor sampling needs equal-sized spans");
    impl_->random_neighbors(in, out, gen);
  }

  std::uint64_t key(node_type u) const { return impl_->key(u); }

  /// Batched key computation — the occupancy-counting counterpart of
  /// random_neighbors, again one virtual call per round.
  void keys(std::span<const node_type> nodes,
            std::span<std::uint64_t> out) const {
    ANTDENSE_CHECK(nodes.size() == out.size(),
                   "key batching needs equal-sized spans");
    impl_->keys(nodes, out);
  }

  /// Appends u's neighbors to `out` (ball enumeration for the generic
  /// local-density workload).  Throws if the wrapped topology cannot
  /// enumerate neighbors.
  void append_neighbors(node_type u, std::vector<node_type>& out) const {
    impl_->append_neighbors(u, out);
  }

  std::string name() const { return impl_->name(); }

  /// The wrapped topology when it is exactly a T, else nullptr — for
  /// consumers needing substrate-specific extras (coordinates, distance).
  template <Topology T>
  const T* target() const {
    const auto* model = dynamic_cast<const Model<T>*>(impl_.get());
    return model == nullptr ? nullptr : &model->topo;
  }

 private:
  AnyTopology() = default;

  struct Concept {
    virtual ~Concept() = default;
    virtual std::uint64_t num_nodes() const = 0;
    virtual std::uint64_t degree() const = 0;
    virtual node_type random_node(rng::Xoshiro256pp& gen) const = 0;
    virtual node_type random_neighbor(node_type u,
                                      rng::Xoshiro256pp& gen) const = 0;
    virtual void random_neighbors(std::span<const node_type> in,
                                  std::span<node_type> out,
                                  rng::Xoshiro256pp& gen) const = 0;
    virtual std::uint64_t key(node_type u) const = 0;
    virtual void keys(std::span<const node_type> nodes,
                      std::span<std::uint64_t> out) const = 0;
    virtual void append_neighbors(node_type u,
                                  std::vector<node_type>& out) const = 0;
    virtual std::string name() const = 0;
  };

  template <Topology T>
  struct Model final : Concept {
    using wrapped_node = typename T::node_type;

    Model(T t, std::shared_ptr<const void> keep)
        : topo(std::move(t)), payload(std::move(keep)) {}

    std::uint64_t num_nodes() const override { return topo.num_nodes(); }
    std::uint64_t degree() const override { return topo.degree(); }

    node_type random_node(rng::Xoshiro256pp& gen) const override {
      return static_cast<node_type>(topo.random_node(gen));
    }
    node_type random_neighbor(node_type u,
                              rng::Xoshiro256pp& gen) const override {
      return static_cast<node_type>(
          topo.random_neighbor(static_cast<wrapped_node>(u), gen));
    }

    void random_neighbors(std::span<const node_type> in,
                          std::span<node_type> out,
                          rng::Xoshiro256pp& gen) const override {
      if constexpr (std::same_as<wrapped_node, node_type>) {
        graph::random_neighbors(topo, in, out, gen);
      } else {
        // Narrower node handles cannot view the uint64 spans directly;
        // step elementwise, which the BulkTopology contract guarantees
        // consumes the generator exactly as the batched member would.
        for (std::size_t i = 0; i < in.size(); ++i) {
          out[i] = static_cast<node_type>(topo.random_neighbor(
              static_cast<wrapped_node>(in[i]), gen));
        }
      }
    }

    std::uint64_t key(node_type u) const override {
      return topo.key(static_cast<wrapped_node>(u));
    }
    void keys(std::span<const node_type> nodes,
              std::span<std::uint64_t> out) const override {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        out[i] = topo.key(static_cast<wrapped_node>(nodes[i]));
      }
    }

    void append_neighbors(node_type u,
                          std::vector<node_type>& out) const override {
      if constexpr (requires(const T& t, wrapped_node n) {
                      t.for_each_neighbor(n, [](wrapped_node) {});
                    }) {
        topo.for_each_neighbor(static_cast<wrapped_node>(u),
                               [&out](wrapped_node v) {
                                 out.push_back(static_cast<node_type>(v));
                               });
      } else {
        ANTDENSE_CHECK(false, "topology '" + topo.name() +
                                  "' cannot enumerate neighbors");
      }
    }

    std::string name() const override { return topo.name(); }

    T topo;
    std::shared_ptr<const void> payload;
  };

  std::shared_ptr<const Concept> impl_;
};

static_assert(Topology<AnyTopology>);
static_assert(BulkTopology<AnyTopology>);

}  // namespace antdense::graph
