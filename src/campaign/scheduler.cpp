#include "campaign/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <set>
#include <utility>
#include <vector>

#include "campaign/journal.hpp"
#include "scenario/experiment.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace antdense::campaign {

RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options,
                       const scenario::Registry& registry) {
  util::WallTimer timer;
  RunReport report;

  std::vector<PlannedExperiment> planned = campaign.expand(registry);
  report.planned = planned.size();

  const std::vector<util::JsonValue> existing = Journal::load(journal_path);
  for (const util::JsonValue& record : existing) {
    const util::JsonValue* name = record.find("campaign");
    ANTDENSE_CHECK(name != nullptr && name->is_string() &&
                       name->as_string() == campaign.name,
                   "journal " + journal_path + " belongs to campaign '" +
                       (name != nullptr && name->is_string()
                            ? name->as_string()
                            : std::string("?")) +
                       "', not '" + campaign.name + "'");
  }
  const std::set<std::string> done = Journal::completed_ids(existing);

  std::vector<PlannedExperiment> pending;
  pending.reserve(planned.size());
  for (PlannedExperiment& p : planned) {
    if (done.count(p.id) > 0) {
      ++report.cached;
    } else {
      pending.push_back(std::move(p));
    }
  }
  if (options.max_experiments > 0 &&
      pending.size() > options.max_experiments) {
    report.remaining = pending.size() - options.max_experiments;
    pending.resize(options.max_experiments);
  }

  // Telemetry sinks are resolved once, up front; the workers then only
  // touch striped counters and gauges.  All of this is RNG-neutral —
  // experiments compute the same bytes with or without it.
  obs::Telemetry telemetry = options.telemetry;
  obs::Counter* experiments_total = nullptr;
  obs::Counter* journal_bytes = nullptr;
  obs::Gauge* scheduled_gauge = nullptr;
  obs::Gauge* completed_gauge = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Histogram* experiment_seconds = nullptr;
  if (telemetry.metrics != nullptr) {
    obs::MetricsRegistry& reg = *telemetry.metrics;
    experiments_total =
        &reg.counter("antdense_campaign_experiments_total", {},
                     "Experiments executed and journaled");
    journal_bytes = &reg.counter("antdense_campaign_journal_bytes_total", {},
                                 "Bytes appended to the campaign journal");
    scheduled_gauge = &reg.gauge("antdense_campaign_scheduled", {},
                                 "Experiments scheduled this invocation");
    completed_gauge = &reg.gauge("antdense_campaign_completed", {},
                                 "Experiments completed this invocation");
    queue_depth = &reg.gauge("antdense_campaign_queue_depth", {},
                             "Scheduled experiments not yet completed");
    experiment_seconds =
        &reg.histogram("antdense_campaign_experiment_seconds", {}, {},
                       "Wall time per experiment (seconds)");
    scheduled_gauge->set(static_cast<std::int64_t>(pending.size()));
    queue_depth->set(static_cast<std::int64_t>(pending.size()));
  }

  if (pending.empty()) {
    report.elapsed_seconds = timer.elapsed_seconds();
    return report;
  }

  Journal journal(journal_path);

  // The scheduler owns the thread budget: workers x inner_threads is
  // kept within the hardware so campaigns cannot silently oversubscribe
  // (experiment results never depend on either knob, so clamping is
  // always safe).  Diagnostics go to on_diagnostic rather than a
  // hard error: a campaign authored on a 32-core box should still run,
  // clamped and loudly, on a 4-core one.
  const unsigned hardware = util::default_thread_count();
  unsigned inner = std::max(1u, options.inner_threads);
  if (inner > hardware) {
    if (options.on_diagnostic) {
      options.on_diagnostic(
          "campaign '" + campaign.name + "': inner_threads=" +
          std::to_string(inner) + " exceeds hardware_concurrency=" +
          std::to_string(hardware) + "; clamping to " +
          std::to_string(hardware));
    }
    inner = hardware;
  }
  unsigned threads =
      options.threads != 0 ? options.threads : campaign.threads;
  if (threads == 0) {
    threads = hardware / inner;  // one worker per free core
  }
  threads = std::max(1u, threads);
  if (threads * inner > hardware) {
    if (inner > 1) {
      // Within-experiment threads multiply per worker, so the budget is
      // enforced by shrinking the worker pool.
      const unsigned clamped = std::max(1u, hardware / inner);
      if (options.on_diagnostic) {
        options.on_diagnostic(
            "campaign '" + campaign.name + "': " + std::to_string(threads) +
            " worker(s) x " + std::to_string(inner) +
            " thread(s) per experiment exceeds hardware_concurrency=" +
            std::to_string(hardware) + "; clamping workers to " +
            std::to_string(clamped));
      }
      threads = clamped;
    } else if (options.on_diagnostic) {
      // Plain worker oversubscription stays allowed (it is harmless,
      // and differential tests rely on running N workers on fewer
      // cores) — but it is no longer silent.
      options.on_diagnostic(
          "campaign '" + campaign.name + "': " + std::to_string(threads) +
          " worker(s) exceed hardware_concurrency=" +
          std::to_string(hardware) + "; running oversubscribed");
    }
  }

  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  util::parallel_for_stoppable(
      pending.size(),
      [&](std::size_t i, std::stop_token) {
        const PlannedExperiment& p = pending[i];
        // Workers never inherit the caller's thread-local ambient
        // telemetry, so install the campaign's bundle here — engine
        // taps inside the experiment then record into the shared
        // striped sinks.
        obs::ScopedTelemetry ambient(&telemetry);
        obs::SpanScope span(telemetry.trace, "experiment", "campaign");
        if (telemetry.trace != nullptr) {
          span.set_args("{\"id\":\"" + util::json_escape(p.id) + "\"}");
        }
        util::WallTimer experiment_timer;
        // Experiment-level parallelism comes from the workers;
        // within-experiment parallelism from inner_threads.  Either
        // way the result is the same — thread counts are resource
        // knobs, never part of an experiment's identity.
        scenario::ScenarioSpec spec = p.spec;
        spec.threads = inner;
        const scenario::ScenarioResult result =
            scenario::Experiment(std::move(spec), registry).run();
        std::size_t appended;
        {
          const obs::SpanScope journal_span(telemetry.trace,
                                            "journal-append", "campaign");
          appended = journal.append(make_record(p, result, campaign.name));
        }
        const std::size_t done_now =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (experiment_seconds != nullptr) {
          experiment_seconds->observe(experiment_timer.elapsed_seconds());
          experiments_total->add(1);
          journal_bytes->add(appended);
          completed_gauge->set(static_cast<std::int64_t>(done_now));
          queue_depth->set(
              static_cast<std::int64_t>(pending.size() - done_now));
        }
        if (options.on_complete) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          options.on_complete(p, done_now, pending.size());
        }
      },
      threads, options.should_stop);

  report.executed = completed.load();
  // Experiments neither journaled before this invocation, capped away,
  // nor executed now are remaining — nonzero exactly when should_stop
  // (or the cap above) cut the run short, which is what drives
  // antdense_sweep's interrupted exit code.
  report.remaining += pending.size() - report.executed;
  report.elapsed_seconds = timer.elapsed_seconds();
  return report;
}

RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options) {
  return run_campaign(campaign, journal_path, options,
                      scenario::Registry::built_in());
}

}  // namespace antdense::campaign
