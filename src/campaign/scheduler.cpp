#include "campaign/scheduler.hpp"

#include <atomic>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "campaign/journal.hpp"
#include "scenario/experiment.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace antdense::campaign {

RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options,
                       const scenario::Registry& registry) {
  util::WallTimer timer;
  RunReport report;

  std::vector<PlannedExperiment> planned = campaign.expand(registry);
  report.planned = planned.size();

  const std::vector<util::JsonValue> existing = Journal::load(journal_path);
  for (const util::JsonValue& record : existing) {
    const util::JsonValue* name = record.find("campaign");
    ANTDENSE_CHECK(name != nullptr && name->is_string() &&
                       name->as_string() == campaign.name,
                   "journal " + journal_path + " belongs to campaign '" +
                       (name != nullptr && name->is_string()
                            ? name->as_string()
                            : std::string("?")) +
                       "', not '" + campaign.name + "'");
  }
  const std::set<std::string> done = Journal::completed_ids(existing);

  std::vector<PlannedExperiment> pending;
  pending.reserve(planned.size());
  for (PlannedExperiment& p : planned) {
    if (done.count(p.id) > 0) {
      ++report.cached;
    } else {
      pending.push_back(std::move(p));
    }
  }
  if (options.max_experiments > 0 &&
      pending.size() > options.max_experiments) {
    report.remaining = pending.size() - options.max_experiments;
    pending.resize(options.max_experiments);
  }
  if (pending.empty()) {
    report.elapsed_seconds = timer.elapsed_seconds();
    return report;
  }

  Journal journal(journal_path);
  const unsigned threads =
      options.threads != 0 ? options.threads : campaign.threads;
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  util::parallel_for_stoppable(
      pending.size(),
      [&](std::size_t i, std::stop_token) {
        const PlannedExperiment& p = pending[i];
        // The scheduler owns the parallelism: each experiment runs its
        // trials serially so N workers saturate N cores without
        // oversubscription (and the result is the same either way —
        // trial fan-out is thread-count-invariant by construction).
        scenario::ScenarioSpec spec = p.spec;
        spec.threads = 1;
        const scenario::ScenarioResult result =
            scenario::Experiment(std::move(spec), registry).run();
        journal.append(make_record(p, result, campaign.name));
        const std::size_t done_now =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.on_complete) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          options.on_complete(p, done_now, pending.size());
        }
      },
      threads);

  report.executed = completed.load();
  report.elapsed_seconds = timer.elapsed_seconds();
  return report;
}

RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options) {
  return run_campaign(campaign, journal_path, options,
                      scenario::Registry::built_in());
}

}  // namespace antdense::campaign
