// The campaign run journal: one JSONL record (schema
// "antdense.campaign.v1") per completed experiment, appended and
// flushed as each finishes.  The journal is simultaneously
//
//   * the progress log a running campaign streams to disk,
//   * the result cache — re-running a campaign skips every id already
//     recorded, so a killed campaign resumes where it stopped, and
//   * the aggregation pipeline's input (campaign/aggregate.hpp).
//
// Records deliberately exclude wall-clock time and thread counts, so a
// campaign's journal is bit-identical (modulo record order) for any
// worker count and any run/resume split — the property the acceptance
// tests and the campaign-smoke CI job pin.
//
// Record shape:
//
//   { "schema": "antdense.campaign.v1",
//     "campaign": name, "id": hex64, "seed": derived-seed,
//     "spec": { declared identity JSON },
//     "result": { "topology": str, "num_nodes": int, "rounds": int,
//                 "true_value": num, "rel_error": num,
//                 "summary": { count, mean, stddev, standard_error,
//                              min, max, within_eps } } }
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "scenario/experiment.hpp"
#include "util/json.hpp"

namespace antdense::campaign {

inline constexpr const char* kJournalSchema = "antdense.campaign.v1";

/// Builds the journal record for one completed experiment.
util::JsonValue make_record(const PlannedExperiment& planned,
                            const scenario::ScenarioResult& result,
                            const std::string& campaign_name);

class Journal {
 public:
  /// Parses an existing journal; a missing file is an empty journal.  A
  /// final line cut mid-write (the campaign was killed: unparseable AND
  /// missing its terminating newline) is silently dropped — that
  /// experiment simply reruns on resume — while a malformed or
  /// wrong-schema line anywhere else, including a newline-terminated
  /// garbage tail, throws naming the line (corruption must not be
  /// mistaken for progress).
  static std::vector<util::JsonValue> load(const std::string& path);

  /// The "id" of every record: the completed-experiment cache.
  static std::set<std::string> completed_ids(
      const std::vector<util::JsonValue>& records);

  /// Opens `path` for appending (created when absent); a trailing
  /// partial line left by a kill is truncated away first so the next
  /// record starts on its own line.  Throws std::runtime_error when the
  /// file cannot be opened.
  explicit Journal(const std::string& path);

  /// Appends one record as a single compact line and flushes, so a
  /// record is either wholly on disk or droppable as the trailing
  /// fragment.  Thread-safe.  Returns the bytes written (line plus
  /// newline) — the scheduler's journal-bytes telemetry counts these.
  std::size_t append(const util::JsonValue& record);

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
};

}  // namespace antdense::campaign
