#include "campaign/aggregate.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/check.hpp"

namespace antdense::campaign {

namespace {

/// Resolves a dotted path ("result.summary.within_eps") in `record`.
const util::JsonValue* lookup_path(const util::JsonValue& record,
                                   const std::string& path) {
  const util::JsonValue* node = &record;
  std::size_t start = 0;
  while (node != nullptr && start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string part =
        path.substr(start, dot == std::string::npos ? std::string::npos
                                                    : dot - start);
    node = node->find(part);
    if (dot == std::string::npos) {
      break;
    }
    start = dot + 1;
  }
  return node;
}

/// Maps a group key to the record path it reads (empty for the special
/// "family" key, which needs string surgery on spec.topology).
std::string key_path(const std::string& key) {
  if (key == "rounds") {
    return "result.rounds";  // the resolved budget, not the declared 0
  }
  for (const char* spec_key :
       {"topology", "workload", "agents", "trials", "eps", "delta", "lazy",
        "miss", "spurious", "dropout", "dynamics", "seed",
        "property-fraction", "tracked", "checkpoints", "radius"}) {
    if (key == spec_key) {
      return "spec." + key;
    }
  }
  return key;  // already a dotted path
}

std::string group_value(const util::JsonValue& record,
                        const std::string& key) {
  if (key == "family") {
    const util::JsonValue* topo = lookup_path(record, "spec.topology");
    ANTDENSE_CHECK(topo != nullptr && topo->is_string(),
                   "aggregate: record has no spec.topology");
    const std::string& spec = topo->as_string();
    return spec.substr(0, spec.find(':'));
  }
  const std::string path = key_path(key);
  const util::JsonValue* value = lookup_path(record, path);
  ANTDENSE_CHECK(value != nullptr, "aggregate: unknown group key '" + key +
                                       "' (no field '" + path +
                                       "' in record)");
  if (value->is_string()) {
    return value->as_string();
  }
  // Numbers and bools reuse the JSON spelling, so CSV and JSON agree.
  return value->dump(0);
}

double metric(const util::JsonValue& record, const std::string& path) {
  const util::JsonValue* value = lookup_path(record, path);
  ANTDENSE_CHECK(value != nullptr && value->is_number(),
                 "aggregate: record is missing metric '" + path + "'");
  return value->as_double();
}

std::string csv_field(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_number(double v) { return util::JsonValue(v).dump(0); }

}  // namespace

Aggregate aggregate(const std::vector<util::JsonValue>& records,
                    const std::vector<std::string>& group_by) {
  ANTDENSE_CHECK(!group_by.empty(), "aggregate: need at least one group key");

  struct Accumulator {
    std::size_t n = 0;
    double sum_rel = 0.0, max_rel = 0.0;
    double sum_within = 0.0, min_within = 1.0;
    double eps = 0.0, delta = 0.0;
    bool uniform_envelope = true;
  };
  std::map<std::vector<std::string>, Accumulator> groups;

  for (const util::JsonValue& record : records) {
    std::vector<std::string> key;
    key.reserve(group_by.size());
    for (const std::string& k : group_by) {
      key.push_back(group_value(record, k));
    }
    Accumulator& acc = groups[key];
    const double rel = metric(record, "result.rel_error");
    const double within = metric(record, "result.summary.within_eps");
    const double eps = metric(record, "spec.eps");
    const double delta = metric(record, "spec.delta");
    if (acc.n == 0) {
      acc.eps = eps;
      acc.delta = delta;
      acc.min_within = within;
    } else if (acc.eps != eps || acc.delta != delta) {
      acc.uniform_envelope = false;
    }
    ++acc.n;
    acc.sum_rel += rel;
    acc.max_rel = std::max(acc.max_rel, rel);
    acc.sum_within += within;
    acc.min_within = std::min(acc.min_within, within);
  }

  Aggregate out;
  out.group_by = group_by;
  out.records = records.size();
  out.groups.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    AggregateGroup g;
    g.key = key;
    g.experiments = acc.n;
    g.mean_rel_error = acc.sum_rel / static_cast<double>(acc.n);
    g.max_rel_error = acc.max_rel;
    g.mean_within_eps = acc.sum_within / static_cast<double>(acc.n);
    g.min_within_eps = acc.min_within;
    g.has_envelope = acc.uniform_envelope;
    if (g.has_envelope) {
      g.eps = acc.eps;
      g.delta = acc.delta;
      g.envelope_met = g.mean_within_eps >= 1.0 - acc.delta;
    }
    out.groups.push_back(std::move(g));
  }
  return out;
}

std::string Aggregate::to_csv() const {
  std::string out;
  for (const std::string& key : group_by) {
    out += csv_field(key);
    out += ',';
  }
  out +=
      "experiments,mean_rel_error,max_rel_error,mean_within_eps,"
      "min_within_eps,envelope_eps,envelope_delta,envelope_met\n";
  for (const AggregateGroup& g : groups) {
    for (const std::string& value : g.key) {
      out += csv_field(value);
      out += ',';
    }
    out += std::to_string(g.experiments);
    out += ',';
    out += csv_number(g.mean_rel_error);
    out += ',';
    out += csv_number(g.max_rel_error);
    out += ',';
    out += csv_number(g.mean_within_eps);
    out += ',';
    out += csv_number(g.min_within_eps);
    out += ',';
    if (g.has_envelope) {
      out += csv_number(g.eps);
      out += ',';
      out += csv_number(g.delta);
      out += ',';
      out += g.envelope_met ? "true" : "false";
    } else {
      out += ",,";
    }
    out += '\n';
  }
  return out;
}

util::JsonValue Aggregate::to_json() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", kAggregateSchema);
  doc.set("records", static_cast<std::uint64_t>(records));
  util::JsonValue keys = util::JsonValue::array();
  for (const std::string& key : group_by) {
    keys.push_back(key);
  }
  doc.set("group_by", std::move(keys));

  util::JsonValue group_docs = util::JsonValue::array();
  for (const AggregateGroup& g : groups) {
    util::JsonValue gd = util::JsonValue::object();
    util::JsonValue key_doc = util::JsonValue::object();
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      key_doc.set(group_by[i], g.key[i]);
    }
    gd.set("key", std::move(key_doc));
    gd.set("experiments", static_cast<std::uint64_t>(g.experiments));
    gd.set("mean_rel_error", g.mean_rel_error);
    gd.set("max_rel_error", g.max_rel_error);
    gd.set("mean_within_eps", g.mean_within_eps);
    gd.set("min_within_eps", g.min_within_eps);
    if (g.has_envelope) {
      util::JsonValue env = util::JsonValue::object();
      env.set("eps", g.eps);
      env.set("delta", g.delta);
      env.set("met", g.envelope_met);
      gd.set("envelope", std::move(env));
    } else {
      gd.set("envelope", util::JsonValue());
    }
    group_docs.push_back(std::move(gd));
  }
  doc.set("groups", std::move(group_docs));
  return doc;
}

}  // namespace antdense::campaign
