#include "campaign/spec.hpp"

#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "rng/splitmix64.hpp"
#include "scenario/registry.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace antdense::campaign {

namespace {

/// Expansion hard cap: a typo'd axis ("values": a 10^4-entry list,
/// squared) should fail fast, not allocate a million specs.
constexpr std::size_t kMaxExperiments = 1'000'000;

const util::JsonValue& require(const util::JsonValue& doc,
                               const std::string& key,
                               const std::string& where) {
  const util::JsonValue* v = doc.find(key);
  ANTDENSE_CHECK(v != nullptr,
                 "campaign: " + where + " requires a '" + key + "' key");
  return *v;
}

/// Seeds must survive the spec's own validate() (< 2^53 so spec files
/// round-trip through JSON doubles exactly).
constexpr std::uint64_t kSeedMask = (std::uint64_t{1} << 53) - 1;

}  // namespace

Axis Axis::from_json(const util::JsonValue& doc) {
  const std::string kind_name =
      require(doc, "kind", "an axis").as_string();
  Axis axis;
  std::set<std::string> known = {"kind"};

  if (kind_name == "grid") {
    axis.kind = Kind::kGrid;
    known.insert({"key", "values"});
    const std::string key = require(doc, "key", "a grid axis").as_string();
    ANTDENSE_CHECK(key != "threads",
                   "campaign: 'threads' is an execution knob, not an "
                   "experiment axis (set the campaign's top-level "
                   "\"threads\" instead)");
    axis.keys.push_back(key);
    for (const util::JsonValue& v :
         require(doc, "values", "a grid axis").items()) {
      util::JsonValue point = util::JsonValue::object();
      point.set(key, v);
      axis.points.push_back(std::move(point));
    }
  } else if (kind_name == "zip") {
    axis.kind = Kind::kZip;
    known.insert({"keys", "values"});
    for (const util::JsonValue& k :
         require(doc, "keys", "a zip axis").items()) {
      ANTDENSE_CHECK(k.as_string() != "threads",
                     "campaign: 'threads' is an execution knob, not an "
                     "experiment axis (set the campaign's top-level "
                     "\"threads\" instead)");
      axis.keys.push_back(k.as_string());
    }
    ANTDENSE_CHECK(!axis.keys.empty(), "campaign: zip axis needs keys");
    for (const util::JsonValue& tuple :
         require(doc, "values", "a zip axis").items()) {
      ANTDENSE_CHECK(tuple.is_array() &&
                         tuple.items().size() == axis.keys.size(),
                     "campaign: each zip value must be a tuple with one "
                     "entry per key");
      util::JsonValue point = util::JsonValue::object();
      for (std::size_t i = 0; i < axis.keys.size(); ++i) {
        point.set(axis.keys[i], tuple.items()[i]);
      }
      axis.points.push_back(std::move(point));
    }
  } else if (kind_name == "list") {
    axis.kind = Kind::kList;
    known.insert("specs");
    std::set<std::string> keys_seen;
    for (const util::JsonValue& overlay :
         require(doc, "specs", "a list axis").items()) {
      ANTDENSE_CHECK(overlay.is_object(),
                     "campaign: each list-axis spec must be an object of "
                     "ScenarioSpec keys");
      for (const auto& [k, v] : overlay.entries()) {
        ANTDENSE_CHECK(k != "threads",
                       "campaign: 'threads' is an execution knob, not an "
                       "experiment axis (set the campaign's top-level "
                       "\"threads\" instead)");
        keys_seen.insert(k);
      }
      axis.points.push_back(overlay);
    }
    axis.keys.assign(keys_seen.begin(), keys_seen.end());
  } else {
    throw std::invalid_argument("campaign: unknown axis kind '" +
                                kind_name +
                                "' (expected grid, zip, or list)");
  }

  for (const auto& [key, value] : doc.entries()) {
    ANTDENSE_CHECK(known.count(key) > 0,
                   "campaign: unknown " + kind_name + "-axis key '" + key +
                       "'");
  }
  ANTDENSE_CHECK(!axis.points.empty(),
                 "campaign: an axis must contribute at least one point");
  return axis;
}

CampaignSpec CampaignSpec::from_json(const util::JsonValue& doc) {
  CampaignSpec campaign;
  for (const auto& [key, value] : doc.entries()) {
    if (key == "name") {
      campaign.name = value.as_string();
      ANTDENSE_CHECK(!campaign.name.empty(),
                     "campaign: name must be non-empty");
    } else if (key == "seed") {
      campaign.seed = value.as_uint();
    } else if (key == "threads") {
      const std::uint64_t threads = value.as_uint();
      ANTDENSE_CHECK(
          threads <= std::numeric_limits<std::uint32_t>::max(),
          "campaign: threads value " + std::to_string(threads) +
              " exceeds the 32-bit range");
      campaign.threads = static_cast<unsigned>(threads);
    } else if (key == "base") {
      campaign.base = scenario::ScenarioSpec::from_json(value);
    } else if (key == "axes") {
      for (const util::JsonValue& axis_doc : value.items()) {
        campaign.axes.push_back(Axis::from_json(axis_doc));
      }
    } else {
      throw std::invalid_argument("campaign: unknown key '" + key +
                                  "' (expected name, seed, threads, base, "
                                  "axes)");
    }
  }
  return campaign;
}

CampaignSpec CampaignSpec::from_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open campaign file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(util::JsonValue::parse(text.str()));
}

std::vector<PlannedExperiment> CampaignSpec::expand(
    const scenario::Registry& registry) const {
  std::size_t total = 1;
  for (const Axis& axis : axes) {
    // Axis::from_json already enforces this; re-check for axes built in
    // code, where an empty one would zero `total` (and crash the cap
    // division) instead of failing loudly.
    ANTDENSE_CHECK(!axis.points.empty(),
                   "campaign: an axis must contribute at least one point");
    ANTDENSE_CHECK(axis.points.size() <= kMaxExperiments / total,
                   "campaign: expansion exceeds " +
                       std::to_string(kMaxExperiments) + " experiments");
    total *= axis.points.size();
  }

  std::vector<PlannedExperiment> out;
  out.reserve(total);
  std::set<std::string> seen_ids;
  // Mixed-radix counter over the axes; digit 0 (the first axis) varies
  // slowest, so expansion order matches the nesting of the axes array.
  std::vector<std::size_t> digit(axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    scenario::ScenarioSpec spec = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      spec = scenario::ScenarioSpec::from_json(axes[a].points[digit[a]],
                                               std::move(spec));
    }
    spec.validate();

    PlannedExperiment planned;
    planned.declared = spec.identity_json(registry);
    // Same bytes ScenarioSpec::identity_hash hashes: id and seed must
    // stay derived from one canonical serialization.
    const std::uint64_t hash = util::fnv1a64(planned.declared.dump(0));
    planned.id = util::hex64(hash);
    ANTDENSE_CHECK(seen_ids.insert(planned.id).second,
                   "campaign: axes produce duplicate experiment "
                   "identities (id " +
                       planned.id +
                       "); distinguish the points, e.g. sweep 'seed'");
    planned.seed = rng::derive_seed(seed, hash) & kSeedMask;
    spec.topology = planned.declared.find("topology")->as_string();
    spec.seed = planned.seed;
    planned.spec = std::move(spec);
    out.push_back(std::move(planned));

    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++digit[a] < axes[a].points.size()) {
        break;
      }
      digit[a] = 0;
    }
  }
  return out;
}

std::vector<PlannedExperiment> CampaignSpec::expand() const {
  return expand(scenario::Registry::built_in());
}

}  // namespace antdense::campaign
