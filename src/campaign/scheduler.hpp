// The campaign scheduler: expands a CampaignSpec, subtracts the
// experiments its journal already holds, and runs the remainder on a
// std::jthread work queue (util::parallel_for_stoppable), journaling
// each experiment the moment it completes.
//
// Determinism contract: every experiment runs single-threaded inside a
// worker with a seed derived from (campaign seed, spec identity hash) at
// expansion time — so its result depends only on its spec, never on
// which worker ran it, in what order, or how many workers exist.  The
// journal is therefore bit-identical (modulo record order) across
// thread counts and across any interrupt/resume split, which is what
// makes "re-run the same command" the entire resume story.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "campaign/spec.hpp"
#include "obs/telemetry.hpp"
#include "scenario/registry.hpp"

namespace antdense::campaign {

struct RunOptions {
  /// Scheduler workers; 0 falls back to the campaign's `threads`, and 0
  /// there means one per core.
  unsigned threads = 0;
  /// Threads handed to each experiment (ScenarioSpec::threads while it
  /// runs) — within-experiment parallelism, which pays off for
  /// `engine=sharded` specs or trial fan-outs.  When inner_threads > 1
  /// the scheduler keeps workers x inner_threads within
  /// hardware_concurrency by shrinking the worker pool, reporting
  /// through on_diagnostic; plain worker oversubscription (inner == 1)
  /// stays allowed but is reported too.  Results are unaffected either
  /// way (threads never changes what an experiment computes).  0 or 1 =
  /// the historical single-threaded-experiment regime.
  unsigned inner_threads = 1;
  /// Cap on experiments *executed* this invocation (0 = no cap).  The
  /// journal keeps what ran, so a capped run is exactly an interrupted
  /// one — the CI smoke job resumes from it deterministically.
  std::size_t max_experiments = 0;
  /// Called after each experiment's record is journaled, with how many
  /// of this invocation's experiments are done.  Serialized; may print.
  std::function<void(const PlannedExperiment&, std::size_t done,
                     std::size_t scheduled)>
      on_complete;
  /// Receives human-readable scheduling diagnostics (currently: the
  /// thread-budget clamp message when a campaign asks for more total
  /// threads than the hardware has).  Unset = diagnostics are dropped.
  std::function<void(const std::string&)> on_diagnostic;
  /// Cooperative cancellation, polled by each worker before it claims
  /// the next experiment (util::parallel_for_stoppable's should_stop).
  /// Wire util::termination_requested here and SIGINT/SIGTERM turn into
  /// a clean interrupt: in-flight experiments finish and journal, the
  /// rest count as `remaining`, and the journal tail stays whole — so
  /// the resume story is identical to a --max-experiments cap.  Must be
  /// callable concurrently (keep it a flag read).
  std::function<bool()> should_stop;
  /// Optional telemetry sinks.  When set, the scheduler publishes
  /// queue-depth/completion gauges, experiment and journal-byte
  /// counters, and an experiment-latency histogram, emits per-
  /// experiment + journal-append trace spans, and installs the bundle
  /// as each worker's ambient telemetry so engine taps fire inside
  /// every experiment.  Never affects results (RNG-neutral).
  obs::Telemetry telemetry;
};

struct RunReport {
  std::size_t planned = 0;    // expanded campaign size
  std::size_t cached = 0;     // skipped: already journaled
  std::size_t executed = 0;   // run and journaled this invocation
  std::size_t remaining = 0;  // left undone by max_experiments
  double elapsed_seconds = 0.0;
};

/// Runs `campaign` against the journal at `journal_path` (created when
/// absent, resumed when present).  Throws std::invalid_argument when the
/// journal belongs to a different campaign name, and rethrows the first
/// experiment failure after in-flight experiments finish (their records
/// are already journaled, so a later invocation resumes past them).
RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options,
                       const scenario::Registry& registry);
RunReport run_campaign(const CampaignSpec& campaign,
                       const std::string& journal_path,
                       const RunOptions& options = {});

}  // namespace antdense::campaign
