#include "campaign/journal.hpp"

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace antdense::campaign {

util::JsonValue make_record(const PlannedExperiment& planned,
                            const scenario::ScenarioResult& result,
                            const std::string& campaign_name) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", kJournalSchema);
  doc.set("campaign", campaign_name);
  doc.set("id", planned.id);
  doc.set("seed", planned.seed);
  doc.set("spec", planned.declared);

  util::JsonValue res = util::JsonValue::object();
  res.set("topology", result.topology_name);
  res.set("num_nodes", result.num_nodes);
  // The resolved budget: when the declared spec plans via (eps, delta)
  // its "rounds" is 0, and aggregation groups on what actually ran.
  res.set("rounds", result.spec.rounds);
  res.set("true_value", result.true_value);
  // When the ground truth is exactly 0 (a property sweep including
  // property_fraction 0) relative error is undefined; the record falls
  // back to the absolute mean so it stays finite and serializable.
  // Group such experiments separately when aggregating — mean_rel_error
  // over a mixed group would average two different metrics.
  const double rel_error =
      result.true_value == 0.0
          ? std::fabs(result.summary.mean)
          : std::fabs(result.summary.mean - result.true_value) /
                result.true_value;
  res.set("rel_error", rel_error);

  util::JsonValue summary = util::JsonValue::object();
  summary.set("count", result.summary.count);
  summary.set("mean", result.summary.mean);
  summary.set("stddev", result.summary.stddev);
  summary.set("standard_error", result.summary.standard_error);
  summary.set("min", result.summary.min);
  summary.set("max", result.summary.max);
  summary.set("within_eps", result.summary.within_eps);
  res.set("summary", std::move(summary));

  doc.set("result", std::move(res));
  return doc;
}

std::vector<util::JsonValue> Journal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // append() writes each record as "<json>\n" and a partial OS write can
  // only lose a suffix, so a kill-torn record is exactly a final line
  // with no terminating newline.  Anything else that fails to parse —
  // including a malformed line that IS newline-terminated — is
  // corruption and must throw, not be mistaken for an unfinished tail.
  const bool ends_with_newline =
      !content.empty() && content.back() == '\n';
  std::vector<std::pair<std::size_t, std::string>> lines;
  std::size_t start = 0;
  for (std::size_t number = 1; start < content.size(); ++number) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      end = content.size();
    }
    if (end > start) {
      lines.emplace_back(number, content.substr(start, end - start));
    }
    start = end + 1;
  }
  std::vector<util::JsonValue> records;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool droppable_tail =
        i + 1 == lines.size() && !ends_with_newline;
    util::JsonValue record;
    try {
      record = util::JsonValue::parse(lines[i].second);
    } catch (const std::invalid_argument&) {
      if (droppable_tail) {
        break;
      }
      throw std::invalid_argument(
          "journal " + path + " line " + std::to_string(lines[i].first) +
          ": malformed record (corrupted journal?)");
    }
    const util::JsonValue* schema = record.find("schema");
    ANTDENSE_CHECK(schema != nullptr && schema->is_string() &&
                       schema->as_string() == kJournalSchema,
                   "journal " + path + " line " +
                       std::to_string(lines[i].first) +
                       ": not an " + std::string(kJournalSchema) +
                       " record");
    records.push_back(std::move(record));
  }
  return records;
}

std::set<std::string> Journal::completed_ids(
    const std::vector<util::JsonValue>& records) {
  std::set<std::string> ids;
  for (const util::JsonValue& record : records) {
    const util::JsonValue* id = record.find("id");
    if (id != nullptr && id->is_string()) {
      ids.insert(id->as_string());
    }
  }
  return ids;
}

Journal::Journal(const std::string& path) : path_(path) {
  // A kill mid-append leaves a partial trailing line with no newline;
  // appending straight after it would weld the next record onto the
  // fragment.  Truncate to the last complete line first — load() already
  // treats the fragment as not-done, so the experiment reruns anyway.
  // The clean-shutdown case (final byte is '\n') costs one seek; only an
  // actual fragment pays a rescan, and that streams in fixed chunks so a
  // large journal is never held in memory.
  {
    std::ifstream in(path, std::ios::binary);
    char last = '\n';
    if (in && in.seekg(-1, std::ios::end) && in.get(last) && last != '\n') {
      in.clear();
      in.seekg(0);
      std::streamoff last_newline = -1;
      std::streamoff offset = 0;
      char buffer[65536];
      while (in.read(buffer, sizeof buffer), in.gcount() > 0) {
        const std::streamsize got = in.gcount();
        for (std::streamsize i = 0; i < got; ++i) {
          if (buffer[i] == '\n') {
            last_newline = offset + i;
          }
        }
        offset += got;
      }
      std::filesystem::resize_file(
          path, last_newline < 0
                    ? 0
                    : static_cast<std::uintmax_t>(last_newline) + 1);
    }
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open journal " + path +
                             " for appending");
  }
}

std::size_t Journal::append(const util::JsonValue& record) {
  const std::string line = record.dump(0);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  if (!out_.good()) {
    throw std::runtime_error("write to journal " + path_ + " failed");
  }
  return line.size() + 1;
}

}  // namespace antdense::campaign
