// The campaign aggregation pipeline: group-by reducers over journal
// records, producing a CSV table (one row per group) and a JSON summary
// (schema "antdense.campaign.aggregate.v1").
//
// Group keys name record fields: the shortcuts `family` (the topology
// spec's family prefix), `topology`, `workload`, `agents`, `trials`,
// `eps`, `delta`, `lazy`, `miss`, `spurious`, and `rounds` (the
// *resolved* budget that actually ran, so rounds-planned-from-(eps,
// delta) sweeps still group correctly) — or any dotted path into the
// record, e.g. `spec.rounds` or `result.num_nodes`.
//
// Per group the pipeline reduces the records' accuracy metrics:
// experiment count, mean/max relative error, and mean/min within-eps
// fraction.  When a group's (eps, delta) are uniform it also reports
// the Theorem-1 envelope check — Algorithm 1 promises a (1 ± eps)
// estimate with probability >= 1 - delta once the round budget is
// sufficient, so `envelope_met` is whether the observed mean within-eps
// fraction clears 1 - delta.  Grouping by family and rounds therefore
// yields the paper's observed-error-vs-round-count curves per topology
// family, envelope verdict attached.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace antdense::campaign {

inline constexpr const char* kAggregateSchema =
    "antdense.campaign.aggregate.v1";

struct AggregateGroup {
  /// Group-key values, aligned with Aggregate::group_by.
  std::vector<std::string> key;
  std::size_t experiments = 0;
  double mean_rel_error = 0.0;
  double max_rel_error = 0.0;
  double mean_within_eps = 0.0;
  double min_within_eps = 0.0;
  /// Theorem-1 envelope, when (eps, delta) are uniform across the group.
  bool has_envelope = false;
  double eps = 0.0;
  double delta = 0.0;
  bool envelope_met = false;
};

struct Aggregate {
  std::vector<std::string> group_by;
  std::size_t records = 0;
  std::vector<AggregateGroup> groups;  // sorted by key

  /// One header row plus one row per group; fields quoted per RFC 4180
  /// when they contain commas, quotes, or newlines.  Envelope columns
  /// are empty for groups with mixed (eps, delta).
  std::string to_csv() const;
  util::JsonValue to_json() const;
};

/// Groups `records` (journal lines, see campaign/journal.hpp) by the
/// given keys and reduces each group.  Throws std::invalid_argument on
/// an unknown key or a record missing one.
Aggregate aggregate(const std::vector<util::JsonValue>& records,
                    const std::vector<std::string>& group_by);

}  // namespace antdense::campaign
