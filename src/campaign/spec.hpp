// The declarative half of the campaign engine: one CampaignSpec
// describes a *family* of experiments — a base ScenarioSpec plus sweep
// axes over any spec field — and expands into concrete, individually
// seeded experiments.  The paper's claims (Theorem 1 accuracy
// envelopes, the Section 6.1 robustness knobs) are statements over
// configuration families; a campaign is how the repo explores one in a
// single invocation.
//
// Campaign JSON (see README for a copy-pasteable example):
//
//   { "name": "accuracy",            // journal/artifact label
//     "seed": 7,                     // campaign seed (per-experiment
//                                    // seeds derive from it, below)
//     "threads": 4,                  // scheduler workers (0 = cores)
//     "base": { ...ScenarioSpec keys... },
//     "axes": [
//       {"kind": "grid", "key": "topology",
//        "values": ["torus2d:32x32", "ring:1024"]},
//       {"kind": "grid", "key": "agents", "values": [100, 200, 400]},
//       {"kind": "zip", "keys": ["eps", "delta"],
//        "values": [[0.1, 0.05], [0.2, 0.1]]},
//       {"kind": "list", "specs": [{"lazy": 0.0}, {"lazy": 0.3}]} ] }
//
// Axis kinds: `grid` sweeps one key over a value list; `zip` advances
// several keys in lockstep (one factor of tuples, not a product); and
// `list` enumerates explicit partial-spec overlays.  Expansion is the
// cartesian product of the axes (first axis varies slowest), each point
// overlaid onto `base` through the ScenarioSpec JSON vocabulary — so
// unknown keys and ill-typed values fail with the same errors as a
// --spec file.
//
// Identity and seeding: every expanded spec gets a content hash
// (ScenarioSpec::identity_hash — canonical topology spelling, `threads`
// excluded) that keys the run journal's result cache, and a per-
// experiment seed derived by splitmix from (campaign seed, hash).  Both
// depend only on the spec's *content*, never on expansion order, worker
// count, or which subset already ran — which is what makes campaigns
// resumable and their journals order-independent.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace antdense::campaign {

/// One sweep dimension, normalized to a list of JSON-object overlays
/// ("points").  Expansion takes the cartesian product across axes and
/// applies each chosen point onto the base spec in axis order.
struct Axis {
  enum class Kind { kGrid, kZip, kList };

  Kind kind = Kind::kGrid;
  /// The spec keys this axis sets (informational; each point carries its
  /// own keys).  grid: one, zip: several, list: union of its specs'.
  std::vector<std::string> keys;
  std::vector<util::JsonValue> points;

  /// Parses one entry of "axes"; throws std::invalid_argument on an
  /// unknown kind, missing/ill-shaped fields, or an empty value list.
  static Axis from_json(const util::JsonValue& doc);
};

/// One concrete experiment produced by expansion.
struct PlannedExperiment {
  /// The spec to run: declared fields with the derived seed applied.
  scenario::ScenarioSpec spec;
  /// The declared spec's identity JSON (canonical topology, no threads,
  /// seed as declared) — what the journal records and `id` hashes.
  util::JsonValue declared;
  /// identity_hash(declared): the journal's result-cache key.
  std::string id;
  /// splitmix(campaign seed, id) — the seed `spec` actually runs with.
  std::uint64_t seed = 0;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t seed = 42;
  /// Scheduler worker count (0 = one per core).  An execution knob like
  /// ScenarioSpec::threads: not part of any experiment's identity.
  unsigned threads = 0;
  scenario::ScenarioSpec base;
  std::vector<Axis> axes;  // empty = the base spec alone

  static CampaignSpec from_json(const util::JsonValue& doc);
  static CampaignSpec from_json_file(const std::string& path);

  /// Expands the axes into concrete experiments: overlays each cartesian
  /// point onto `base`, validates the resulting spec, computes its
  /// identity hash, and derives its seed.  Throws std::invalid_argument
  /// on invalid specs or when two points collapse to the same identity
  /// (the journal could not tell their results apart).
  std::vector<PlannedExperiment> expand(
      const scenario::Registry& registry) const;
  std::vector<PlannedExperiment> expand() const;  // Registry::built_in()
};

}  // namespace antdense::campaign
