// Robot-swarm density estimation (Section 5.2), generalized from one
// property to K task groups: every agent simultaneously tracks encounter
// rates with each group and estimates each group's relative frequency
// f_g = d_g / d.  This is the task-allocation primitive the paper's
// introduction motivates (harvester ants reallocating workers based on
// densities of successful foragers).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::swarm {

struct SwarmConfig {
  /// Size of each task group; the total agent count is their sum.
  std::vector<std::uint32_t> group_sizes;
  std::uint32_t rounds = 0;

  std::uint32_t total_agents() const {
    std::uint32_t total = 0;
    for (std::uint32_t g : group_sizes) {
      total += g;
    }
    return total;
  }

  void validate() const {
    ANTDENSE_CHECK(group_sizes.size() >= 1, "need at least one group");
    ANTDENSE_CHECK(total_agents() >= 2, "need at least two agents");
    ANTDENSE_CHECK(rounds >= 1, "need at least one round");
  }
};

struct SwarmResult {
  /// group_frequency_estimates[a][g] = agent a's estimate of group g's
  /// relative frequency (encounters with g / all encounters).
  std::vector<std::vector<double>> group_frequency_estimates;
  /// density_estimates[a] = agent a's overall density estimate.
  std::vector<double> density_estimates;
  /// True relative frequency of each group (group size / total).
  std::vector<double> true_frequencies;
  std::vector<std::uint32_t> group_of_agent;
  std::uint32_t rounds = 0;
};

/// Runs the multi-group encounter tracker.  Group membership is assigned
/// by shuffling agents uniformly (the Section 5.2 uniformity assumption).
template <graph::Topology T>
SwarmResult run_swarm_estimation(const T& topo, const SwarmConfig& cfg,
                                 std::uint64_t seed) {
  cfg.validate();
  const std::uint32_t n_agents = cfg.total_agents();
  const auto n_groups = static_cast<std::uint32_t>(cfg.group_sizes.size());

  // Uniformly random group assignment.
  std::vector<std::uint32_t> group_of(n_agents);
  {
    std::uint32_t idx = 0;
    for (std::uint32_t g = 0; g < n_groups; ++g) {
      for (std::uint32_t i = 0; i < cfg.group_sizes[g]; ++i) {
        group_of[idx++] = g;
      }
    }
    rng::Xoshiro256pp assign_gen(rng::derive_seed(seed, 0x5A11u));
    rng::shuffle(assign_gen, group_of);
  }

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x5A22u));
  std::vector<typename T::node_type> pos(n_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }

  std::vector<std::uint64_t> keys(n_agents);
  // counts[a * n_groups + g] = agent a's encounters with group g.
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(n_agents) * n_groups, 0);
  std::vector<sim::CollisionCounter> counters;
  counters.reserve(n_groups);
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    counters.emplace_back(n_agents);
  }

  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    for (auto& counter : counters) {
      counter.begin_round();
    }
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      counters[group_of[i]].add(keys[i]);
    }
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      for (std::uint32_t g = 0; g < n_groups; ++g) {
        std::uint32_t occ = counters[g].occupancy(keys[i]);
        if (g == group_of[i]) {
          --occ;  // exclude self
        }
        counts[static_cast<std::size_t>(i) * n_groups + g] += occ;
      }
    }
  }

  SwarmResult result;
  result.rounds = cfg.rounds;
  result.group_of_agent = std::move(group_of);
  result.true_frequencies.reserve(n_groups);
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    result.true_frequencies.push_back(static_cast<double>(cfg.group_sizes[g]) /
                                      static_cast<double>(n_agents));
  }
  result.density_estimates.reserve(n_agents);
  result.group_frequency_estimates.reserve(n_agents);
  for (std::uint32_t i = 0; i < n_agents; ++i) {
    std::uint64_t total = 0;
    for (std::uint32_t g = 0; g < n_groups; ++g) {
      total += counts[static_cast<std::size_t>(i) * n_groups + g];
    }
    result.density_estimates.push_back(static_cast<double>(total) /
                                       cfg.rounds);
    std::vector<double> freqs(n_groups, 0.0);
    if (total > 0) {
      for (std::uint32_t g = 0; g < n_groups; ++g) {
        freqs[g] = static_cast<double>(
                       counts[static_cast<std::size_t>(i) * n_groups + g]) /
                   static_cast<double>(total);
      }
    }
    result.group_frequency_estimates.push_back(std::move(freqs));
  }
  return result;
}

}  // namespace antdense::swarm
