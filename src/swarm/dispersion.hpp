// Density-triggered dispersion (Section 6.3.4 future-work feature).
//
// A closed-loop demo of density estimation as a control primitive:
// agents start clustered in a small patch of the torus, repeatedly run
// Algorithm 1 for an epoch, and agents whose local estimate exceeds a
// threshold diffuse at double speed (two walk steps per round) during the
// next epoch.  The occupancy spread metric shows the swarm flattening
// toward uniform coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/torus2d.hpp"

namespace antdense::swarm {

struct DispersionConfig {
  std::uint32_t num_agents = 0;
  std::uint32_t epochs = 0;
  std::uint32_t rounds_per_epoch = 0;
  /// Agents estimating density above this value speed up next epoch.
  double density_threshold = 0.0;
  /// Side of the initial square patch agents are packed into.
  std::uint32_t initial_patch_side = 1;
};

struct DispersionEpochStats {
  double mean_density_estimate = 0.0;
  double fraction_overcrowded = 0.0;  // agents above threshold
  /// Normalized spatial spread: mean pairwise torus L1 distance divided
  /// by the expected value for uniformly placed agents (1.0 = fully
  /// dispersed).
  double spread_ratio = 0.0;
};

struct DispersionResult {
  std::vector<DispersionEpochStats> epochs;
};

DispersionResult run_dispersion(const graph::Torus2D& torus,
                                const DispersionConfig& cfg,
                                std::uint64_t seed);

}  // namespace antdense::swarm
