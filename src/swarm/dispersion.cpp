#include "swarm/dispersion.hpp"

#include <algorithm>

#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::swarm {

using graph::Torus2D;

namespace {

// Mean pairwise wrap-aware L1 distance over a subsample of agent pairs,
// normalized by the uniform-placement expectation (side/2 per axis).
double spread_ratio(const Torus2D& torus,
                    const std::vector<Torus2D::node_type>& pos,
                    rng::Xoshiro256pp& gen) {
  const std::size_t n = pos.size();
  const std::size_t pairs = std::min<std::size_t>(4096, n * (n - 1) / 2);
  double acc = 0.0;
  for (std::size_t s = 0; s < pairs; ++s) {
    const auto i = rng::uniform_below(gen, n);
    auto j = rng::uniform_below(gen, n - 1);
    if (j >= i) ++j;
    acc += static_cast<double>(torus.l1_distance(pos[i], pos[j]));
  }
  const double mean = acc / static_cast<double>(pairs);
  // Expected wrap L1 distance of two uniform points: ~side/4 per axis.
  const double uniform_expectation =
      (static_cast<double>(torus.width()) + torus.height()) / 4.0;
  return mean / uniform_expectation;
}

}  // namespace

DispersionResult run_dispersion(const Torus2D& torus,
                                const DispersionConfig& cfg,
                                std::uint64_t seed) {
  ANTDENSE_CHECK(cfg.num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(cfg.epochs >= 1, "need at least one epoch");
  ANTDENSE_CHECK(cfg.rounds_per_epoch >= 1, "need at least one round");
  ANTDENSE_CHECK(cfg.density_threshold > 0.0, "threshold must be positive");
  ANTDENSE_CHECK(cfg.initial_patch_side >= 1 &&
                     cfg.initial_patch_side <= torus.width() &&
                     cfg.initial_patch_side <= torus.height(),
                 "patch must fit inside the torus");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xD15Cu));
  const std::uint32_t n = cfg.num_agents;

  // Clustered start: all agents inside the initial patch.
  std::vector<Torus2D::node_type> pos(n);
  for (auto& p : pos) {
    const auto x = static_cast<std::uint32_t>(
        rng::uniform_below(gen, cfg.initial_patch_side));
    const auto y = static_cast<std::uint32_t>(
        rng::uniform_below(gen, cfg.initial_patch_side));
    p = Torus2D::pack(x, y);
  }

  std::vector<bool> fast(n, false);
  std::vector<std::uint64_t> keys(n);
  sim::CollisionCounter counter(n);
  DispersionResult result;
  result.epochs.reserve(cfg.epochs);

  for (std::uint32_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint32_t r = 0; r < cfg.rounds_per_epoch; ++r) {
      counter.begin_round();
      for (std::uint32_t i = 0; i < n; ++i) {
        pos[i] = torus.random_neighbor(pos[i], gen);
        if (fast[i]) {
          pos[i] = torus.random_neighbor(pos[i], gen);
        }
        keys[i] = torus.key(pos[i]);
        counter.add(keys[i]);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        counts[i] += counter.occupancy(keys[i]) - 1;
      }
    }

    DispersionEpochStats stats;
    std::uint32_t overcrowded = 0;
    double estimate_sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double estimate =
          static_cast<double>(counts[i]) / cfg.rounds_per_epoch;
      estimate_sum += estimate;
      const bool hot = estimate > cfg.density_threshold;
      fast[i] = hot;
      if (hot) {
        ++overcrowded;
      }
    }
    stats.mean_density_estimate = estimate_sum / n;
    stats.fraction_overcrowded = static_cast<double>(overcrowded) / n;
    stats.spread_ratio = spread_ratio(torus, pos, gen);
    result.epochs.push_back(stats);
  }
  return result;
}

}  // namespace antdense::swarm
