// Direct-addressed per-round occupancy counter for the vector engine's
// hot path.  CollisionCounter (collision_counter.hpp) pays a mix + probe
// per touch; on substrates whose packed keys are dense in
// [0, num_nodes) — every explicit family guarantees this — a flat
// epoch-stamped array answers add/occupancy with a single indexed load,
// which is what the < 10 ns/agent-round budget demands.
//
// Each slot packs (epoch << 32) | count into one u64, so "stale slot
// reads as empty" costs a shift-compare instead of a second field load,
// and begin_round stays O(1) like the hash counter.  Counts are exactly
// CollisionCounter's for any key sequence (tests/test_vector_walk.cpp
// pins dense-vs-hash equality), so which counter a walk used is
// unobservable in its results — the vector engine picks per-topology by
// node count (use_dense_counter) and falls back to the hash table for
// huge implicit substrates where O(num_nodes) memory is the wrong deal.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace antdense::sim {

class DenseCollisionCounter {
 public:
  /// `num_keys`: keys must lie in [0, num_keys).  Allocates one u64 per
  /// key up front; see use_dense_counter for the size cutoff policy.
  explicit DenseCollisionCounter(std::uint64_t num_keys)
      : slots_(static_cast<std::size_t>(num_keys), 0) {
    ANTDENSE_CHECK(num_keys >= 1, "dense counter needs >= 1 key");
  }

  /// Starts a new round; all previous counts become invisible (O(1)).
  void begin_round() {
    ++epoch_;
    if (epoch_ == 0) {
      // Epoch counter wrapped (after 2^32 rounds): hard-reset stamps so
      // stale slots cannot alias the new epoch 1.
      std::fill(slots_.begin(), slots_.end(), std::uint64_t{0});
      epoch_ = 1;
    }
  }

  /// Records one agent at `key`; returns the occupancy of `key`
  /// *after* this insertion (1 for the first agent on the node).
  std::uint32_t add(std::uint64_t key) {
    std::uint64_t& slot = slots_[static_cast<std::size_t>(key)];
    const std::uint64_t tagged = static_cast<std::uint64_t>(epoch_) << 32;
    const std::uint64_t fresh =
        (slot >> 32) == epoch_ ? slot + 1 : tagged + 1;
    slot = fresh;
    return static_cast<std::uint32_t>(fresh);
  }

  /// Occupancy of `key` in the current round (0 if no agent there).
  std::uint32_t occupancy(std::uint64_t key) const {
    const std::uint64_t slot = slots_[static_cast<std::size_t>(key)];
    return (slot >> 32) == epoch_ ? static_cast<std::uint32_t>(slot) : 0;
  }

  /// Prefetch hint for the batched add/read loops.
  void prefetch(std::uint64_t key) const {
    __builtin_prefetch(&slots_[static_cast<std::size_t>(key)]);
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<std::uint64_t> slots_;
  std::uint32_t epoch_ = 0;
};

/// Policy for the vector engine's counter choice: direct addressing pays
/// off while the slot array stays cache-friendly and the O(num_nodes)
/// allocation is small next to the walk itself; beyond the cap (128 MiB
/// of slots) the hash counter's O(agents) memory wins.
inline bool use_dense_counter(std::uint64_t num_nodes) {
  return num_nodes >= 1 && num_nodes <= (std::uint64_t{1} << 24);
}

}  // namespace antdense::sim
