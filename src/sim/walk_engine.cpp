#include "sim/walk_engine.hpp"

#include <utility>

namespace antdense::sim {

void WalkConfig::validate() const {
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  ANTDENSE_CHECK(rounds >= 1, "need at least one round");
  ANTDENSE_CHECK(lazy_probability >= 0.0 && lazy_probability < 1.0,
                 "lazy probability must be in [0,1)");
}

CollisionObserver::CollisionObserver(std::uint32_t num_agents, Noise noise)
    : noise_(noise), counts_(num_agents, 0) {
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  // Resolved once at construction (on the caller thread, where ambient
  // telemetry is installed); the striped counter is then safe to add to
  // from any shard worker.  Counting happens on deterministic
  // post-noise values, so totals are thread-count-invariant.
  if (obs::Telemetry* tel = obs::ambient_telemetry();
      tel != nullptr && tel->metrics != nullptr) {
    collisions_tap_ = &tel->metrics->counter(
        "antdense_collisions_observed_total", {},
        "Collisions recorded by CollisionObserver (post sensing noise)");
  }
  ANTDENSE_CHECK(noise.detection_miss >= 0.0 && noise.detection_miss <= 1.0,
                 "miss probability must be in [0,1]");
  ANTDENSE_CHECK(noise.spurious >= 0.0 && noise.spurious <= 1.0,
                 "spurious probability must be in [0,1]");
  ANTDENSE_CHECK(noise.dropout >= 0.0 && noise.dropout <= 1.0,
                 "dropout probability must be in [0,1]");
}

PropertyObserver::PropertyObserver(std::vector<bool> has_property)
    : has_property_(std::move(has_property)),
      total_counts_(has_property_.size(), 0),
      property_counts_(has_property_.size(), 0),
      prop_counter_(has_property_.empty() ? 1 : has_property_.size()) {
  ANTDENSE_CHECK(!has_property_.empty(),
                 "property flags must cover at least one agent");
}

void PropertyObserver::begin_round(std::uint32_t) {
  prop_counter_.begin_round();
}

namespace detail {

void validate_checkpoints(const std::vector<std::uint32_t>& checkpoints) {
  ANTDENSE_CHECK(!checkpoints.empty(), "need at least one checkpoint");
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    ANTDENSE_CHECK(checkpoints[i] >= 1, "checkpoints are 1-based rounds");
    ANTDENSE_CHECK(i == 0 || checkpoints[i] > checkpoints[i - 1],
                   "checkpoints must be strictly increasing");
  }
}

}  // namespace detail

TrajectoryObserver::TrajectoryObserver(const CollisionObserver& source,
                                       std::uint32_t tracked_agents,
                                       std::vector<std::uint32_t> checkpoints)
    : source_(&source),
      tracked_(tracked_agents),
      checkpoints_(std::move(checkpoints)) {
  ANTDENSE_CHECK(tracked_agents >= 1 &&
                     tracked_agents <= source.counts().size(),
                 "tracked agent count out of range");
  detail::validate_checkpoints(checkpoints_);
  estimates_.assign(tracked_, {});
  for (auto& row : estimates_) {
    row.reserve(checkpoints_.size());
  }
}

void TrajectoryObserver::end_round(std::uint32_t round) {
  if (next_checkpoint_ >= checkpoints_.size() ||
      round != checkpoints_[next_checkpoint_]) {
    return;
  }
  const std::vector<std::uint64_t>& counts = source_->counts();
  for (std::uint32_t a = 0; a < tracked_; ++a) {
    estimates_[a].push_back(static_cast<double>(counts[a]) / round);
  }
  ++next_checkpoint_;
}

}  // namespace antdense::sim
