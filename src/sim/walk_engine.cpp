#include "sim/walk_engine.hpp"

#include <utility>

namespace antdense::sim {

void WalkConfig::validate() const {
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  ANTDENSE_CHECK(rounds >= 1, "need at least one round");
  ANTDENSE_CHECK(lazy_probability >= 0.0 && lazy_probability < 1.0,
                 "lazy probability must be in [0,1)");
}

CollisionObserver::CollisionObserver(std::uint32_t num_agents,
                                     Noise noise)
    : noise_(noise), counts_(num_agents, 0) {
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  ANTDENSE_CHECK(noise.detection_miss >= 0.0 && noise.detection_miss <= 1.0,
                 "miss probability must be in [0,1]");
  ANTDENSE_CHECK(noise.spurious >= 0.0 && noise.spurious <= 1.0,
                 "spurious probability must be in [0,1]");
}

void CollisionObserver::after_round(const RoundView& v) {
  ANTDENSE_ASSERT(v.num_agents == counts_.size(),
                  "observer sized for a different agent count");
  if (noise_.detection_miss == 0.0 && noise_.spurious == 0.0) {
    for (std::uint32_t i = 0; i < v.num_agents; ++i) {
      counts_[i] += v.counter.occupancy(v.keys[i]) - 1;
    }
    return;
  }
  for (std::uint32_t i = 0; i < v.num_agents; ++i) {
    std::uint64_t others = v.counter.occupancy(v.keys[i]) - 1;
    if (noise_.detection_miss > 0.0) {
      // Each partner is detected independently w.p. 1-p: one binomial
      // draw instead of the legacy per-partner Bernoulli loop.
      others = rng::binomial(v.gen, others, 1.0 - noise_.detection_miss);
    }
    if (noise_.spurious > 0.0 && rng::bernoulli(v.gen, noise_.spurious)) {
      ++others;
    }
    counts_[i] += others;
  }
}

PropertyObserver::PropertyObserver(std::vector<bool> has_property)
    : has_property_(std::move(has_property)),
      total_counts_(has_property_.size(), 0),
      property_counts_(has_property_.size(), 0),
      prop_counter_(has_property_.empty() ? 1 : has_property_.size()) {
  ANTDENSE_CHECK(!has_property_.empty(),
                 "property flags must cover at least one agent");
}

void PropertyObserver::after_round(const RoundView& v) {
  ANTDENSE_ASSERT(v.num_agents == has_property_.size(),
                  "observer sized for a different agent count");
  prop_counter_.begin_round();
  for (std::uint32_t i = 0; i < v.num_agents; ++i) {
    if (has_property_[i]) {
      prop_counter_.add(v.keys[i]);
    }
  }
  for (std::uint32_t i = 0; i < v.num_agents; ++i) {
    total_counts_[i] += v.counter.occupancy(v.keys[i]) - 1;
    const std::uint32_t prop_occ = prop_counter_.occupancy(v.keys[i]);
    property_counts_[i] += prop_occ - (has_property_[i] ? 1 : 0);
  }
}

namespace detail {

void validate_checkpoints(const std::vector<std::uint32_t>& checkpoints) {
  ANTDENSE_CHECK(!checkpoints.empty(), "need at least one checkpoint");
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    ANTDENSE_CHECK(checkpoints[i] >= 1, "checkpoints are 1-based rounds");
    ANTDENSE_CHECK(i == 0 || checkpoints[i] > checkpoints[i - 1],
                   "checkpoints must be strictly increasing");
  }
}

}  // namespace detail

TrajectoryObserver::TrajectoryObserver(const CollisionObserver& source,
                                       std::uint32_t tracked_agents,
                                       std::vector<std::uint32_t> checkpoints)
    : source_(&source),
      tracked_(tracked_agents),
      checkpoints_(std::move(checkpoints)) {
  ANTDENSE_CHECK(tracked_agents >= 1 &&
                     tracked_agents <= source.counts().size(),
                 "tracked agent count out of range");
  detail::validate_checkpoints(checkpoints_);
  estimates_.assign(tracked_, {});
  for (auto& row : estimates_) {
    row.reserve(checkpoints_.size());
  }
}

void TrajectoryObserver::after_round(const RoundView& v) {
  if (next_checkpoint_ >= checkpoints_.size() ||
      v.round != checkpoints_[next_checkpoint_]) {
    return;
  }
  const std::vector<std::uint64_t>& counts = source_->counts();
  for (std::uint32_t a = 0; a < tracked_; ++a) {
    estimates_[a].push_back(static_cast<double>(counts[a]) / v.round);
  }
  ++next_checkpoint_;
}

}  // namespace antdense::sim
