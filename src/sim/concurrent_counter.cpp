#include "sim/concurrent_counter.hpp"

#include <thread>

namespace antdense::sim {

namespace {

std::size_t table_capacity(std::size_t max_occupancy) {
  std::size_t cap = 4;
  while (cap < max_occupancy * 4) {
    cap *= 2;
  }
  return cap;
}

}  // namespace

ConcurrentCollisionCounter::ConcurrentCollisionCounter(
    std::size_t max_occupancy)
    : slots_(table_capacity(max_occupancy)),
      mask_(slots_.size() - 1),
      max_occupancy_(max_occupancy) {
  ANTDENSE_CHECK(max_occupancy >= 1, "counter needs room for one agent");
}

void ConcurrentCollisionCounter::begin_round() {
  ANTDENSE_CHECK(epoch_ + 1 < kBusyBit,
                 "round count exhausted the counter's epoch space");
  ++epoch_;
}

void ConcurrentCollisionCounter::add(std::uint64_t key) {
  const std::uint32_t epoch = epoch_;
  std::uint64_t idx = mix(key) & mask_;
  while (true) {
    Slot& slot = slots_[idx];
    std::uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == epoch) {
      // Claimed this round; the acquire above makes the claimer's key
      // write visible.
      if (slot.key == key) {
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      idx = (idx + 1) & mask_;
      continue;
    }
    if (state == (epoch | kBusyBit)) {
      // Another thread is mid-claim (three stores away) — but it may be
      // descheduled on an oversubscribed host, so yield rather than
      // burn the rest of a timeslice spinning.
      std::this_thread::yield();
      continue;
    }
    // Stale slot: claim it.  Success order is acquire so the retry path
    // after a failed CAS re-reads a coherent state.
    if (slot.state.compare_exchange_weak(state, epoch | kBusyBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      slot.key = key;
      slot.count.store(1, std::memory_order_relaxed);
      slot.state.store(epoch, std::memory_order_release);
      return;
    }
    // CAS failed: someone else claimed (or is claiming) it; re-examine.
  }
}

void ConcurrentCollisionCounter::add_serial(std::uint64_t key) {
  const std::uint32_t epoch = epoch_;
  std::uint64_t idx = mix(key) & mask_;
  while (true) {
    Slot& slot = slots_[idx];
    if (slot.state.load(std::memory_order_relaxed) == epoch) {
      if (slot.key == key) {
        slot.count.store(slot.count.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
        return;
      }
      idx = (idx + 1) & mask_;
      continue;
    }
    slot.state.store(epoch, std::memory_order_relaxed);
    slot.key = key;
    slot.count.store(1, std::memory_order_relaxed);
    return;
  }
}

std::uint32_t ConcurrentCollisionCounter::occupancy(std::uint64_t key) const {
  const std::uint32_t epoch = epoch_;
  std::uint64_t idx = mix(key) & mask_;
  while (true) {
    const Slot& slot = slots_[idx];
    if (slot.state.load(std::memory_order_acquire) != epoch) {
      return 0;  // never claimed this round: key is unoccupied
    }
    if (slot.key == key) {
      return slot.count.load(std::memory_order_relaxed);
    }
    idx = (idx + 1) & mask_;
  }
}

}  // namespace antdense::sim
