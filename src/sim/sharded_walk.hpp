// The sharded, multi-threaded execution model for Algorithm 1's round
// loop — the within-experiment counterpart of the campaign scheduler's
// experiment-level parallelism, built on the same principle: randomness
// is keyed by the unit of work, never by the executing thread.
//
// Agent state (positions, keys, observer accumulators) lives in shared
// structure-of-arrays vectors split into contiguous shards of
// `shard_size` agents.  Each shard owns a private generator seeded by
// rng::derive_stream(stream_seed, shard), and every round runs as two
// barrier-separated phases over the shards:
//
//   phase A (parallel): step the shard's agents from the shard stream,
//     recompute their keys, count them into the shared lock-free
//     ConcurrentCollisionCounter, and run observer fill hooks
//     (auxiliary counters, e.g. property occupancy);
//   phase B (parallel): observer after_round hooks read the now-
//     complete global occupancy and write their own agents' slice —
//     noise draws come from the shard stream, after the shard's phase-A
//     draws;
//   end of round (serial): end_round hooks take cross-shard snapshots
//     (trajectory checkpoints).
//
// Determinism contract: the output is a pure function of (stream_seed,
// WalkConfig, shard_size) — bit-identical for ANY thread count,
// including 1, because the shard decomposition and each shard's draw
// sequence never depend on scheduling.  Observer slices are laid out in
// shard order within the shared arrays, so the "merge" is free.
// tests/test_sharded_walk.cpp pins threads ∈ {1, 2, 8} equality across
// every topology family and workload.
//
// The sharded stream is deliberately NOT the single-stream engine's:
// run_walk at a fixed seed keeps its historical goldens, while
// run_walk_sharded defines its own (equally valid, Theorem-1-conforming)
// sample.  Pick per experiment via scenario::ScenarioSpec::engine.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/concurrent_counter.hpp"
#include "sim/density_sim.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/worker_pool.hpp"

namespace antdense::sim {

/// Deterministic decomposition of a population into contiguous shards.
/// The shard grain is part of the output contract (it decides which
/// stream steps which agent), so it is a parameter with a fixed default,
/// never a function of the machine.
struct ShardPlan {
  /// Default agents-per-shard: small enough that a 100k-agent walk
  /// exposes ~25-way parallelism, large enough that per-shard phase
  /// overhead is noise.
  static constexpr std::uint32_t kDefaultShardSize = 4096;

  std::uint32_t num_agents = 0;
  std::uint32_t shard_size = kDefaultShardSize;

  static ShardPlan make(std::uint32_t num_agents,
                        std::uint32_t shard_size = kDefaultShardSize);

  std::uint32_t num_shards() const {
    return (num_agents + shard_size - 1) / shard_size;
  }
  std::uint32_t begin(std::uint32_t shard) const {
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        num_agents, static_cast<std::uint64_t>(shard) * shard_size));
  }
  std::uint32_t end(std::uint32_t shard) const {
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        num_agents, (static_cast<std::uint64_t>(shard) + 1) * shard_size));
  }
};

/// Execution-resource knobs for the sharded engine.  `threads` never
/// changes results; `shard_size` does (it reassigns agents to streams).
struct ShardExec {
  unsigned threads = 0;  // worker threads; 0 = one per core
  std::uint32_t shard_size = ShardPlan::kDefaultShardSize;
};

/// Runs the sharded round loop.  Observers follow the same hook
/// vocabulary as run_walk (walk_engine.hpp) against ShardRoundView;
/// after_round/fill hooks fire once per shard per round, concurrently
/// across shards, and must only write state for agents in the view's
/// range.  Deterministic in (stream_seed, cfg, exec.shard_size) for any
/// exec.threads.
template <graph::Topology T, class... Obs>
  requires(WalkObserverForView<Obs, typename T::node_type, ShardRoundView> &&
           ...)
void run_walk_sharded(const T& topo, const WalkConfig& cfg,
                      std::uint64_t stream_seed, const ShardExec& exec,
                      const std::vector<typename T::node_type>*
                          initial_positions,
                      Obs&... observers) {
  cfg.validate();
  using node = typename T::node_type;
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == n_agents,
                 "initial positions must match agent count");

  const ShardPlan plan = ShardPlan::make(n_agents, exec.shard_size);
  const std::uint32_t n_shards = plan.num_shards();
  unsigned threads =
      exec.threads == 0 ? util::default_thread_count() : exec.threads;
  threads = std::min<unsigned>(threads, n_shards);

  std::vector<rng::Xoshiro256pp> gens;
  gens.reserve(n_shards);
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    gens.emplace_back(rng::derive_stream(stream_seed, s));
  }

  // Placement draws come from each shard's own stream, so placement is
  // as thread-count-invariant as the walk itself.
  std::vector<node> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (std::uint32_t s = 0; s < n_shards; ++s) {
      for (std::uint32_t i = plan.begin(s); i < plan.end(s); ++i) {
        pos[i] = topo.random_node(gens[s]);
      }
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  ConcurrentCollisionCounter counter(n_agents);
  const bool lazy = cfg.lazy_probability > 0.0;
  const bool concurrent = threads > 1;

#if ANTDENSE_DYNAMICS
  // Dynamics plumbing (see run_walk): mutation is SERIAL, between
  // rounds, on its own domain-tagged stream; move rewriting and masked
  // counting run per shard (const, deterministic, disjoint ranges), so
  // thread-count invariance holds with dynamics enabled.
  constexpr bool kDynCapable =
      std::is_same_v<typename T::node_type, std::uint64_t>;
  WorldDynamics* dyn = cfg.dynamics;
  if constexpr (!kDynCapable) {
    ANTDENSE_CHECK(dyn == nullptr,
                   "dynamics models require a uint64-node topology "
                   "(run via graph::AnyTopology)");
    dyn = nullptr;
  }
  const bool rewrites = dyn != nullptr && dyn->rewrites_moves();
  const std::uint8_t* const count_mask =
      dyn != nullptr ? dyn->count_mask() : nullptr;
  rng::Xoshiro256pp mut_gen(
      dyn != nullptr
          ? rng::derive_mutation_stream(stream_seed, dyn->model_seed())
          : 0);
  std::vector<node> prev(rewrites ? n_agents : 0);
#else
  ANTDENSE_CHECK(cfg.dynamics == nullptr,
                 "this build was configured with ANTDENSE_DYNAMICS=OFF");
#endif

  // Resolved on the caller thread; phase spans wrap the serial seams
  // around the two parallel phases (no new barriers), while striped
  // counter adds inside phase A come from the workers themselves.
  obs::EngineTap tap("sharded", {"step_count", "observe", "mutate"});

  std::uint32_t round = 0;
  const auto make_view = [&](std::uint32_t s) {
    return ShardRoundView{round,
                          plan.begin(s),
                          plan.end(s),
                          n_agents,
                          std::span<const std::uint64_t>(keys),
                          counter,
                          gens[s],
                          concurrent};
  };

  // Phase A: step, key, count, fill — everything that writes this
  // round's occupancy.
  const auto phase_a = [&](std::size_t shard) {
    const auto s = static_cast<std::uint32_t>(shard);
    const std::uint32_t b = plan.begin(s);
    const std::uint32_t e = plan.end(s);
    rng::Xoshiro256pp& gen = gens[s];
#if ANTDENSE_DYNAMICS
    if constexpr (kDynCapable) {
      if (rewrites) {
        // Disjoint slice per shard: the pre-step snapshot is race-free.
        std::copy(pos.begin() + b, pos.begin() + e, prev.begin() + b);
      }
    }
#endif
    if (lazy) {
      for (std::uint32_t i = b; i < e; ++i) {
        if (!rng::bernoulli(gen, cfg.lazy_probability)) {
          pos[i] = topo.random_neighbor(pos[i], gen);
        }
      }
    } else {
      graph::random_neighbors(
          topo, std::span<const node>(pos).subspan(b, e - b),
          std::span<node>(pos).subspan(b, e - b), gen);
    }
#if ANTDENSE_DYNAMICS
    if constexpr (kDynCapable) {
      if (rewrites) {
        dyn->rewrite_moves(prev, pos, b, e);
      }
    }
#endif
    graph::node_keys(topo, std::span<const node>(pos).subspan(b, e - b),
                     std::span<std::uint64_t>(keys).subspan(b, e - b));
#if ANTDENSE_DYNAMICS
    if (count_mask != nullptr) {
      if (concurrent) {
        for (std::uint32_t i = b; i < e; ++i) {
          if (count_mask[i] != 0) {
            counter.add(keys[i]);
          }
        }
      } else {
        for (std::uint32_t i = b; i < e; ++i) {
          if (count_mask[i] != 0) {
            counter.add_serial(keys[i]);
          }
        }
      }
    } else
#endif
    if (concurrent) {
      for (std::uint32_t i = b; i < e; ++i) {
        counter.add(keys[i]);
      }
    } else {
      for (std::uint32_t i = b; i < e; ++i) {
        counter.add_serial(keys[i]);
      }
    }
    // Per-worker sink: each pool worker lands on its own striped slot,
    // and the total is Σ shard sizes — exact for any thread count.
    tap.add_agent_steps(e - b);
    const ShardRoundView view = make_view(s);
    (detail::notify_fill(observers, view, std::span<const node>(pos)), ...);
  };

  // Phase B: observer reads of the completed round.
  const auto phase_b = [&](std::size_t shard) {
    const auto s = static_cast<std::uint32_t>(shard);
    const ShardRoundView view = make_view(s);
    (detail::notify_after_round(observers, view, std::span<const node>(pos)),
     ...);
  };

  // The pool outlives the round loop: each phase is a condvar wake, not
  // a thread spawn.  The single-thread path allocates no pool and runs
  // the same shards in the same order, so its output is identical.
  // The phase lambdas are wrapped in std::function once, here — doing
  // it per run() call would heap-allocate twice per round.
  std::unique_ptr<util::WorkerPool> pool;
  std::function<void(std::size_t)> phase_a_fn;
  std::function<void(std::size_t)> phase_b_fn;
  if (concurrent) {
    pool = std::make_unique<util::WorkerPool>(threads);
    phase_a_fn = phase_a;
    phase_b_fn = phase_b;
  }

  for (round = 1; round <= cfg.rounds; ++round) {
    counter.begin_round();
#if ANTDENSE_DYNAMICS
    if constexpr (kDynCapable) {
      if (dyn != nullptr && round > 1) {
        // Serial mutation tick between rounds, on the mutation stream —
        // identical for any thread count by construction.
        const obs::EngineTap::PhaseSpan phase(tap, 2);
        dyn->mutate(round, mut_gen, std::span<std::uint64_t>(pos));
      }
    }
#endif
    (detail::notify_begin_round(observers, round), ...);
    {
      const obs::EngineTap::PhaseSpan phase(tap, 0);
      if (concurrent) {
        pool->run(n_shards, phase_a_fn);
      } else {
        for (std::uint32_t s = 0; s < n_shards; ++s) {
          phase_a(s);
        }
      }
    }
    {
      const obs::EngineTap::PhaseSpan phase(tap, 1);
      if (concurrent) {
        pool->run(n_shards, phase_b_fn);
      } else {
        for (std::uint32_t s = 0; s < n_shards; ++s) {
          phase_b(s);
        }
      }
    }
    (detail::notify_end_round(observers, round), ...);
  }
  tap.add_rounds(cfg.rounds);
}

/// Algorithm 1 on the sharded engine: run_density_walk's contract
/// (same seed tag, same result packaging, same trailing `extra`
/// observer support) on the sharded stream.  Deterministic in
/// (seed, cfg, exec.shard_size) for any exec.threads.
template <graph::Topology T, typename... Extra>
DensityResult run_density_walk_sharded(
    const T& topo, const DensityConfig& cfg, std::uint64_t seed,
    const ShardExec& exec,
    const std::vector<typename T::node_type>* initial_positions = nullptr,
    Extra&... extra) {
  cfg.validate();
  CollisionObserver observer(
      cfg.num_agents, {.detection_miss = cfg.detection_miss_probability,
                       .spurious = cfg.spurious_collision_probability,
                       .dropout = cfg.observation_dropout_probability});
  run_walk_sharded(topo, cfg.walk_config(), rng::derive_seed(seed, 0x51u),
                   exec, initial_positions, observer, extra...);

  DensityResult result;
  result.collision_counts = observer.take_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

/// Section 5.2's two-class walk on the sharded engine.
template <graph::Topology T>
PropertyResult run_property_walk_sharded(const T& topo,
                                         const DensityConfig& cfg,
                                         const std::vector<bool>& has_property,
                                         std::uint64_t seed,
                                         const ShardExec& exec) {
  cfg.validate();
  ANTDENSE_CHECK(has_property.size() == cfg.num_agents,
                 "property flags must match agent count");
  PropertyObserver observer(has_property);
  run_walk_sharded(topo, cfg.walk_config(), rng::derive_seed(seed, 0x52u),
                   exec,
                   static_cast<const std::vector<typename T::node_type>*>(
                       nullptr),
                   observer);

  PropertyResult result;
  result.total_counts = observer.take_total_counts();
  result.property_counts = observer.take_property_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

}  // namespace antdense::sim
