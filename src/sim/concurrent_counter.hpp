// Thread-safe per-round node-occupancy counter: the sharded engine's
// counterpart of sim::CollisionCounter.
//
// Same design — open-addressing table keyed by the packed node key,
// epoch-stamped slots so begin_round() is O(1), capacity sized once for
// the agent population — but insertion is lock-free so all shards can
// count one round concurrently.  A slot is claimed with a CAS that
// briefly marks it busy, the key is written, and the claim is published
// with a release store; concurrent inserters of the same key then
// fetch_add the count.  Occupancy results are *exact and deterministic*
// for any interleaving (which physical slot a key lands in can vary,
// but linear probing finds it regardless, and counts are pure sums) —
// this is why the sharded engine's output does not depend on the thread
// count even though the table's memory layout does.
//
// Phase discipline (the engine's barriers enforce it):
//   begin_round()        — one thread, between rounds
//   add() / add_serial() — the fill phase; add() from any thread,
//                          add_serial() only when single-threaded (it
//                          uses plain load/store ops, so on x86 it costs
//                          the same as the non-atomic CollisionCounter)
//   occupancy()          — the observe phase; any thread, no writers
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace antdense::sim {

class ConcurrentCollisionCounter {
 public:
  /// `max_occupancy`: the most distinct keys added in any single round
  /// (the number of agents).  Allocates 4x rounded to a power of two.
  explicit ConcurrentCollisionCounter(std::size_t max_occupancy);

  /// Starts a new round; all previous counts become invisible (O(1)).
  /// Must not run concurrently with add()/occupancy().
  void begin_round();

  /// Records one agent at `key`.  Safe to call from any number of
  /// threads concurrently (but not concurrently with occupancy()).
  void add(std::uint64_t key);

  /// Single-threaded fast path: same effect as add(), plain-speed ops.
  void add_serial(std::uint64_t key);

  /// Occupancy of `key` in the current round (0 if no agent there).
  /// Must not run concurrently with add()/add_serial().
  std::uint32_t occupancy(std::uint64_t key) const;

  std::size_t capacity() const { return slots_.size(); }

 private:
  /// state holds the epoch that claimed the slot; kBusyBit is set only
  /// for the few instructions between claiming and publishing the key.
  static constexpr std::uint32_t kBusyBit = 0x80000000u;

  struct Slot {
    std::atomic<std::uint32_t> state{0};
    std::atomic<std::uint32_t> count{0};
    std::uint64_t key = 0;  // guarded by state's release/acquire pair
  };

  static std::uint64_t mix(std::uint64_t key) { return rng::mix64(key); }

  std::vector<Slot> slots_;
  std::uint64_t mask_;
  std::uint32_t epoch_ = 0;
  std::size_t max_occupancy_;
};

}  // namespace antdense::sim
