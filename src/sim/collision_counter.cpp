#include "sim/collision_counter.hpp"

#include <bit>

namespace antdense::sim {

CollisionCounter::CollisionCounter(std::size_t max_occupancy)
    : max_occupancy_(max_occupancy) {
  ANTDENSE_CHECK(max_occupancy >= 1, "counter needs capacity for >= 1 agent");
  const std::size_t wanted = std::bit_ceil(max_occupancy * 4);
  slots_.resize(wanted < 16 ? 16 : wanted);
  mask_ = slots_.size() - 1;
}

void CollisionCounter::begin_round() {
  ++epoch_;
  if (epoch_ == 0) {
    // Epoch counter wrapped (after 2^32 rounds): hard-reset tags so stale
    // slots cannot alias the new epoch 1.
    for (Slot& s : slots_) {
      s.epoch = 0;
    }
    epoch_ = 1;
  }
  inserted_this_round_ = 0;
}

std::uint32_t CollisionCounter::add(std::uint64_t key) {
  ANTDENSE_CHECK(epoch_ != 0, "begin_round() must be called before add()");
  std::uint64_t i = mix(key) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.epoch != epoch_) {
      ANTDENSE_ASSERT(inserted_this_round_ < max_occupancy_,
                      "more distinct keys than declared max occupancy");
      s.key = key;
      s.epoch = epoch_;
      s.count = 1;
      ++inserted_this_round_;
      return 1;
    }
    if (s.key == key) {
      return ++s.count;
    }
    i = (i + 1) & mask_;
  }
}

std::uint32_t CollisionCounter::occupancy(std::uint64_t key) const {
  if (epoch_ == 0) {
    return 0;
  }
  std::uint64_t i = mix(key) & mask_;
  while (true) {
    const Slot& s = slots_[i];
    if (s.epoch != epoch_) {
      return 0;
    }
    if (s.key == key) {
      return s.count;
    }
    i = (i + 1) & mask_;
  }
}

}  // namespace antdense::sim
