#include "sim/local_density.hpp"

#include <cstdlib>

namespace antdense::sim {

using graph::Torus2D;

std::uint64_t l1_ball_size(const Torus2D& torus, std::uint32_t radius) {
  ANTDENSE_CHECK(radius >= 1, "radius must be >= 1");
  // Require the ball not to wrap onto itself so the count is the plane
  // formula 2r^2 + 2r + 1 (all callers use neighborhood-scale radii).
  ANTDENSE_CHECK(2 * radius < torus.width() && 2 * radius < torus.height(),
                 "ball diameter must be smaller than both torus sides");
  const std::uint64_t r = radius;
  return 2 * r * r + 2 * r + 1;
}

std::uint64_t agents_within(const Torus2D& torus,
                            const std::vector<Torus2D::node_type>& positions,
                            Torus2D::node_type center, std::uint32_t radius,
                            bool exclude_one_at_center) {
  std::uint64_t count = 0;
  bool excluded = false;
  for (Torus2D::node_type p : positions) {
    if (torus.l1_distance(p, center) <= radius) {
      if (exclude_one_at_center && !excluded &&
          torus.key(p) == torus.key(center)) {
        excluded = true;
        continue;
      }
      ++count;
    }
  }
  return count;
}

double local_density(const Torus2D& torus,
                     const std::vector<Torus2D::node_type>& positions,
                     Torus2D::node_type center, std::uint32_t radius,
                     bool exclude_one_at_center) {
  const std::uint64_t ball = l1_ball_size(torus, radius);
  const std::uint64_t agents = agents_within(torus, positions, center,
                                             radius, exclude_one_at_center);
  return static_cast<double>(agents) / static_cast<double>(ball);
}

std::vector<double> per_agent_local_density(
    const Torus2D& torus, const std::vector<Torus2D::node_type>& positions,
    std::uint32_t radius) {
  std::vector<double> out;
  out.reserve(positions.size());
  for (Torus2D::node_type p : positions) {
    out.push_back(
        local_density(torus, positions, p, radius,
                      /*exclude_one_at_center=*/true));
  }
  return out;
}

}  // namespace antdense::sim
