#include "sim/local_density.hpp"

#include <cstdlib>

#include "rng/splitmix64.hpp"
#include "sim/walk_engine.hpp"

namespace antdense::sim {

using graph::Torus2D;

std::uint64_t l1_ball_size(const Torus2D& torus, std::uint32_t radius) {
  ANTDENSE_CHECK(radius >= 1, "radius must be >= 1");
  // Require the ball not to wrap onto itself so the count is the plane
  // formula 2r^2 + 2r + 1 (all callers use neighborhood-scale radii).
  ANTDENSE_CHECK(2 * radius < torus.width() && 2 * radius < torus.height(),
                 "ball diameter must be smaller than both torus sides");
  const std::uint64_t r = radius;
  return 2 * r * r + 2 * r + 1;
}

std::uint64_t agents_within(const Torus2D& torus,
                            std::span<const Torus2D::node_type> positions,
                            Torus2D::node_type center, std::uint32_t radius,
                            bool exclude_one_at_center) {
  std::uint64_t count = 0;
  bool excluded = false;
  for (Torus2D::node_type p : positions) {
    if (torus.l1_distance(p, center) <= radius) {
      if (exclude_one_at_center && !excluded &&
          torus.key(p) == torus.key(center)) {
        excluded = true;
        continue;
      }
      ++count;
    }
  }
  return count;
}

double local_density(const Torus2D& torus,
                     std::span<const Torus2D::node_type> positions,
                     Torus2D::node_type center, std::uint32_t radius,
                     bool exclude_one_at_center) {
  const std::uint64_t ball = l1_ball_size(torus, radius);
  const std::uint64_t agents = agents_within(torus, positions, center,
                                             radius, exclude_one_at_center);
  return static_cast<double>(agents) / static_cast<double>(ball);
}

std::vector<double> per_agent_local_density(
    const Torus2D& torus, std::span<const Torus2D::node_type> positions,
    std::uint32_t radius) {
  std::vector<double> out;
  out.reserve(positions.size());
  for (Torus2D::node_type p : positions) {
    out.push_back(
        local_density(torus, positions, p, radius,
                      /*exclude_one_at_center=*/true));
  }
  return out;
}

LocalDensityObserver::LocalDensityObserver(
    const graph::Torus2D& torus, std::uint32_t radius,
    std::vector<std::uint32_t> checkpoints)
    : torus_(&torus), radius_(radius), checkpoints_(std::move(checkpoints)) {
  // Reuses l1_ball_size's radius preconditions (>= 1, no self-wrap).
  l1_ball_size(torus, radius);
  detail::validate_checkpoints(checkpoints_);
  densities_.reserve(checkpoints_.size());
}

void LocalDensityObserver::after_round(
    const RoundView& v, std::span<const graph::Torus2D::node_type> positions) {
  if (next_checkpoint_ >= checkpoints_.size() ||
      v.round != checkpoints_[next_checkpoint_]) {
    return;
  }
  densities_.push_back(per_agent_local_density(*torus_, positions, radius_));
  ++next_checkpoint_;
}

LocalDensityProfile run_local_density_profile(
    const Torus2D& torus, std::uint32_t num_agents, std::uint32_t radius,
    const std::vector<std::uint32_t>& checkpoints, std::uint64_t seed,
    const std::vector<Torus2D::node_type>* initial_positions) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  LocalDensityObserver obs(torus, radius, checkpoints);

  WalkConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = checkpoints.back();
  run_walk(torus, cfg, rng::derive_seed(seed, 0x10Du), initial_positions,
           obs);

  LocalDensityProfile profile;
  profile.checkpoints = obs.checkpoints();
  profile.densities = obs.take_densities();
  profile.global_density = static_cast<double>(num_agents - 1) /
                           static_cast<double>(torus.num_nodes());
  return profile;
}

}  // namespace antdense::sim
