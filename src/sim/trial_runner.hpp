// Multi-trial Monte Carlo drivers.
//
// Two sampling disciplines:
//   - collect_all_agent_estimates: pools every agent's estimate from each
//     trial.  Matches the paper's multi-agent viewpoint (Theorem 1 holds
//     per agent; the union-bound remark covers all agents), but estimates
//     within one trial are mildly correlated.
//   - collect_single_agent_estimates: keeps only agent 0 per trial,
//     giving fully independent samples for tail estimation.
// Trials are parallelized; each trial's seed derives from its index, so
// output is identical for any thread count.  The _sharded variant pools
// the sharded engine's stream instead (walks run their shards serially
// inside each worker — by the sharded engine's thread-count invariance
// the estimates are identical to any within-walk parallelization).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/topology.hpp"
#include "obs/telemetry.hpp"
#include "rng/splitmix64.hpp"
#include "sim/density_sim.hpp"
#include "sim/sharded_walk.hpp"
#include "sim/vector_walk.hpp"
#include "util/parallel.hpp"

namespace antdense::sim {

namespace detail {

/// Shared trial fan-out: runs run_trial(trial) -> per-agent estimates in
/// parallel and concatenates the results in trial order.  When set,
/// `on_trial_done(trial)` fires from the worker that finished that trial
/// (concurrently across workers) — a progress tap, never part of the
/// result.
template <typename RunTrialFn>
std::vector<double> pool_trial_estimates(
    std::uint32_t trials, std::uint32_t num_agents, unsigned threads,
    RunTrialFn&& run_trial,
    const std::function<void(std::size_t)>& on_trial_done = {}) {
  std::vector<std::vector<double>> per_trial(trials);
  // Captured on the caller thread and re-installed per worker so
  // engine taps fire inside each trial (telemetry never affects the
  // estimates — trials are seeded by index, not by thread).
  obs::Telemetry* telemetry = obs::ambient_telemetry();
  util::parallel_for(
      trials,
      [&](std::size_t trial) {
        obs::ScopedTelemetry ambient(telemetry);
        per_trial[trial] = run_trial(trial);
        if (on_trial_done) {
          on_trial_done(trial);
        }
      },
      threads);
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(trials) * num_agents);
  for (const auto& v : per_trial) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

}  // namespace detail

template <graph::Topology T>
std::vector<double> collect_all_agent_estimates(
    const T& topo, const DensityConfig& cfg, std::uint64_t root_seed,
    std::uint32_t trials, unsigned threads = 0,
    const std::function<void(std::size_t)>& on_trial_done = {}) {
  return detail::pool_trial_estimates(
      trials, cfg.num_agents, threads,
      [&](std::size_t trial) {
        return run_density_walk(topo, cfg, rng::derive_seed(root_seed, trial))
            .estimates();
      },
      on_trial_done);
}

/// collect_all_agent_estimates on the sharded engine: same per-trial
/// seed derivation, sharded stream per walk.
template <graph::Topology T>
std::vector<double> collect_all_agent_estimates_sharded(
    const T& topo, const DensityConfig& cfg, std::uint64_t root_seed,
    std::uint32_t trials, unsigned threads = 0,
    const std::function<void(std::size_t)>& on_trial_done = {}) {
  return detail::pool_trial_estimates(
      trials, cfg.num_agents, threads,
      [&](std::size_t trial) {
        return run_density_walk_sharded(topo, cfg,
                                        rng::derive_seed(root_seed, trial),
                                        ShardExec{.threads = 1})
            .estimates();
      },
      on_trial_done);
}

/// collect_all_agent_estimates on the vector engine: same per-trial
/// seed derivation, wide-lane stream per walk.
template <graph::Topology T>
std::vector<double> collect_all_agent_estimates_vector(
    const T& topo, const DensityConfig& cfg, std::uint64_t root_seed,
    std::uint32_t trials, unsigned threads = 0,
    const std::function<void(std::size_t)>& on_trial_done = {}) {
  return detail::pool_trial_estimates(
      trials, cfg.num_agents, threads,
      [&](std::size_t trial) {
        return run_density_walk_vector(topo, cfg,
                                       rng::derive_seed(root_seed, trial))
            .estimates();
      },
      on_trial_done);
}

template <graph::Topology T>
std::vector<double> collect_single_agent_estimates(const T& topo,
                                                   const DensityConfig& cfg,
                                                   std::uint64_t root_seed,
                                                   std::uint32_t trials,
                                                   unsigned threads = 0) {
  std::vector<double> out(trials, 0.0);
  util::parallel_for(
      trials,
      [&](std::size_t trial) {
        const DensityResult r = run_density_walk(
            topo, cfg, rng::derive_seed(root_seed, trial));
        out[trial] =
            static_cast<double>(r.collision_counts[0]) / r.rounds;
      },
      threads);
  return out;
}

}  // namespace antdense::sim
