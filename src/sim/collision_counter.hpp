// Per-round node-occupancy counter: the engine's implementation of the
// paper's count(position) primitive.
//
// Open-addressing hash table keyed by the topology's packed node key.
// Instead of clearing between rounds, each slot carries the epoch (round
// number) it was written in; stale slots read as empty.  Capacity is
// sized once for the agent population (occupancy per round can never
// exceed the number of agents), so the table never rehashes and the hot
// path is one mix + short linear probe.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace antdense::sim {

class CollisionCounter {
 public:
  /// `max_occupancy`: the most distinct keys that will be added in any
  /// single round (the number of agents).  The table allocates 4x this
  /// rounded to a power of two, keeping load factor <= 1/4.
  explicit CollisionCounter(std::size_t max_occupancy);

  /// Starts a new round; all previous counts become invisible (O(1)).
  void begin_round();

  /// Records one agent at `key`; returns the occupancy of `key`
  /// *after* this insertion (1 for the first agent on the node).
  std::uint32_t add(std::uint64_t key);

  /// Occupancy of `key` in the current round (0 if no agent there).
  std::uint32_t occupancy(std::uint64_t key) const;

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t epoch = 0;
    std::uint32_t count = 0;
  };

  static std::uint64_t mix(std::uint64_t key) { return rng::mix64(key); }

  std::vector<Slot> slots_;
  std::uint64_t mask_;
  std::uint32_t epoch_ = 0;
  std::size_t max_occupancy_;
  std::size_t inserted_this_round_ = 0;
};

}  // namespace antdense::sim
