// The built-in WorldDynamics implementations (sim/dynamics.hpp) and the
// density observer that understands them.  Three perturbation models,
// spec grammar in scenario/dynamics_registry.cpp:
//
//   churn:p_edge=,p_fail=[,mean_down=][,seed=]
//     Edge churn + node failure on a time-varying overlay
//     (graph/time_varying.hpp).  Each mutation tick: down elements
//     recover w.p. 1/mean_down, Binomial(num_nodes, p_edge) random
//     edges go down, Binomial(num_nodes, p_fail) random nodes fail,
//     and walkers standing on failed nodes deflect to the
//     smallest-key surviving neighbor.  Moves across down edges or
//     onto failed nodes are rewritten deterministically after the
//     (unchanged) walk-stream step.
//
//   drift:p_death=,p_birth=[,seed=]
//     Agent birth/death for density estimation under population
//     drift.  Each tick every living slot dies w.p. p_death and every
//     dead slot is reborn w.p. p_birth at a uniform node.  Dead slots
//     keep stepping (the walk stream is never disturbed) but neither
//     count into round occupancy nor observe; a reborn slot is a new
//     anonymous agent whose estimate restarts at its birth round.
//
//   fade:p0=,step=[,seed=]
//     Per-observation sensing noise generalizing Section 6.1's
//     detection-miss: each agent carries its own miss probability,
//     initialized at p0 and performing a reflected +-step random walk
//     on [0,1] per mutation tick — heterogeneous, time-varying sensor
//     quality (cf. Hindes et al., stochastic sensing).
//
// All mutation randomness comes from the engine-provided mutation
// stream; observation draws (fade) come from the observer's view
// generator in agent order, which keeps every model thread-count-
// invariant under the sharded engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"
#include "graph/time_varying.hpp"
#include "obs/telemetry.hpp"
#include "rng/random.hpp"
#include "sim/density_sim.hpp"
#include "sim/dynamics.hpp"
#include "sim/sharded_walk.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Telemetry taps shared by the models: resolved from ambient telemetry
/// at construction (caller thread), null and free when disabled.
struct DynamicsInstruments {
  explicit DynamicsInstruments(const char* model);

  void add(obs::Counter* c, std::uint64_t n) const {
    if (c != nullptr) {
      c->add(n);
    }
  }

  obs::Counter* node_fails = nullptr;
  obs::Counter* edge_drops = nullptr;
  obs::Counter* recoveries = nullptr;
  obs::Counter* deaths = nullptr;
  obs::Counter* births = nullptr;
};

/// Edge churn + node failure (see file comment for the tick).
class ChurnDynamics final : public WorldDynamics {
 public:
  ChurnDynamics(const graph::AnyTopology& topo, double p_edge, double p_fail,
                std::uint32_t mean_down, std::uint64_t seed);

  std::string name() const override;
  std::uint64_t model_seed() const override { return seed_; }
  void mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
              std::span<std::uint64_t> positions) override;
  bool rewrites_moves() const override {
    return p_edge_ > 0.0 || p_fail_ > 0.0;
  }
  void rewrite_moves(std::span<const std::uint64_t> prev,
                     std::span<std::uint64_t> pos, std::uint32_t begin,
                     std::uint32_t end) const override;

  const graph::TimeVaryingWorld& world() const { return world_; }

 private:
  graph::TimeVaryingWorld world_;
  double p_edge_;
  double p_fail_;
  std::uint32_t mean_down_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> scratch_;  // mutate-phase only (serial)
  DynamicsInstruments instruments_;
};

/// Agent birth/death under population drift (see file comment).
class DriftDynamics final : public WorldDynamics {
 public:
  DriftDynamics(const graph::AnyTopology& topo, std::uint32_t num_agents,
                double p_death, double p_birth, std::uint64_t seed);

  std::string name() const override;
  std::uint64_t model_seed() const override { return seed_; }
  void mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
              std::span<std::uint64_t> positions) override;
  const std::uint8_t* count_mask() const override { return alive_.data(); }
  std::uint32_t birth_round(std::uint32_t slot) const override {
    return birth_round_[slot];
  }
  bool alive(std::uint32_t slot) const override {
    return alive_[slot] != 0;
  }

 private:
  const graph::AnyTopology* topo_;
  double p_death_;
  double p_birth_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> birth_round_;
  DynamicsInstruments instruments_;
};

/// Per-agent time-varying detection-miss probability (see file comment).
class FadeDynamics final : public WorldDynamics {
 public:
  FadeDynamics(std::uint32_t num_agents, double p0, double step,
               std::uint64_t seed);

  std::string name() const override;
  std::uint64_t model_seed() const override { return seed_; }
  void mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
              std::span<std::uint64_t> positions) override;
  bool transforms_observations() const override { return true; }
  std::uint64_t observe(std::uint32_t slot, std::uint64_t others,
                        rng::Xoshiro256pp& gen) const override {
    const double miss = miss_[slot];
    if (miss <= 0.0 || others == 0) {
      return others;
    }
    return rng::binomial(gen, others, 1.0 - miss);
  }

  const std::vector<double>& miss_probabilities() const { return miss_; }

 private:
  double p0_;
  double step_;
  std::uint64_t seed_;
  std::vector<double> miss_;
};

/// CollisionObserver's dynamics-aware sibling: per-slot cumulative
/// counts plus the bookkeeping dynamic worlds need — dead slots are
/// skipped, a slot whose birth round changed restarts from zero, and
/// raw partner counts run through the model's observation transform
/// before the spec-level sensing noise (dropout first, then miss, then
/// spurious — the same draw order as CollisionObserver).  Estimates are
/// counts / rounds-observed for the slots alive at the end of the walk.
class DynamicCollisionObserver {
 public:
  DynamicCollisionObserver(std::uint32_t num_agents,
                           const WorldDynamics& model,
                           CollisionObserver::Noise noise);

  template <typename View>
  void after_round(const View& v) {
    ANTDENSE_ASSERT(v.num_agents == counts_.size(),
                    "observer sized for a different agent count");
    const bool transforms = model_->transforms_observations();
    std::uint64_t observed = 0;
    for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
      const std::uint32_t born = model_->birth_round(i);
      if (born != seen_birth_[i]) {
        seen_birth_[i] = born;
        counts_[i] = 0;
        observed_rounds_[i] = 0;
      }
      if (!model_->alive(i)) {
        continue;
      }
      ++observed_rounds_[i];
      if (noise_.dropout > 0.0 && rng::bernoulli(v.gen, noise_.dropout)) {
        continue;  // reading lost entirely; the round still elapsed
      }
      std::uint64_t others = v.counter.occupancy(v.keys[i]) - 1;
      if (transforms) {
        others = model_->observe(i, others, v.gen);
      }
      if (noise_.detection_miss > 0.0) {
        others = rng::binomial(v.gen, others, 1.0 - noise_.detection_miss);
      }
      if (noise_.spurious > 0.0 && rng::bernoulli(v.gen, noise_.spurious)) {
        ++others;
      }
      counts_[i] += others;
      observed += others;
    }
    if (collisions_tap_ != nullptr) {
      collisions_tap_->add(observed);
    }
  }

  /// Algorithm-1 estimates for the living population: counts_i /
  /// rounds-observed_i over slots alive with at least one observed
  /// round.  (Dead slots carry stale counts and are excluded.)
  std::vector<double> estimates() const;

  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  const WorldDynamics* model_;
  CollisionObserver::Noise noise_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint32_t> observed_rounds_;
  std::vector<std::uint32_t> seen_birth_;
  obs::Counter* collisions_tap_ = nullptr;
};

/// Algorithm 1 with a dynamic world on the single-stream engine: the
/// walk stream is the exact run_density_walk stream (tag 0x51); the
/// model mutates between rounds from its own derived stream.  Returns
/// the living population's estimates.
template <typename... Extra>
std::vector<double> run_dynamic_density_walk(const graph::AnyTopology& topo,
                                             const DensityConfig& cfg,
                                             WorldDynamics& model,
                                             std::uint64_t seed,
                                             Extra&... extra) {
  cfg.validate();
  DynamicCollisionObserver observer(
      cfg.num_agents, model,
      {.detection_miss = cfg.detection_miss_probability,
       .spurious = cfg.spurious_collision_probability,
       .dropout = cfg.observation_dropout_probability});
  WalkConfig wcfg = cfg.walk_config();
  wcfg.dynamics = &model;
  run_walk(topo, wcfg, rng::derive_seed(seed, 0x51u),
           static_cast<const std::vector<std::uint64_t>*>(nullptr), observer,
           extra...);
  return observer.estimates();
}

/// run_dynamic_density_walk on the sharded engine (its own stream, as
/// run_density_walk_sharded): bit-identical for any exec.threads.
template <typename... Extra>
std::vector<double> run_dynamic_density_walk_sharded(
    const graph::AnyTopology& topo, const DensityConfig& cfg,
    WorldDynamics& model, std::uint64_t seed, const ShardExec& exec,
    Extra&... extra) {
  cfg.validate();
  DynamicCollisionObserver observer(
      cfg.num_agents, model,
      {.detection_miss = cfg.detection_miss_probability,
       .spurious = cfg.spurious_collision_probability,
       .dropout = cfg.observation_dropout_probability});
  WalkConfig wcfg = cfg.walk_config();
  wcfg.dynamics = &model;
  run_walk_sharded(topo, wcfg, rng::derive_seed(seed, 0x51u), exec,
                   static_cast<const std::vector<std::uint64_t>*>(nullptr),
                   observer, extra...);
  return observer.estimates();
}

}  // namespace antdense::sim
