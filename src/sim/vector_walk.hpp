// The vector walk engine — the third identity-bearing engine variant
// (engine=vector beside single and sharded): the same synchronous round
// structure as run_walk, driven by wide batched randomness and
// vectorized kernels instead of per-agent scalar generator calls.
//
// What changes relative to engine=single, and why it re-goldens:
//   - The draw source is a rng::WideStream — kWideLanes xoshiro256++
//     streams emitted lane-interleaved (rng/xoshiro_wide.hpp) — so the
//     word sequence differs from the single engine's one scalar stream
//     by construction.  Like sharded's per-shard streams in PR 5, this
//     is an *identity* choice: engine=vector has its own golden streams
//     (tests/test_vector_walk.cpp), and the single/sharded streams are
//     untouched.
//   - Stepping goes through graph::vector_step: branchless word kernels
//     for ring/torus2d (AVX2 when compiled in), batched Lemire rejection
//     for the pick families, the topology's own bulk sampler otherwise.
//     All of it is sequential-equivalent over the WideStream, so the
//     vector stream is *defined* by "per-agent draws from the wide
//     stream" and every acceleration path is unobservable.
//   - Occupancy counting uses the direct-addressed DenseCollisionCounter
//     when the substrate's key space is small enough (one indexed load
//     instead of mix+probe), falling back to the hash CollisionCounter
//     beyond the cap; counts are identical either way.
//   - Observer noise draws come from a dedicated scalar generator at a
//     domain-tagged seed (kVectorObserverTag), keeping the
//     Xoshiro256pp-typed view contract and the movement stream cleanly
//     separated.
//
// Observer hooks, pack order, and view semantics are exactly
// run_walk's; the view's counter type is whichever counter the walk
// selected, so observers templated on the view (all in-tree observers)
// work unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/topology.hpp"
#include "graph/vector_step.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "rng/xoshiro_wide.hpp"
#include "sim/collision_counter.hpp"
#include "sim/dense_counter.hpp"
#include "sim/density_sim.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Domain-separation tag ("VECOBSRV") for the vector engine's observer
/// noise generator, disjoint from the movement lanes (kVectorLaneTag).
inline constexpr std::uint64_t kVectorObserverTag = 0x5645434F42535256ULL;

/// The vector engine's view when the dense counter is selected.
using VectorRoundView = BasicRoundView<DenseCollisionCounter>;

/// Execution knobs for the vector engine.  Unlike `engine` itself these
/// are not identity-bearing — results are independent of them.
struct VectorExec {
  /// Forces the hash CollisionCounter even when the dense counter would
  /// apply; the dense/hash equality tests run both sides through this.
  bool force_hash_counter = false;
};

namespace detail {

/// Counter fill with a prefetch lookahead: the keys are random draws, so
/// each add is a dependent random access the hardware prefetcher cannot
/// predict.
inline void fill_counter(DenseCollisionCounter& counter,
                         std::span<const std::uint64_t> keys) {
  constexpr std::size_t kAhead = 8;
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      counter.prefetch(keys[i + kAhead]);
    }
    counter.add(keys[i]);
  }
}

inline void fill_counter(CollisionCounter& counter,
                         std::span<const std::uint64_t> keys) {
  for (const std::uint64_t key : keys) {
    counter.add(key);
  }
}

template <typename Counter, graph::Topology T, class... Obs>
void run_walk_vector_impl(
    const T& topo, const WalkConfig& cfg, std::uint64_t stream_seed,
    Counter& counter,
    const std::vector<typename T::node_type>* initial_positions,
    Obs&... observers) {
  using node = typename T::node_type;
  const std::uint32_t n_agents = cfg.num_agents;
  // Defense in depth behind the spec-validation fail-fast
  // (scenario::ScenarioSpec::validate rejects engine=vector + dynamics):
  // the wide-lane loop has no mutation phase.
  ANTDENSE_CHECK(cfg.dynamics == nullptr,
                 "the vector engine does not support dynamics models; "
                 "use engine=single or engine=sharded");

  rng::WideStream stream(stream_seed);
  rng::Xoshiro256pp obs_gen(rng::derive_seed(stream_seed, kVectorObserverTag));

  std::vector<node> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (auto& p : pos) {
      p = topo.random_node(stream);
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  const bool lazy = cfg.lazy_probability > 0.0;

  obs::EngineTap tap("vector", {"step", "count", "observe"});
  for (std::uint32_t r = 1; r <= cfg.rounds; ++r) {
    counter.begin_round();
    {
      const obs::EngineTap::PhaseSpan phase(tap, 0);
      if (lazy) {
        // Interleaved stay/step draws, as in the scalar engines — lazy
        // walks keep sequential consumption so the stream stays one
        // flat sequence regardless of who moved.
        for (std::uint32_t i = 0; i < n_agents; ++i) {
          if (!rng::bernoulli(stream, cfg.lazy_probability)) {
            pos[i] = topo.random_neighbor(pos[i], stream);
          }
        }
      } else {
        graph::vector_step(topo, std::span<node>(pos), stream);
      }
    }
    {
      const obs::EngineTap::PhaseSpan phase(tap, 1);
      graph::node_keys(topo, std::span<const node>(pos),
                       std::span<std::uint64_t>(keys));
      fill_counter(counter, keys);
    }
    const BasicRoundView<Counter> view{r,
                                       0,
                                       n_agents,
                                       n_agents,
                                       std::span<const std::uint64_t>(keys),
                                       counter,
                                       obs_gen,
                                       /*concurrent_fill=*/false};
    const std::span<const node> positions(pos);
    {
      const obs::EngineTap::PhaseSpan phase(tap, 2);
      (notify_begin_round(observers, r), ...);
      (notify_fill(observers, view, positions), ...);
      (notify_after_round(observers, view, positions), ...);
      (notify_end_round(observers, r), ...);
    }
  }
  tap.add_rounds(cfg.rounds);
  tap.add_agent_steps(static_cast<std::uint64_t>(cfg.rounds) * n_agents);
}

}  // namespace detail

/// Runs the vector engine's round loop: uniform i.i.d. placement (or the
/// caller's positions), cfg.rounds vectorized steps, occupancy counting
/// through the per-substrate counter choice, observer hooks in pack
/// order.  Deterministic in `stream_seed` and independent of VectorExec,
/// AVX2 availability, and kernel specialization.
template <graph::Topology T, class... Obs>
  requires(WalkObserverForView<Obs, typename T::node_type,
                               BasicRoundView<CollisionCounter>> &&
           ...) &&
          (WalkObserverForView<Obs, typename T::node_type,
                               BasicRoundView<DenseCollisionCounter>> &&
           ...)
void run_walk_vector(
    const T& topo, const WalkConfig& cfg, std::uint64_t stream_seed,
    VectorExec exec,
    const std::vector<typename T::node_type>* initial_positions,
    Obs&... observers) {
  cfg.validate();
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == cfg.num_agents,
                 "initial positions must match agent count");
  if (!exec.force_hash_counter && use_dense_counter(topo.num_nodes())) {
    DenseCollisionCounter counter(topo.num_nodes());
    detail::run_walk_vector_impl(topo, cfg, stream_seed, counter,
                                 initial_positions, observers...);
  } else {
    CollisionCounter counter(cfg.num_agents);
    detail::run_walk_vector_impl(topo, cfg, stream_seed, counter,
                                 initial_positions, observers...);
  }
}

/// run_density_walk on the vector engine: same 0x51 stream tag, same
/// observer, same trailing `extra` observer support, vector movement
/// stream.
template <graph::Topology T, typename... Extra>
DensityResult run_density_walk_vector(
    const T& topo, const DensityConfig& cfg, std::uint64_t seed,
    VectorExec exec = {},
    const std::vector<typename T::node_type>* initial_positions = nullptr,
    Extra&... extra) {
  cfg.validate();
  CollisionObserver observer(
      cfg.num_agents, {.detection_miss = cfg.detection_miss_probability,
                       .spurious = cfg.spurious_collision_probability,
                       .dropout = cfg.observation_dropout_probability});
  run_walk_vector(topo, cfg.walk_config(), rng::derive_seed(seed, 0x51u),
                  exec, initial_positions, observer, extra...);

  DensityResult result;
  result.collision_counts = observer.take_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

/// run_property_walk on the vector engine: same 0x52 stream tag.
template <graph::Topology T>
PropertyResult run_property_walk_vector(const T& topo,
                                        const DensityConfig& cfg,
                                        const std::vector<bool>& has_property,
                                        std::uint64_t seed,
                                        VectorExec exec = {}) {
  cfg.validate();
  ANTDENSE_CHECK(has_property.size() == cfg.num_agents,
                 "property flags must match agent count");
  PropertyObserver observer(has_property);
  run_walk_vector(
      topo, cfg.walk_config(), rng::derive_seed(seed, 0x52u), exec,
      static_cast<const std::vector<typename T::node_type>*>(nullptr),
      observer);

  PropertyResult result;
  result.total_counts = observer.take_total_counts();
  result.property_counts = observer.take_property_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

}  // namespace antdense::sim
