#include "sim/sharded_walk.hpp"

namespace antdense::sim {

ShardPlan ShardPlan::make(std::uint32_t num_agents,
                          std::uint32_t shard_size) {
  ANTDENSE_CHECK(num_agents >= 1, "shard plan needs at least one agent");
  ANTDENSE_CHECK(shard_size >= 1, "shard size must be at least one agent");
  ShardPlan plan;
  plan.num_agents = num_agents;
  plan.shard_size = shard_size;
  return plan;
}

}  // namespace antdense::sim
