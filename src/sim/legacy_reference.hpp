// Frozen pre-engine round loops, kept verbatim from the original
// density_sim.hpp implementation.
//
// These are NOT part of the public API.  They exist so that
//   - tests/test_walk_engine.cpp can assert the observer-based WalkEngine
//     reproduces the original collision counts bit-for-bit at fixed seeds
//     (differential testing), and
//   - bench/bench_engine.cpp can report legacy-vs-engine ns/agent-round.
// Do not "improve" these loops: their value is that they never change.
// The live implementations are thin wrappers over sim/walk_engine.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "sim/density_sim.hpp"
#include "util/check.hpp"

namespace antdense::sim::legacy {

/// The original run_density_walk: per-agent random_neighbor calls and a
/// per-partner Bernoulli rejection loop for detection misses.
template <graph::Topology T>
DensityResult run_density_walk(
    const T& topo, const DensityConfig& cfg, std::uint64_t seed,
    const std::vector<typename T::node_type>* initial_positions = nullptr) {
  cfg.validate();
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == n_agents,
                 "initial positions must match agent count");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x51u));
  std::vector<typename T::node_type> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (auto& p : pos) {
      p = topo.random_node(gen);
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  std::vector<std::uint64_t> counts(n_agents, 0);
  CollisionCounter counter(n_agents);

  const bool lazy = cfg.lazy_probability > 0.0;
  const bool noisy = cfg.detection_miss_probability > 0.0 ||
                     cfg.spurious_collision_probability > 0.0;

  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      if (!lazy || !rng::bernoulli(gen, cfg.lazy_probability)) {
        pos[i] = topo.random_neighbor(pos[i], gen);
      }
      keys[i] = topo.key(pos[i]);
      counter.add(keys[i]);
    }
    if (!noisy) {
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        counts[i] += counter.occupancy(keys[i]) - 1;
      }
    } else {
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        std::uint32_t others = counter.occupancy(keys[i]) - 1;
        if (cfg.detection_miss_probability > 0.0) {
          std::uint32_t detected = 0;
          for (std::uint32_t j = 0; j < others; ++j) {
            if (!rng::bernoulli(gen, cfg.detection_miss_probability)) {
              ++detected;
            }
          }
          others = detected;
        }
        if (cfg.spurious_collision_probability > 0.0 &&
            rng::bernoulli(gen, cfg.spurious_collision_probability)) {
          ++others;
        }
        counts[i] += others;
      }
    }
  }

  DensityResult result;
  result.collision_counts = std::move(counts);
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

/// The original run_property_walk (never applied laziness or noise).
template <graph::Topology T>
PropertyResult run_property_walk(const T& topo, const DensityConfig& cfg,
                                 const std::vector<bool>& has_property,
                                 std::uint64_t seed) {
  cfg.validate();
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(has_property.size() == n_agents,
                 "property flags must match agent count");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x52u));
  std::vector<typename T::node_type> pos(n_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }

  std::vector<std::uint64_t> keys(n_agents);
  PropertyResult result;
  result.total_counts.assign(n_agents, 0);
  result.property_counts.assign(n_agents, 0);
  CollisionCounter all_counter(n_agents);
  CollisionCounter prop_counter(n_agents);

  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    all_counter.begin_round();
    prop_counter.begin_round();
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      all_counter.add(keys[i]);
      if (has_property[i]) {
        prop_counter.add(keys[i]);
      }
    }
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      result.total_counts[i] += all_counter.occupancy(keys[i]) - 1;
      const std::uint32_t prop_occ = prop_counter.occupancy(keys[i]);
      result.property_counts[i] += prop_occ - (has_property[i] ? 1 : 0);
    }
  }
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

}  // namespace antdense::sim::legacy
