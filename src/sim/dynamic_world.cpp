#include "sim/dynamic_world.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace antdense::sim {

DynamicsInstruments::DynamicsInstruments(const char* model) {
  obs::Telemetry* tel = obs::ambient_telemetry();
  if (tel == nullptr || tel->metrics == nullptr) {
    return;
  }
  obs::MetricsRegistry& reg = *tel->metrics;
  const auto tap = [&](const char* event) -> obs::Counter* {
    return &reg.counter(
        "antdense_dynamics_events_total",
        obs::Labels{{"model", model}, {"event", event}},
        "World-mutation events applied by the dynamics layer");
  };
  node_fails = tap("node_fail");
  edge_drops = tap("edge_drop");
  recoveries = tap("recovery");
  deaths = tap("death");
  births = tap("birth");
}

ChurnDynamics::ChurnDynamics(const graph::AnyTopology& topo, double p_edge,
                             double p_fail, std::uint32_t mean_down,
                             std::uint64_t seed)
    : world_(topo),
      p_edge_(p_edge),
      p_fail_(p_fail),
      mean_down_(mean_down),
      seed_(seed),
      instruments_("churn") {
  ANTDENSE_CHECK(p_edge >= 0.0 && p_edge <= 1.0,
                 "churn p_edge must be in [0,1]");
  ANTDENSE_CHECK(p_fail >= 0.0 && p_fail <= 1.0,
                 "churn p_fail must be in [0,1]");
  ANTDENSE_CHECK(mean_down >= 1, "churn mean_down must be >= 1");
}

std::string ChurnDynamics::name() const {
  return "churn:p_edge=" + util::format_shortest(p_edge_) +
         ",p_fail=" + util::format_shortest(p_fail_) +
         ",mean_down=" + std::to_string(mean_down_) +
         ",seed=" + std::to_string(seed_);
}

void ChurnDynamics::mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
                           std::span<std::uint64_t> positions) {
  (void)round;
  const graph::AnyTopology& base = world_.base();

  const std::size_t down_before =
      world_.num_failed_nodes() + world_.num_down_edges();
  world_.recover(1.0 / mean_down_, mut_gen);
  instruments_.add(instruments_.recoveries,
                   down_before -
                       (world_.num_failed_nodes() + world_.num_down_edges()));

  if (p_edge_ > 0.0) {
    const std::uint64_t churn_events =
        rng::binomial(mut_gen, base.num_nodes(), p_edge_);
    std::uint64_t dropped = 0;
    for (std::uint64_t j = 0; j < churn_events; ++j) {
      const std::uint64_t u = base.random_node(mut_gen);
      scratch_.clear();
      base.append_neighbors(u, scratch_);
      if (scratch_.empty()) {
        continue;
      }
      const std::uint64_t v =
          scratch_[rng::uniform_below(mut_gen, scratch_.size())];
      if (v == u) {
        continue;
      }
      dropped += world_.drop_edge(u, v) ? 1 : 0;
    }
    instruments_.add(instruments_.edge_drops, dropped);
  }

  if (p_fail_ > 0.0) {
    const std::uint64_t fail_events =
        rng::binomial(mut_gen, base.num_nodes(), p_fail_);
    std::uint64_t failed = 0;
    for (std::uint64_t j = 0; j < fail_events; ++j) {
      failed += world_.fail_node(base.random_node(mut_gen)) ? 1 : 0;
    }
    instruments_.add(instruments_.node_fails, failed);
  }

  // Evict walkers standing on failed nodes (including long-failed nodes
  // an earlier deflection could not escape).  Deterministic: consumes no
  // randomness.
  if (world_.num_failed_nodes() > 0) {
    for (std::uint64_t& p : positions) {
      if (world_.node_failed(base.key(p))) {
        p = world_.deflect(p, scratch_);
      }
    }
  }
}

void ChurnDynamics::rewrite_moves(std::span<const std::uint64_t> prev,
                                  std::span<std::uint64_t> pos,
                                  std::uint32_t begin,
                                  std::uint32_t end) const {
  if (world_.num_failed_nodes() == 0 && world_.num_down_edges() == 0) {
    return;
  }
  const graph::AnyTopology& base = world_.base();
  std::vector<std::uint64_t> scratch;  // per call: rewrites run per shard
  for (std::uint32_t i = begin; i < end; ++i) {
    if (pos[i] == prev[i]) {
      continue;  // lazy stay — always allowed
    }
    const std::uint64_t from_key = base.key(prev[i]);
    const std::uint64_t to_key = base.key(pos[i]);
    if (world_.edge_down(from_key, to_key)) {
      pos[i] = prev[i];  // the traversed edge is down: the move fails
      continue;
    }
    if (world_.node_failed(to_key)) {
      pos[i] = world_.deflect(prev[i], scratch);
    }
  }
}

DriftDynamics::DriftDynamics(const graph::AnyTopology& topo,
                             std::uint32_t num_agents, double p_death,
                             double p_birth, std::uint64_t seed)
    : topo_(&topo),
      p_death_(p_death),
      p_birth_(p_birth),
      seed_(seed),
      alive_(num_agents, 1),
      birth_round_(num_agents, 1),
      instruments_("drift") {
  ANTDENSE_CHECK(num_agents >= 1, "drift needs at least one agent slot");
  ANTDENSE_CHECK(p_death >= 0.0 && p_death <= 1.0,
                 "drift p_death must be in [0,1]");
  ANTDENSE_CHECK(p_birth >= 0.0 && p_birth <= 1.0,
                 "drift p_birth must be in [0,1]");
}

std::string DriftDynamics::name() const {
  return "drift:p_death=" + util::format_shortest(p_death_) +
         ",p_birth=" + util::format_shortest(p_birth_) +
         ",seed=" + std::to_string(seed_);
}

void DriftDynamics::mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
                           std::span<std::uint64_t> positions) {
  if (p_death_ == 0.0 && p_birth_ == 0.0) {
    return;
  }
  ANTDENSE_ASSERT(positions.size() == alive_.size(),
                  "drift model sized for a different agent count");
  std::uint64_t deaths = 0;
  std::uint64_t births = 0;
  for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
    if (alive_[slot] != 0) {
      if (rng::bernoulli(mut_gen, p_death_)) {
        alive_[slot] = 0;
        ++deaths;
      }
    } else if (rng::bernoulli(mut_gen, p_birth_)) {
      alive_[slot] = 1;
      birth_round_[slot] = round;
      positions[slot] = topo_->random_node(mut_gen);
      ++births;
    }
  }
  instruments_.add(instruments_.deaths, deaths);
  instruments_.add(instruments_.births, births);
}

FadeDynamics::FadeDynamics(std::uint32_t num_agents, double p0, double step,
                           std::uint64_t seed)
    : p0_(p0), step_(step), seed_(seed), miss_(num_agents, p0) {
  ANTDENSE_CHECK(num_agents >= 1, "fade needs at least one agent");
  ANTDENSE_CHECK(p0 >= 0.0 && p0 <= 1.0, "fade p0 must be in [0,1]");
  ANTDENSE_CHECK(step >= 0.0 && step <= 1.0, "fade step must be in [0,1]");
}

std::string FadeDynamics::name() const {
  return "fade:p0=" + util::format_shortest(p0_) +
         ",step=" + util::format_shortest(step_) +
         ",seed=" + std::to_string(seed_);
}

void FadeDynamics::mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
                          std::span<std::uint64_t> positions) {
  (void)round;
  (void)positions;
  if (step_ == 0.0) {
    return;
  }
  for (double& p : miss_) {
    // Reflected +-step random walk on [0,1]: sensor quality drifts but
    // never saturates into an absorbing state.
    p += rng::bernoulli(mut_gen, 0.5) ? step_ : -step_;
    if (p < 0.0) {
      p = -p;
    }
    if (p > 1.0) {
      p = 2.0 - p;
    }
    p = std::clamp(p, 0.0, 1.0);
  }
}

DynamicCollisionObserver::DynamicCollisionObserver(
    std::uint32_t num_agents, const WorldDynamics& model,
    CollisionObserver::Noise noise)
    : model_(&model),
      noise_(noise),
      counts_(num_agents, 0),
      observed_rounds_(num_agents, 0),
      seen_birth_(num_agents, 1) {
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  ANTDENSE_CHECK(noise.detection_miss >= 0.0 && noise.detection_miss <= 1.0,
                 "miss probability must be in [0,1]");
  ANTDENSE_CHECK(noise.spurious >= 0.0 && noise.spurious <= 1.0,
                 "spurious probability must be in [0,1]");
  ANTDENSE_CHECK(noise.dropout >= 0.0 && noise.dropout <= 1.0,
                 "dropout probability must be in [0,1]");
  if (obs::Telemetry* tel = obs::ambient_telemetry();
      tel != nullptr && tel->metrics != nullptr) {
    collisions_tap_ = &tel->metrics->counter(
        "antdense_collisions_observed_total", {},
        "Collisions recorded by CollisionObserver (post sensing noise)");
  }
}

std::vector<double> DynamicCollisionObserver::estimates() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (model_->alive(static_cast<std::uint32_t>(i)) &&
        observed_rounds_[i] > 0) {
      out.push_back(static_cast<double>(counts_[i]) /
                    static_cast<double>(observed_rounds_[i]));
    }
  }
  return out;
}

}  // namespace antdense::sim
