// Running-estimate trajectories: Algorithm 1 is an *anytime* algorithm —
// the estimate c/r is valid after every round r.  This driver composes
// the shared walk engine with a CollisionObserver (accumulates counts)
// and a TrajectoryObserver (snapshots running estimates at checkpoints),
// powering the convergence-profile experiments and the quorum-sensing
// example's decision-latency analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"

namespace antdense::sim {

struct TrajectoryResult {
  /// checkpoints[i] = round number of the i-th snapshot (1-based rounds).
  std::vector<std::uint32_t> checkpoints;
  /// estimates[a][i] = tracked agent a's running estimate c/r at
  /// checkpoint i.
  std::vector<std::vector<double>> estimates;
  double true_density = 0.0;
};

/// Runs the standard density walk, snapshotting the first
/// `tracked_agents` agents' running estimates at each checkpoint.
/// Checkpoints must be strictly increasing; the last one is the total
/// round count.
template <graph::Topology T>
TrajectoryResult run_trajectory(const T& topo, std::uint32_t num_agents,
                                std::uint32_t tracked_agents,
                                const std::vector<std::uint32_t>& checkpoints,
                                std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  CollisionObserver counts(num_agents);
  // Validates tracked_agents and the checkpoint sequence.
  TrajectoryObserver trajectory(counts, tracked_agents, checkpoints);

  WalkConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = checkpoints.back();
  // Pack order matters: counts must update before trajectory reads them.
  run_walk(topo, cfg, rng::derive_seed(seed, 0x7124u),
           static_cast<const std::vector<typename T::node_type>*>(nullptr),
           counts, trajectory);

  TrajectoryResult result;
  result.checkpoints = trajectory.checkpoints();
  result.estimates = trajectory.take_estimates();
  result.true_density = static_cast<double>(num_agents - 1) /
                        static_cast<double>(topo.num_nodes());
  return result;
}

}  // namespace antdense::sim
