// Running-estimate trajectories: Algorithm 1 is an *anytime* algorithm —
// the estimate c/r is valid after every round r.  This engine variant
// records the trajectory of each tracked agent's running estimate at a
// set of checkpoints, powering the convergence-profile experiments and
// the quorum-sensing example's decision-latency analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::sim {

struct TrajectoryResult {
  /// checkpoints[i] = round number of the i-th snapshot (1-based rounds).
  std::vector<std::uint32_t> checkpoints;
  /// estimates[a][i] = tracked agent a's running estimate c/r at
  /// checkpoint i.
  std::vector<std::vector<double>> estimates;
  double true_density = 0.0;
};

/// Runs the standard density walk, snapshotting the first
/// `tracked_agents` agents' running estimates at each checkpoint.
/// Checkpoints must be strictly increasing; the last one is the total
/// round count.
template <graph::Topology T>
TrajectoryResult run_trajectory(const T& topo, std::uint32_t num_agents,
                                std::uint32_t tracked_agents,
                                const std::vector<std::uint32_t>& checkpoints,
                                std::uint64_t seed) {
  ANTDENSE_CHECK(num_agents >= 2, "need at least two agents");
  ANTDENSE_CHECK(tracked_agents >= 1 && tracked_agents <= num_agents,
                 "tracked agent count out of range");
  ANTDENSE_CHECK(!checkpoints.empty(), "need at least one checkpoint");
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    ANTDENSE_CHECK(checkpoints[i] >= 1, "checkpoints are 1-based rounds");
    ANTDENSE_CHECK(i == 0 || checkpoints[i] > checkpoints[i - 1],
                   "checkpoints must be strictly increasing");
  }

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x7124u));
  std::vector<typename T::node_type> pos(num_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }
  std::vector<std::uint64_t> keys(num_agents);
  std::vector<std::uint64_t> counts(num_agents, 0);
  CollisionCounter counter(num_agents);

  TrajectoryResult result;
  result.checkpoints = checkpoints;
  result.true_density = static_cast<double>(num_agents - 1) /
                        static_cast<double>(topo.num_nodes());
  result.estimates.assign(tracked_agents, {});
  for (auto& row : result.estimates) {
    row.reserve(checkpoints.size());
  }

  std::size_t next_checkpoint = 0;
  const std::uint32_t total_rounds = checkpoints.back();
  for (std::uint32_t r = 1; r <= total_rounds; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      counter.add(keys[i]);
    }
    for (std::uint32_t i = 0; i < num_agents; ++i) {
      counts[i] += counter.occupancy(keys[i]) - 1;
    }
    if (r == checkpoints[next_checkpoint]) {
      for (std::uint32_t a = 0; a < tracked_agents; ++a) {
        result.estimates[a].push_back(static_cast<double>(counts[a]) / r);
      }
      ++next_checkpoint;
    }
  }
  return result;
}

}  // namespace antdense::sim
