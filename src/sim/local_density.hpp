// Local density measurement on the 2-D torus (Section 2.1.1).
//
// The paper distinguishes the *global* density d = n/A from the *local*
// density an agent actually experiences early in its walk.  These
// helpers compute the ground-truth local density inside an L1 ball so
// the non-uniform-placement experiments can show what short-horizon
// encounter rates really track.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/torus2d.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Number of torus nodes within (wrap-aware) L1 distance `radius` of a
/// point — the ball volume 2r² + 2r + 1, clipped if the ball wraps.
std::uint64_t l1_ball_size(const graph::Torus2D& torus, std::uint32_t radius);

/// Agents (from `positions`) within L1 distance `radius` of `center`,
/// excluding an agent standing exactly at `center` at most once (so an
/// agent can ask for the local density *around itself*).
std::uint64_t agents_within(const graph::Torus2D& torus,
                            const std::vector<graph::Torus2D::node_type>&
                                positions,
                            graph::Torus2D::node_type center,
                            std::uint32_t radius, bool exclude_one_at_center);

/// Local density around `center`: (agents in ball, minus self if
/// requested) / ball size.
double local_density(const graph::Torus2D& torus,
                     const std::vector<graph::Torus2D::node_type>& positions,
                     graph::Torus2D::node_type center, std::uint32_t radius,
                     bool exclude_one_at_center = false);

/// Per-agent local densities: for each agent, the density of *other*
/// agents within `radius` of it.
std::vector<double> per_agent_local_density(
    const graph::Torus2D& torus,
    const std::vector<graph::Torus2D::node_type>& positions,
    std::uint32_t radius);

}  // namespace antdense::sim
