// Local density measurement on the 2-D torus (Section 2.1.1).
//
// The paper distinguishes the *global* density d = n/A from the *local*
// density an agent actually experiences early in its walk.  These
// helpers compute the ground-truth local density inside an L1 ball so
// the non-uniform-placement experiments can show what short-horizon
// encounter rates really track.  Positions are passed as spans so the
// WalkEngine's LocalDensityObserver can hand over its in-flight view
// without copying; std::vector arguments convert implicitly.
//
// run_local_density_profile is the engine-backed driver: it walks a
// population and records every agent's local density at checkpoints,
// tracing how a clustered placement relaxes toward the global density.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/torus2d.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Number of torus nodes within (wrap-aware) L1 distance `radius` of a
/// point — the ball volume 2r² + 2r + 1, clipped if the ball wraps.
std::uint64_t l1_ball_size(const graph::Torus2D& torus, std::uint32_t radius);

/// Agents (from `positions`) within L1 distance `radius` of `center`,
/// excluding an agent standing exactly at `center` at most once (so an
/// agent can ask for the local density *around itself*).
std::uint64_t agents_within(
    const graph::Torus2D& torus,
    std::span<const graph::Torus2D::node_type> positions,
    graph::Torus2D::node_type center, std::uint32_t radius,
    bool exclude_one_at_center);

/// Local density around `center`: (agents in ball, minus self if
/// requested) / ball size.
double local_density(const graph::Torus2D& torus,
                     std::span<const graph::Torus2D::node_type> positions,
                     graph::Torus2D::node_type center, std::uint32_t radius,
                     bool exclude_one_at_center = false);

/// Per-agent local densities: for each agent, the density of *other*
/// agents within `radius` of it.
std::vector<double> per_agent_local_density(
    const graph::Torus2D& torus,
    std::span<const graph::Torus2D::node_type> positions,
    std::uint32_t radius);

/// WalkEngine observer recording, at each checkpoint, every agent's
/// ground-truth local density (other agents in an L1 ball) on the 2-D
/// torus — showing what short-horizon encounter rates actually track
/// under non-uniform placement.  Lives here rather than in
/// walk_engine.hpp because it is Torus2D-specific; the engine itself
/// stays topology-agnostic.
class LocalDensityObserver {
 public:
  LocalDensityObserver(const graph::Torus2D& torus, std::uint32_t radius,
                       std::vector<std::uint32_t> checkpoints);

  void after_round(const RoundView& v,
                   std::span<const graph::Torus2D::node_type> positions);

  const std::vector<std::uint32_t>& checkpoints() const {
    return checkpoints_;
  }
  /// densities()[i][a] = agent a's local density at checkpoint i.
  const std::vector<std::vector<double>>& densities() const {
    return densities_;
  }
  std::vector<std::vector<double>> take_densities() {
    return std::move(densities_);
  }

 private:
  const graph::Torus2D* torus_;
  std::uint32_t radius_;
  std::vector<std::uint32_t> checkpoints_;
  std::size_t next_checkpoint_ = 0;
  std::vector<std::vector<double>> densities_;
};

struct LocalDensityProfile {
  /// checkpoints[i] = round number of the i-th snapshot (1-based).
  std::vector<std::uint32_t> checkpoints;
  /// densities[i][a] = agent a's local density of *others* at checkpoint i.
  std::vector<std::vector<double>> densities;
  double global_density = 0.0;  // (N-1)/A
};

/// Runs the walk engine with a LocalDensityObserver: `num_agents` agents
/// walk to the last checkpoint, snapshotting every agent's L1-ball local
/// density along the way.  `initial_positions`, when non-null, seeds a
/// non-uniform placement (must hold num_agents nodes).  Checkpoints must
/// be strictly increasing, 1-based.  Deterministic in `seed`.
LocalDensityProfile run_local_density_profile(
    const graph::Torus2D& torus, std::uint32_t num_agents,
    std::uint32_t radius, const std::vector<std::uint32_t>& checkpoints,
    std::uint64_t seed,
    const std::vector<graph::Torus2D::node_type>* initial_positions =
        nullptr);

}  // namespace antdense::sim
