// The unified synchronous round loop (Musco, Su & Lynch, PODC 2016,
// arXiv:1603.02981, Algorithm 1), factored so that every workload —
// density estimation, two-class property counting, trajectory recording,
// local-density profiling, and anything future — shares ONE hot loop
// instead of re-copying it.
//
// Structure of one round (identical to the original loops):
//   1. counter.begin_round()
//   2. every agent steps: the batched topology API when the walk is not
//      lazy (graph::random_neighbors — same generator stream as
//      sequential calls), the legacy per-agent Bernoulli/step loop when
//      it is;
//   3. keys are recomputed and the occupancy counter filled;
//   4. each observer's after_round hook fires, in pack order, seeing the
//      round's keys, the occupancy counter, the positions (if it asks
//      for them), and the engine's generator (for noise draws).
//
// Observers are a compile-time pack, so the round loop inlines their
// hooks with zero dispatch cost — the engine with a single
// CollisionObserver compiles to the same code shape as the original
// run_density_walk.  Generator-stream compatibility with the legacy
// loops is part of the contract (tests/test_walk_engine.cpp pins it
// bit-for-bit); the one deliberate re-golden is the detection-miss path,
// which now uses a single binomial draw per agent (rng::binomial)
// instead of a per-partner Bernoulli loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Movement-only configuration of the round loop.  What happens with the
/// occupancy information (noise, snapshots, ...) belongs to observers.
struct WalkConfig {
  std::uint32_t num_agents = 0;
  std::uint32_t rounds = 0;
  double lazy_probability = 0.0;

  void validate() const;
};

/// What an observer sees at the end of each round.  Everything is a view
/// into engine state; observers must not hold onto it past the call.
/// `gen` is the engine's generator: observers that draw from it (noise
/// models) become part of the reproducible stream, in pack order.
struct RoundView {
  std::uint32_t round = 0;  // 1-based
  std::uint32_t num_agents = 0;
  std::span<const std::uint64_t> keys;  // keys[i] = key of agent i's node
  const CollisionCounter& counter;      // occupancy of the current round
  rng::Xoshiro256pp& gen;
};

/// An observer is any type with `after_round(view)` or, when it needs
/// agent positions (node handles, not keys), `after_round(view, pos)`.
template <typename O, typename Node>
concept WalkObserverFor =
    requires(O& o, const RoundView& v, std::span<const Node> pos) {
      requires requires { o.after_round(v); } ||
                   requires { o.after_round(v, pos); };
    };

/// Per-agent cumulative collision counts — Algorithm 1's `c`, with the
/// Section 6.1 sensing perturbations (detection misses, spurious
/// detections) applied at observation time.
class CollisionObserver {
 public:
  struct Noise {
    double detection_miss = 0.0;  // each partner goes undetected w.p. p
    double spurious = 0.0;        // phantom collision recorded w.p. p
  };

  explicit CollisionObserver(std::uint32_t num_agents)
      : CollisionObserver(num_agents, Noise{}) {}
  CollisionObserver(std::uint32_t num_agents, Noise noise);

  void after_round(const RoundView& v);

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::vector<std::uint64_t> take_counts() { return std::move(counts_); }

 private:
  Noise noise_;
  std::vector<std::uint64_t> counts_;
};

/// Two-class counting for Section 5.2: total encounters and encounters
/// with property-P agents, from the same walk.
class PropertyObserver {
 public:
  explicit PropertyObserver(std::vector<bool> has_property);

  void after_round(const RoundView& v);

  const std::vector<std::uint64_t>& total_counts() const {
    return total_counts_;
  }
  const std::vector<std::uint64_t>& property_counts() const {
    return property_counts_;
  }
  std::vector<std::uint64_t> take_total_counts() {
    return std::move(total_counts_);
  }
  std::vector<std::uint64_t> take_property_counts() {
    return std::move(property_counts_);
  }

 private:
  std::vector<bool> has_property_;
  std::vector<std::uint64_t> total_counts_;
  std::vector<std::uint64_t> property_counts_;
  CollisionCounter prop_counter_;
};

/// Snapshots the running estimate c/r of the first `tracked_agents`
/// agents at each checkpoint (Algorithm 1 is anytime).  Reads counts
/// from a CollisionObserver, which must appear *before* this observer in
/// the engine's pack so its counts are current.
class TrajectoryObserver {
 public:
  TrajectoryObserver(const CollisionObserver& source,
                     std::uint32_t tracked_agents,
                     std::vector<std::uint32_t> checkpoints);

  void after_round(const RoundView& v);

  const std::vector<std::uint32_t>& checkpoints() const {
    return checkpoints_;
  }
  /// estimates()[a][i] = agent a's running estimate at checkpoint i.
  const std::vector<std::vector<double>>& estimates() const {
    return estimates_;
  }
  std::vector<std::vector<double>> take_estimates() {
    return std::move(estimates_);
  }

 private:
  const CollisionObserver* source_;
  std::uint32_t tracked_;
  std::vector<std::uint32_t> checkpoints_;
  std::size_t next_checkpoint_ = 0;
  std::vector<std::vector<double>> estimates_;
};

namespace detail {

/// Shared precondition for checkpoint-driven observers: non-empty,
/// 1-based, strictly increasing.
void validate_checkpoints(const std::vector<std::uint32_t>& checkpoints);

template <typename Obs, typename Node>
inline void notify_after_round(Obs& obs, const RoundView& view,
                               std::span<const Node> positions) {
  if constexpr (requires { obs.after_round(view, positions); }) {
    obs.after_round(view, positions);
  } else {
    obs.after_round(view);
  }
}

}  // namespace detail

/// Runs the synchronous round loop: place agents (uniform i.i.d., or the
/// caller's `initial_positions`), step them `cfg.rounds` times, fill the
/// occupancy counter, and fire every observer after each round.
/// `stream_seed` seeds the generator directly — callers that expose a
/// user-facing seed derive their own stream tag first (see
/// run_density_walk).  Deterministic in `stream_seed`.
template <graph::Topology T, class... Obs>
  requires(WalkObserverFor<Obs, typename T::node_type> && ...)
void run_walk(const T& topo, const WalkConfig& cfg, std::uint64_t stream_seed,
              const std::vector<typename T::node_type>* initial_positions,
              Obs&... observers) {
  cfg.validate();
  using node = typename T::node_type;
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == n_agents,
                 "initial positions must match agent count");

  rng::Xoshiro256pp gen(stream_seed);
  std::vector<node> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (auto& p : pos) {
      p = topo.random_node(gen);
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  CollisionCounter counter(n_agents);
  const bool lazy = cfg.lazy_probability > 0.0;

  for (std::uint32_t r = 1; r <= cfg.rounds; ++r) {
    counter.begin_round();
    if (lazy) {
      // Interleaved stay/step draws — must match the legacy stream, so
      // no batching here.
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        if (!rng::bernoulli(gen, cfg.lazy_probability)) {
          pos[i] = topo.random_neighbor(pos[i], gen);
        }
      }
    } else {
      graph::random_neighbors(topo, std::span<const node>(pos),
                              std::span<node>(pos), gen);
    }
    graph::node_keys(topo, std::span<const node>(pos),
                     std::span<std::uint64_t>(keys));
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      counter.add(keys[i]);
    }
    const RoundView view{r, n_agents, std::span<const std::uint64_t>(keys),
                         counter, gen};
    (detail::notify_after_round(observers, view, std::span<const node>(pos)),
     ...);
  }
}

}  // namespace antdense::sim
