// The unified synchronous round loop (Musco, Su & Lynch, PODC 2016,
// arXiv:1603.02981, Algorithm 1), factored so that every workload —
// density estimation, two-class property counting, trajectory recording,
// local-density profiling, and anything future — shares ONE hot loop
// instead of re-copying it.
//
// Structure of one round (identical to the original loops):
//   0. when a dynamics model is attached (sim/dynamics.hpp) and r >= 2:
//      the world mutates on its own domain-tagged RNG stream — the
//      walk stream below never changes, so static configs stay
//      bit-identical to their goldens;
//   1. counter.begin_round()
//   2. every agent steps: the batched topology API when the walk is not
//      lazy (graph::random_neighbors — same generator stream as
//      sequential calls), the legacy per-agent Bernoulli/step loop when
//      it is;
//   3. keys are recomputed and the occupancy counter filled;
//   4. observer hooks fire, in pack order: begin_round (serial setup),
//      fill (auxiliary occupancy counting), after_round (per-agent
//      reads, seeing the round's keys, the occupancy counter, the
//      positions if asked for, and the generator for noise draws), and
//      end_round (cross-agent snapshots).
//
// Observers are a compile-time pack, so the round loop inlines their
// hooks with zero dispatch cost — the engine with a single
// CollisionObserver compiles to the same code shape as the original
// run_density_walk.  Generator-stream compatibility with the legacy
// loops is part of the contract (tests/test_walk_engine.cpp pins it
// bit-for-bit); the one deliberate re-golden is the detection-miss path,
// which now uses a single binomial draw per agent (rng::binomial)
// instead of a per-partner Bernoulli loop.
//
// The hooks work on a *view* that names an agent range [begin_agent,
// end_agent): run_walk always passes the full population, while the
// sharded engine (sim/sharded_walk.hpp) drives the same observers one
// shard at a time, against a concurrent counter and per-shard
// generators.  Observer state indexed by agent id is therefore written
// in disjoint slices, which is what makes the sharded merge free and
// thread-count-invariant.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/topology.hpp"
#include "obs/telemetry.hpp"
#include "rng/random.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "sim/concurrent_counter.hpp"
#include "sim/dynamics.hpp"
#include "util/check.hpp"

namespace antdense::sim {

/// Movement-only configuration of the round loop.  What happens with the
/// occupancy information (noise, snapshots, ...) belongs to observers.
struct WalkConfig {
  std::uint32_t num_agents = 0;
  std::uint32_t rounds = 0;
  double lazy_probability = 0.0;
  /// Optional world-mutation model (sim/dynamics.hpp), not owned; null
  /// means the historical static walk, bit for bit.  Requires a
  /// uint64-node topology (the scenario layer's AnyTopology) and the
  /// single or sharded engine.
  WorldDynamics* dynamics = nullptr;

  void validate() const;
};

/// What an observer sees at the end of each round.  Everything is a view
/// into engine state; observers must not hold onto it past the call.
/// `gen` is the generator whose draws are reproducible for this view's
/// agent range — the engine's single stream in run_walk, the shard's
/// private stream in run_walk_sharded.  Observers that draw from it
/// (noise models) become part of the reproducible stream, in pack order.
/// Hooks must only write observer state belonging to agents in
/// [begin_agent, end_agent); the sharded engine runs hooks for distinct
/// ranges concurrently.
template <typename Counter>
struct BasicRoundView {
  std::uint32_t round = 0;        // 1-based
  std::uint32_t begin_agent = 0;  // this view's agent range
  std::uint32_t end_agent = 0;
  std::uint32_t num_agents = 0;         // whole population
  std::span<const std::uint64_t> keys;  // keys[i] = key of agent i's node
  const Counter& counter;               // occupancy of the current round
  rng::Xoshiro256pp& gen;
  /// True when fill hooks run concurrently (sharded, threads > 1):
  /// auxiliary counters must use their thread-safe insertion path.
  bool concurrent_fill = false;
};

using RoundView = BasicRoundView<CollisionCounter>;
/// The sharded engine's view: same shape, lock-free counter.
using ShardRoundView = BasicRoundView<ConcurrentCollisionCounter>;

/// An observer is any type with at least one per-round hook:
/// `after_round(view)`, `after_round(view, positions)` (node handles,
/// not keys), or `end_round(round)`.  Optional hooks: `begin_round
/// (round)` (serial, before the round's fills) and `fill(view)`
/// (auxiliary occupancy counting between stepping and after_round).
///
/// The concept is checked against the *actual* view type each engine
/// passes (RoundView for run_walk, ShardRoundView for run_walk_sharded):
/// the notify helpers skip hooks a view type cannot call, so without
/// this check an observer written against the wrong view would compile
/// and silently record nothing.
template <typename O, typename Node, typename View>
concept WalkObserverForView =
    requires(O& o, const View& v, std::span<const Node> pos,
             std::uint32_t round) {
      requires requires { o.after_round(v); } ||
                   requires { o.after_round(v, pos); } ||
                   requires { o.end_round(round); };
    };

template <typename O, typename Node>
concept WalkObserverFor = WalkObserverForView<O, Node, RoundView>;

/// Per-agent cumulative collision counts — Algorithm 1's `c`, with the
/// Section 6.1 sensing perturbations (detection misses, spurious
/// detections) applied at observation time.
class CollisionObserver {
 public:
  struct Noise {
    double detection_miss = 0.0;  // each partner goes undetected w.p. p
    double spurious = 0.0;        // phantom collision recorded w.p. p
    /// The whole observation is lost w.p. p (the round still counts
    /// toward the estimate's divisor).  Drawn first, before the miss
    /// and spurious draws, so dropout = 0 leaves the historical streams
    /// untouched.
    double dropout = 0.0;

    bool any() const {
      return detection_miss > 0.0 || spurious > 0.0 || dropout > 0.0;
    }
  };

  explicit CollisionObserver(std::uint32_t num_agents)
      : CollisionObserver(num_agents, Noise{}) {}
  CollisionObserver(std::uint32_t num_agents, Noise noise);

  template <typename View>
  void after_round(const View& v) {
    ANTDENSE_ASSERT(v.num_agents == counts_.size(),
                    "observer sized for a different agent count");
    if (!noise_.any()) {
      if (collisions_tap_ == nullptr) {
        for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
          counts_[i] += v.counter.occupancy(v.keys[i]) - 1;
        }
      } else {
        // Telemetry-enabled copy of the loop: the disabled path above
        // carries no accumulator, keeping it identical to the frozen
        // hot loop the bench overhead gate compares against.
        std::uint64_t observed = 0;
        for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
          const std::uint64_t others = v.counter.occupancy(v.keys[i]) - 1;
          counts_[i] += others;
          observed += others;
        }
        collisions_tap_->add(observed);
      }
      return;
    }
    std::uint64_t observed = 0;
    for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
      if (noise_.dropout > 0.0 && rng::bernoulli(v.gen, noise_.dropout)) {
        continue;  // reading lost entirely; no further draws this agent
      }
      std::uint64_t others = v.counter.occupancy(v.keys[i]) - 1;
      if (noise_.detection_miss > 0.0) {
        // Each partner is detected independently w.p. 1-p: one binomial
        // draw instead of the legacy per-partner Bernoulli loop.
        others = rng::binomial(v.gen, others, 1.0 - noise_.detection_miss);
      }
      if (noise_.spurious > 0.0 && rng::bernoulli(v.gen, noise_.spurious)) {
        ++others;
      }
      counts_[i] += others;
      observed += others;
    }
    if (collisions_tap_ != nullptr) {
      collisions_tap_->add(observed);
    }
  }

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::vector<std::uint64_t> take_counts() { return std::move(counts_); }

 private:
  Noise noise_;
  std::vector<std::uint64_t> counts_;
  /// Resolved from ambient telemetry at construction; null when
  /// telemetry is disabled (see walk_engine.cpp).
  obs::Counter* collisions_tap_ = nullptr;
};

/// Two-class counting for Section 5.2: total encounters and encounters
/// with property-P agents, from the same walk.  The property-occupancy
/// counter is filled in the engine's fill phase (concurrently under the
/// sharded engine) and read per agent in after_round.
class PropertyObserver {
 public:
  explicit PropertyObserver(std::vector<bool> has_property);

  void begin_round(std::uint32_t round);

  template <typename View>
  void fill(const View& v) {
    ANTDENSE_ASSERT(v.num_agents == has_property_.size(),
                    "observer sized for a different agent count");
    if (v.concurrent_fill) {
      for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
        if (has_property_[i]) {
          prop_counter_.add(v.keys[i]);
        }
      }
    } else {
      for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
        if (has_property_[i]) {
          prop_counter_.add_serial(v.keys[i]);
        }
      }
    }
  }

  template <typename View>
  void after_round(const View& v) {
    for (std::uint32_t i = v.begin_agent; i < v.end_agent; ++i) {
      total_counts_[i] += v.counter.occupancy(v.keys[i]) - 1;
      const std::uint32_t prop_occ = prop_counter_.occupancy(v.keys[i]);
      property_counts_[i] += prop_occ - (has_property_[i] ? 1 : 0);
    }
  }

  const std::vector<std::uint64_t>& total_counts() const {
    return total_counts_;
  }
  const std::vector<std::uint64_t>& property_counts() const {
    return property_counts_;
  }
  std::vector<std::uint64_t> take_total_counts() {
    return std::move(total_counts_);
  }
  std::vector<std::uint64_t> take_property_counts() {
    return std::move(property_counts_);
  }

 private:
  std::vector<bool> has_property_;
  std::vector<std::uint64_t> total_counts_;
  std::vector<std::uint64_t> property_counts_;
  ConcurrentCollisionCounter prop_counter_;
};

/// Snapshots the running estimate c/r of the first `tracked_agents`
/// agents at each checkpoint (Algorithm 1 is anytime).  Reads counts
/// from a CollisionObserver, which must appear *before* this observer in
/// the engine's pack so its counts are current.  Snapshotting happens in
/// the serial end_round hook because it reads counts across every
/// shard's slice.
class TrajectoryObserver {
 public:
  TrajectoryObserver(const CollisionObserver& source,
                     std::uint32_t tracked_agents,
                     std::vector<std::uint32_t> checkpoints);

  void end_round(std::uint32_t round);

  const std::vector<std::uint32_t>& checkpoints() const {
    return checkpoints_;
  }
  /// estimates()[a][i] = agent a's running estimate at checkpoint i.
  const std::vector<std::vector<double>>& estimates() const {
    return estimates_;
  }
  std::vector<std::vector<double>> take_estimates() {
    return std::move(estimates_);
  }

 private:
  const CollisionObserver* source_;
  std::uint32_t tracked_;
  std::vector<std::uint32_t> checkpoints_;
  std::size_t next_checkpoint_ = 0;
  std::vector<std::vector<double>> estimates_;
};

namespace detail {

/// Shared precondition for checkpoint-driven observers: non-empty,
/// 1-based, strictly increasing.
void validate_checkpoints(const std::vector<std::uint32_t>& checkpoints);

template <typename Obs>
inline void notify_begin_round(Obs& obs, std::uint32_t round) {
  if constexpr (requires { obs.begin_round(round); }) {
    obs.begin_round(round);
  }
}

template <typename Obs, typename View, typename Node>
inline void notify_fill(Obs& obs, const View& view,
                        std::span<const Node> positions) {
  if constexpr (requires { obs.fill(view, positions); }) {
    obs.fill(view, positions);
  } else if constexpr (requires { obs.fill(view); }) {
    obs.fill(view);
  }
}

template <typename Obs, typename View, typename Node>
inline void notify_after_round(Obs& obs, const View& view,
                               std::span<const Node> positions) {
  if constexpr (requires { obs.after_round(view, positions); }) {
    obs.after_round(view, positions);
  } else if constexpr (requires { obs.after_round(view); }) {
    obs.after_round(view);
  }
}

template <typename Obs>
inline void notify_end_round(Obs& obs, std::uint32_t round) {
  if constexpr (requires { obs.end_round(round); }) {
    obs.end_round(round);
  }
}

}  // namespace detail

/// Runs the synchronous round loop: place agents (uniform i.i.d., or the
/// caller's `initial_positions`), step them `cfg.rounds` times, fill the
/// occupancy counter, and fire every observer hook after each round.
/// `stream_seed` seeds the generator directly — callers that expose a
/// user-facing seed derive their own stream tag first (see
/// run_density_walk).  Deterministic in `stream_seed`.
template <graph::Topology T, class... Obs>
  requires(WalkObserverFor<Obs, typename T::node_type> && ...)
void run_walk(const T& topo, const WalkConfig& cfg, std::uint64_t stream_seed,
              const std::vector<typename T::node_type>* initial_positions,
              Obs&... observers) {
  cfg.validate();
  using node = typename T::node_type;
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == n_agents,
                 "initial positions must match agent count");

  rng::Xoshiro256pp gen(stream_seed);
  std::vector<node> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (auto& p : pos) {
      p = topo.random_node(gen);
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  CollisionCounter counter(n_agents);
  const bool lazy = cfg.lazy_probability > 0.0;

#if ANTDENSE_DYNAMICS
  // Dynamics plumbing (sim/dynamics.hpp): dormant — null model, no
  // copies, per-round branches only — for static walks, whose stream
  // and output stay bit-identical to the historical goldens.  The
  // mutation generator is its own domain-tagged stream; the walk
  // stream `gen` is never touched by dynamics.
  constexpr bool kDynCapable = std::is_same_v<node, std::uint64_t>;
  WorldDynamics* dyn = cfg.dynamics;
  if constexpr (!kDynCapable) {
    ANTDENSE_CHECK(dyn == nullptr,
                   "dynamics models require a uint64-node topology "
                   "(run via graph::AnyTopology)");
    dyn = nullptr;
  }
  const bool rewrites = dyn != nullptr && dyn->rewrites_moves();
  const std::uint8_t* const count_mask =
      dyn != nullptr ? dyn->count_mask() : nullptr;
  rng::Xoshiro256pp mut_gen(
      dyn != nullptr
          ? rng::derive_mutation_stream(stream_seed, dyn->model_seed())
          : 0);
  std::vector<node> prev;
#else
  ANTDENSE_CHECK(cfg.dynamics == nullptr,
                 "this build was configured with ANTDENSE_DYNAMICS=OFF");
#endif

  obs::EngineTap tap("single", {"step", "count", "observe", "mutate"});
  for (std::uint32_t r = 1; r <= cfg.rounds; ++r) {
    counter.begin_round();
#if ANTDENSE_DYNAMICS
    if constexpr (kDynCapable) {
      if (dyn != nullptr) {
        // The world is pristine in round 1 (the mutation phase runs
        // *between* rounds); mutation may relocate evicted or reborn
        // agents, so the pre-step snapshot for move rewriting is taken
        // after it.
        if (r > 1) {
          const obs::EngineTap::PhaseSpan phase(tap, 3);
          dyn->mutate(r, mut_gen, std::span<std::uint64_t>(pos));
        }
        if (rewrites) {
          prev = pos;
        }
      }
    }
#endif
    {
      const obs::EngineTap::PhaseSpan phase(tap, 0);
      if (lazy) {
        // Interleaved stay/step draws — must match the legacy stream,
        // so no batching here.
        for (std::uint32_t i = 0; i < n_agents; ++i) {
          if (!rng::bernoulli(gen, cfg.lazy_probability)) {
            pos[i] = topo.random_neighbor(pos[i], gen);
          }
        }
      } else {
        graph::random_neighbors(topo, std::span<const node>(pos),
                                std::span<node>(pos), gen);
      }
    }
#if ANTDENSE_DYNAMICS
    if constexpr (kDynCapable) {
      if (rewrites) {
        // Deterministic post-step veto/deflection of moves blocked by
        // the mutated world: the walk stream drew the step exactly as
        // the static engine would have.
        dyn->rewrite_moves(prev, pos, 0, n_agents);
      }
    }
#endif
    {
      const obs::EngineTap::PhaseSpan phase(tap, 1);
      graph::node_keys(topo, std::span<const node>(pos),
                       std::span<std::uint64_t>(keys));
#if ANTDENSE_DYNAMICS
      if (count_mask != nullptr) {
        for (std::uint32_t i = 0; i < n_agents; ++i) {
          if (count_mask[i] != 0) {
            counter.add(keys[i]);
          }
        }
      } else {
        for (std::uint32_t i = 0; i < n_agents; ++i) {
          counter.add(keys[i]);
        }
      }
#else
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        counter.add(keys[i]);
      }
#endif
    }
    const RoundView view{r,
                         0,
                         n_agents,
                         n_agents,
                         std::span<const std::uint64_t>(keys),
                         counter,
                         gen,
                         /*concurrent_fill=*/false};
    const std::span<const node> positions(pos);
    {
      const obs::EngineTap::PhaseSpan phase(tap, 2);
      (detail::notify_begin_round(observers, r), ...);
      (detail::notify_fill(observers, view, positions), ...);
      (detail::notify_after_round(observers, view, positions), ...);
      (detail::notify_end_round(observers, r), ...);
    }
  }
  tap.add_rounds(cfg.rounds);
  tap.add_agent_steps(static_cast<std::uint64_t>(cfg.rounds) * n_agents);
}

}  // namespace antdense::sim
