// The synchronous multi-agent random-walk engine (the paper's model,
// Section 2): N anonymous agents on a regular topology, one step per
// round, collision counting through count(position) at the end of each
// round.
//
// The engine also implements the perturbations Section 6.1 proposes for
// robustness studies (they are *off* by default, matching the paper's
// model exactly):
//   - lazy_probability: agent stays put with probability p each round;
//   - detection_miss_probability: each colliding partner goes undetected
//     independently with probability p;
//   - spurious_collision_probability: a phantom collision is recorded
//     with probability p per round;
//   - caller-supplied initial positions (non-uniform placement).
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "sim/collision_counter.hpp"
#include "util/check.hpp"

namespace antdense::sim {

struct DensityConfig {
  std::uint32_t num_agents = 0;
  std::uint32_t rounds = 0;
  double lazy_probability = 0.0;
  double detection_miss_probability = 0.0;
  double spurious_collision_probability = 0.0;

  void validate() const {
    ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
    ANTDENSE_CHECK(rounds >= 1, "need at least one round");
    ANTDENSE_CHECK(lazy_probability >= 0.0 && lazy_probability < 1.0,
                   "lazy probability must be in [0,1)");
    ANTDENSE_CHECK(detection_miss_probability >= 0.0 &&
                       detection_miss_probability <= 1.0,
                   "miss probability must be in [0,1]");
    ANTDENSE_CHECK(spurious_collision_probability >= 0.0 &&
                       spurious_collision_probability <= 1.0,
                   "spurious probability must be in [0,1]");
  }
};

struct DensityResult {
  std::vector<std::uint64_t> collision_counts;  // per agent, summed rounds
  std::uint32_t rounds = 0;
  std::uint64_t num_nodes = 0;

  /// The paper's density d = n/A where n is the number of *other* agents.
  double true_density() const {
    return static_cast<double>(collision_counts.size() - 1) /
           static_cast<double>(num_nodes);
  }

  /// Per-agent estimates d~ = c / t (Algorithm 1's return value).
  std::vector<double> estimates() const {
    std::vector<double> out;
    out.reserve(collision_counts.size());
    for (std::uint64_t c : collision_counts) {
      out.push_back(static_cast<double>(c) / rounds);
    }
    return out;
  }
};

/// Runs Algorithm 1 for every agent simultaneously and returns all
/// per-agent collision counts.  If `initial_positions` is non-null it
/// must hold num_agents nodes (used by the non-uniform-placement
/// experiments); otherwise agents start i.i.d. uniform, as the paper
/// assumes.  Deterministic in `seed`.
template <graph::Topology T>
DensityResult run_density_walk(
    const T& topo, const DensityConfig& cfg, std::uint64_t seed,
    const std::vector<typename T::node_type>* initial_positions = nullptr) {
  cfg.validate();
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(initial_positions == nullptr ||
                     initial_positions->size() == n_agents,
                 "initial positions must match agent count");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x51u));
  std::vector<typename T::node_type> pos(n_agents);
  if (initial_positions != nullptr) {
    pos = *initial_positions;
  } else {
    for (auto& p : pos) {
      p = topo.random_node(gen);
    }
  }

  std::vector<std::uint64_t> keys(n_agents);
  std::vector<std::uint64_t> counts(n_agents, 0);
  CollisionCounter counter(n_agents);

  const bool lazy = cfg.lazy_probability > 0.0;
  const bool noisy = cfg.detection_miss_probability > 0.0 ||
                     cfg.spurious_collision_probability > 0.0;

  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    counter.begin_round();
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      if (!lazy || !rng::bernoulli(gen, cfg.lazy_probability)) {
        pos[i] = topo.random_neighbor(pos[i], gen);
      }
      keys[i] = topo.key(pos[i]);
      counter.add(keys[i]);
    }
    if (!noisy) {
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        counts[i] += counter.occupancy(keys[i]) - 1;
      }
    } else {
      for (std::uint32_t i = 0; i < n_agents; ++i) {
        std::uint32_t others = counter.occupancy(keys[i]) - 1;
        if (cfg.detection_miss_probability > 0.0) {
          std::uint32_t detected = 0;
          for (std::uint32_t j = 0; j < others; ++j) {
            if (!rng::bernoulli(gen, cfg.detection_miss_probability)) {
              ++detected;
            }
          }
          others = detected;
        }
        if (cfg.spurious_collision_probability > 0.0 &&
            rng::bernoulli(gen, cfg.spurious_collision_probability)) {
          ++others;
        }
        counts[i] += others;
      }
    }
  }

  DensityResult result;
  result.collision_counts = std::move(counts);
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

struct PropertyResult {
  std::vector<std::uint64_t> total_counts;     // collisions with anyone
  std::vector<std::uint64_t> property_counts;  // collisions with P-agents
  std::uint32_t rounds = 0;
  std::uint64_t num_nodes = 0;
};

/// Two-class variant for Section 5.2: agents additionally detect whether
/// a colliding partner carries property P, tracking both encounter
/// counters simultaneously (one walk, two rates).
template <graph::Topology T>
PropertyResult run_property_walk(const T& topo, const DensityConfig& cfg,
                                 const std::vector<bool>& has_property,
                                 std::uint64_t seed) {
  cfg.validate();
  const std::uint32_t n_agents = cfg.num_agents;
  ANTDENSE_CHECK(has_property.size() == n_agents,
                 "property flags must match agent count");

  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x52u));
  std::vector<typename T::node_type> pos(n_agents);
  for (auto& p : pos) {
    p = topo.random_node(gen);
  }

  std::vector<std::uint64_t> keys(n_agents);
  PropertyResult result;
  result.total_counts.assign(n_agents, 0);
  result.property_counts.assign(n_agents, 0);
  CollisionCounter all_counter(n_agents);
  CollisionCounter prop_counter(n_agents);

  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    all_counter.begin_round();
    prop_counter.begin_round();
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      pos[i] = topo.random_neighbor(pos[i], gen);
      keys[i] = topo.key(pos[i]);
      all_counter.add(keys[i]);
      if (has_property[i]) {
        prop_counter.add(keys[i]);
      }
    }
    for (std::uint32_t i = 0; i < n_agents; ++i) {
      result.total_counts[i] += all_counter.occupancy(keys[i]) - 1;
      const std::uint32_t prop_occ = prop_counter.occupancy(keys[i]);
      result.property_counts[i] += prop_occ - (has_property[i] ? 1 : 0);
    }
  }
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

}  // namespace antdense::sim
