// The synchronous multi-agent random-walk drivers (the paper's model,
// Section 2): N anonymous agents on a regular topology, one step per
// round, collision counting through count(position) at the end of each
// round.  Both drivers are thin wrappers over the shared round loop in
// sim/walk_engine.hpp — run_density_walk is the engine plus a
// CollisionObserver, run_property_walk the engine plus a
// PropertyObserver.
//
// The drivers also implement the perturbations Section 6.1 proposes for
// robustness studies (they are *off* by default, matching the paper's
// model exactly):
//   - lazy_probability: agent stays put with probability p each round;
//   - detection_miss_probability: each colliding partner goes undetected
//     independently with probability p (sampled as one binomial draw per
//     agent);
//   - spurious_collision_probability: a phantom collision is recorded
//     with probability p per round;
//   - caller-supplied initial positions (non-uniform placement).
//
// Determinism contract: for a fixed seed, results are bit-identical to
// the pre-engine loops (frozen in sim/legacy_reference.hpp) in every
// mode except detection_miss_probability > 0, whose stream was
// re-goldened when the per-partner Bernoulli loop became a binomial
// draw.  tests/test_walk_engine.cpp pins both sides of this contract.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "sim/walk_engine.hpp"
#include "util/check.hpp"

namespace antdense::sim {

struct DensityConfig {
  std::uint32_t num_agents = 0;
  std::uint32_t rounds = 0;
  double lazy_probability = 0.0;
  double detection_miss_probability = 0.0;
  double spurious_collision_probability = 0.0;
  /// An agent's whole observation is lost w.p. p per round (the round
  /// still divides the estimate) — see CollisionObserver::Noise.
  double observation_dropout_probability = 0.0;

  void validate() const {
    ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
    ANTDENSE_CHECK(rounds >= 1, "need at least one round");
    ANTDENSE_CHECK(lazy_probability >= 0.0 && lazy_probability < 1.0,
                   "lazy probability must be in [0,1)");
    ANTDENSE_CHECK(detection_miss_probability >= 0.0 &&
                       detection_miss_probability <= 1.0,
                   "miss probability must be in [0,1]");
    ANTDENSE_CHECK(spurious_collision_probability >= 0.0 &&
                       spurious_collision_probability <= 1.0,
                   "spurious probability must be in [0,1]");
    ANTDENSE_CHECK(observation_dropout_probability >= 0.0 &&
                       observation_dropout_probability <= 1.0,
                   "dropout probability must be in [0,1]");
  }

  /// The movement-only slice of this config, for the walk engine.
  WalkConfig walk_config() const {
    WalkConfig cfg;
    cfg.num_agents = num_agents;
    cfg.rounds = rounds;
    cfg.lazy_probability = lazy_probability;
    return cfg;
  }
};

struct DensityResult {
  std::vector<std::uint64_t> collision_counts;  // per agent, summed rounds
  std::uint32_t rounds = 0;
  std::uint64_t num_nodes = 0;

  /// The paper's density d = n/A where n is the number of *other* agents.
  double true_density() const {
    return static_cast<double>(collision_counts.size() - 1) /
           static_cast<double>(num_nodes);
  }

  /// Per-agent estimates d~ = c / t (Algorithm 1's return value).
  std::vector<double> estimates() const {
    std::vector<double> out;
    out.reserve(collision_counts.size());
    for (std::uint64_t c : collision_counts) {
      out.push_back(static_cast<double>(c) / rounds);
    }
    return out;
  }
};

/// Runs Algorithm 1 for every agent simultaneously and returns all
/// per-agent collision counts.  If `initial_positions` is non-null it
/// must hold num_agents nodes (used by the non-uniform-placement
/// experiments); otherwise agents start i.i.d. uniform, as the paper
/// assumes.  Deterministic in `seed`.
///
/// `extra` observers ride after the CollisionObserver in pack order
/// (the scenario layer attaches its round-progress observer here); an
/// extra observer that draws no randomness leaves the result stream
/// bit-identical to the plain call.
template <graph::Topology T, typename... Extra>
DensityResult run_density_walk(
    const T& topo, const DensityConfig& cfg, std::uint64_t seed,
    const std::vector<typename T::node_type>* initial_positions = nullptr,
    Extra&... extra) {
  cfg.validate();
  CollisionObserver observer(
      cfg.num_agents, {.detection_miss = cfg.detection_miss_probability,
                       .spurious = cfg.spurious_collision_probability,
                       .dropout = cfg.observation_dropout_probability});
  run_walk(topo, cfg.walk_config(), rng::derive_seed(seed, 0x51u),
           initial_positions, observer, extra...);

  DensityResult result;
  result.collision_counts = observer.take_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

struct PropertyResult {
  std::vector<std::uint64_t> total_counts;     // collisions with anyone
  std::vector<std::uint64_t> property_counts;  // collisions with P-agents
  std::uint32_t rounds = 0;
  std::uint64_t num_nodes = 0;
};

/// Two-class variant for Section 5.2: agents additionally detect whether
/// a colliding partner carries property P, tracking both encounter
/// counters simultaneously (one walk, two rates).  Honors
/// cfg.lazy_probability (the pre-engine loop silently ignored it); the
/// sensing-noise probabilities still apply only to run_density_walk.
template <graph::Topology T>
PropertyResult run_property_walk(const T& topo, const DensityConfig& cfg,
                                 const std::vector<bool>& has_property,
                                 std::uint64_t seed) {
  cfg.validate();
  ANTDENSE_CHECK(has_property.size() == cfg.num_agents,
                 "property flags must match agent count");
  PropertyObserver observer(has_property);
  run_walk(topo, cfg.walk_config(), rng::derive_seed(seed, 0x52u),
           static_cast<const std::vector<typename T::node_type>*>(nullptr),
           observer);

  PropertyResult result;
  result.total_counts = observer.take_total_counts();
  result.property_counts = observer.take_property_counts();
  result.rounds = cfg.rounds;
  result.num_nodes = topo.num_nodes();
  return result;
}

}  // namespace antdense::sim
