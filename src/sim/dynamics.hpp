// The dynamics layer's engine-facing contract: a WorldDynamics is a
// perturbation model that mutates the world *between* rounds of the
// synchronous walk (Musco, Su & Lynch, PODC 2016 — whose motivating
// ants/robots live in a world that changes underfoot; see ROADMAP item
// 4 and Hindes et al. on stochastic sensing and dynamics).
//
// Engine integration (run_walk / run_walk_sharded):
//
//   round r (r >= 2):   mutate(r, mut_gen, positions)     [serial]
//                       step agents from the WALK stream  [unchanged]
//                       rewrite_moves(prev, pos, b, e)    [per shard]
//                       count agents with count_mask()    [per shard]
//                       observer hooks                    [unchanged]
//
// RNG-stream isolation is the heart of the contract: every stochastic
// mutation draw comes from `mut_gen`, a generator the engine seeds via
// rng::derive_mutation_stream(stream_seed, model_seed()) — a
// domain-tagged stream that shares nothing with the walk, shard, trial,
// or observer streams.  The walk stream is consumed exactly as in the
// static engine (agents step even when dead or deflected), so:
//   1. a null dynamics pointer reproduces the static goldens bit for
//      bit, and
//   2. the sharded engine stays thread-count-invariant with dynamics
//      enabled — mutate() runs serially between rounds, and
//      rewrite_moves()/observe() are const, deterministic, and touch
//      only the view's agent range.
//
// Models work in the type-erased node domain (graph::AnyTopology,
// node_type = uint64): the scenario layer is the only producer of
// dynamics models, and it always runs on AnyTopology.  A model must be
// constructed over the same topology handle the engine is stepping.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "rng/xoshiro256pp.hpp"

// Compile-time switch for the dynamics layer (CMake option
// ANTDENSE_DYNAMICS, default ON).  When 0, the engines compile without
// the mutation-phase branches and reject configs carrying a dynamics
// model — CI's dynamics-smoke job byte-compares a static scenario
// against such a build to prove the branches are inert.
#ifndef ANTDENSE_DYNAMICS
#define ANTDENSE_DYNAMICS 1
#endif

namespace antdense::sim {

/// Abstract perturbation model driven by the engines' mutation phase.
/// Implementations: sim/dynamic_world.hpp (churn, drift, fade), built
/// from spec strings by scenario::DynamicsRegistry.
class WorldDynamics {
 public:
  virtual ~WorldDynamics() = default;

  /// Canonical "model:k=v,..." spelling of this instance, mirroring
  /// Registry::canonical for topologies (diagnostics and artifacts).
  virtual std::string name() const = 0;

  /// The model's own seed parameter, folded into the mutation-stream
  /// derivation so two models in otherwise-identical scenarios draw
  /// independent mutation randomness.
  virtual std::uint64_t model_seed() const = 0;

  /// One mutation tick, called serially before the stepping phase of
  /// every round r >= 2 (the world is pristine in round 1, matching the
  /// static engine's first round).  May relocate agents in `positions`
  /// (evicting walkers from failed nodes, placing reborn agents); all
  /// stochastic choices must come from `mut_gen`.
  virtual void mutate(std::uint32_t round, rng::Xoshiro256pp& mut_gen,
                      std::span<std::uint64_t> positions) = 0;

  /// True when the model constrains movement and the engine must call
  /// rewrite_moves after stepping (costs one position copy per round).
  virtual bool rewrites_moves() const { return false; }

  /// Deterministically rewrites the moves of agents [begin, end): agent
  /// i attempted prev[i] -> pos[i] on the *static* topology; the model
  /// may veto or deflect the move in place.  Const and data-race-free:
  /// the sharded engine calls it concurrently for disjoint ranges.
  virtual void rewrite_moves(std::span<const std::uint64_t> prev,
                             std::span<std::uint64_t> pos,
                             std::uint32_t begin, std::uint32_t end) const {
    (void)prev;
    (void)pos;
    (void)begin;
    (void)end;
  }

  /// Per-slot liveness mask (1 = count this agent into round occupancy),
  /// or nullptr when every agent always counts.  Stable between mutate
  /// calls; indexed by agent slot.
  virtual const std::uint8_t* count_mask() const { return nullptr; }

  /// The round in which slot `slot`'s current incarnation was born
  /// (1 for initial agents).  Observers reset a slot's accumulators
  /// when this changes — a reborn agent is a *new* anonymous agent.
  virtual std::uint32_t birth_round(std::uint32_t slot) const {
    (void)slot;
    return 1;
  }

  /// Whether slot `slot` is currently alive (dead slots keep stepping
  /// to preserve the walk stream, but neither count nor observe).
  virtual bool alive(std::uint32_t slot) const {
    (void)slot;
    return true;
  }

  /// True when the model perturbs observations and the observer must
  /// route each raw collision count through observe().
  virtual bool transforms_observations() const { return false; }

  /// Transforms slot `slot`'s raw partner count for this round.  Draws
  /// come from `gen` — the *observer's* view generator (walk or shard
  /// stream), in agent order within the view's range, which is what
  /// keeps sharded observation noise thread-count-invariant.  Const:
  /// called concurrently for disjoint ranges.
  virtual std::uint64_t observe(std::uint32_t slot, std::uint64_t others,
                                rng::Xoshiro256pp& gen) const {
    (void)slot;
    (void)gen;
    return others;
  }
};

}  // namespace antdense::sim
