// Exact single-walk and two-walk probabilities on explicit graphs —
// closed-form oracles for the Monte Carlo estimators in walk/.
//
// For a walk matrix W and start vertex u:
//   equalization:  P[X_m = u | X_0 = u]          = (e_u W^m)(u)
//   re-collision:  P[X_m = Y_m | X_0 = Y_0 = u]  = sum_v p_m(u,v)^2
//                  (two independent walks from the same start)
// These power the strongest tests in the suite: the sampled curves must
// match the exact values within binomial confidence bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace antdense::spectral {

/// p_m(u, ·): the exact distribution of an m-step walk from u.
std::vector<double> walk_distribution(const graph::Graph& g,
                                      graph::Graph::vertex source,
                                      std::uint32_t steps);

/// Exact equalization probability P[X_m = u | X_0 = u].
double exact_equalization_probability(const graph::Graph& g,
                                      graph::Graph::vertex source,
                                      std::uint32_t steps);

/// Exact re-collision probability of two independent walks launched from
/// the same vertex: sum_v p_m(u,v)^2.
double exact_recollision_probability(const graph::Graph& g,
                                     graph::Graph::vertex source,
                                     std::uint32_t steps);

/// Full exact curves for m = 0..m_max, averaged over a uniform random
/// start (matching the Monte Carlo protocol, which draws the common
/// start uniformly).  One evolution pass per start vertex — intended for
/// small graphs.
std::vector<double> exact_equalization_curve(const graph::Graph& g,
                                             std::uint32_t m_max);
std::vector<double> exact_recollision_curve(const graph::Graph& g,
                                            std::uint32_t m_max);

}  // namespace antdense::spectral
