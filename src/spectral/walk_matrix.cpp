#include "spectral/walk_matrix.hpp"

#include <cmath>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::spectral {

using graph::Graph;

std::vector<double> stationary_distribution(const Graph& g) {
  ANTDENSE_CHECK(g.num_vertices() > 0, "empty graph");
  std::vector<double> pi(g.num_vertices());
  double total = 0.0;
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    pi[v] = static_cast<double>(g.degree(v));
    total += pi[v];
  }
  ANTDENSE_CHECK(total > 0.0, "graph has no edges");
  for (double& p : pi) {
    p /= total;
  }
  return pi;
}

std::vector<double> evolve_step(const Graph& g,
                                const std::vector<double>& dist) {
  ANTDENSE_CHECK(dist.size() == g.num_vertices(),
                 "distribution size must match vertex count");
  std::vector<double> out(dist.size(), 0.0);
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d == 0 || dist[v] == 0.0) continue;
    const double share = dist[v] / d;
    for (Graph::vertex u : g.neighbors(v)) {
      out[u] += share;
    }
  }
  return out;
}

std::vector<double> evolve(const Graph& g, std::vector<double> dist,
                           std::uint32_t steps) {
  for (std::uint32_t s = 0; s < steps; ++s) {
    dist = evolve_step(g, dist);
  }
  return dist;
}

double tv_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  ANTDENSE_CHECK(a.size() == b.size(), "distribution sizes must match");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc / 2.0;
}

namespace {

// y = N x where N = D^{-1/2} A D^{-1/2} (symmetric, same spectrum as the
// walk matrix).
std::vector<double> apply_normalized(const Graph& g,
                                     const std::vector<double>& x,
                                     const std::vector<double>& inv_sqrt_deg) {
  std::vector<double> y(x.size(), 0.0);
  for (Graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const double xv = x[v] * inv_sqrt_deg[v];
    if (xv == 0.0) continue;
    for (Graph::vertex u : g.neighbors(v)) {
      y[u] += xv * inv_sqrt_deg[u];
    }
  }
  return y;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

double second_eigenvalue_magnitude(const Graph& g, std::uint32_t iterations,
                                   std::uint64_t seed) {
  const std::uint32_t n = g.num_vertices();
  ANTDENSE_CHECK(n >= 2, "graph must have at least 2 vertices");
  ANTDENSE_CHECK(g.num_edges() > 0, "graph must have edges");

  // Top eigenvector of N is phi(v) = sqrt(deg v), eigenvalue 1.
  std::vector<double> phi(n);
  std::vector<double> inv_sqrt_deg(n);
  for (Graph::vertex v = 0; v < n; ++v) {
    const double d = g.degree(v);
    ANTDENSE_CHECK(d > 0.0, "isolated vertex: walk matrix undefined");
    phi[v] = std::sqrt(d);
    inv_sqrt_deg[v] = 1.0 / phi[v];
  }
  const double phi_norm = norm(phi);
  for (double& p : phi) {
    p /= phi_norm;
  }

  rng::Xoshiro256pp gen(seed);
  std::vector<double> x(n);
  for (double& v : x) {
    v = rng::uniform_unit(gen) - 0.5;
  }

  double lambda = 0.0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    // Deflate the top eigenspace, then apply N.
    const double proj = dot(x, phi);
    for (std::uint32_t i = 0; i < n; ++i) {
      x[i] -= proj * phi[i];
    }
    std::vector<double> y = apply_normalized(g, x, inv_sqrt_deg);
    const double y_norm = norm(y);
    if (y_norm == 0.0) {
      return 0.0;  // x was entirely in the top eigenspace: disconnected? no
    }
    lambda = y_norm / norm(x);
    for (std::uint32_t i = 0; i < n; ++i) {
      x[i] = y[i] / y_norm;
    }
  }
  return lambda;
}

double spectral_gap(const Graph& g, std::uint32_t iterations,
                    std::uint64_t seed) {
  return 1.0 - second_eigenvalue_magnitude(g, iterations, seed);
}

std::uint32_t burn_in_steps(std::uint64_t num_edges, double delta,
                            double lambda) {
  ANTDENSE_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  ANTDENSE_CHECK(lambda >= 0.0 && lambda < 1.0, "lambda must be in [0,1)");
  ANTDENSE_CHECK(num_edges > 0, "graph must have edges");
  const double steps =
      std::log(static_cast<double>(num_edges) / delta) / (1.0 - lambda);
  return static_cast<std::uint32_t>(std::ceil(steps));
}

std::uint32_t mixing_time_from(const Graph& g, Graph::vertex source,
                               double target, std::uint32_t max_steps) {
  ANTDENSE_CHECK(source < g.num_vertices(), "source out of range");
  ANTDENSE_CHECK(target > 0.0, "target TV distance must be positive");
  const std::vector<double> pi = stationary_distribution(g);
  std::vector<double> dist(g.num_vertices(), 0.0);
  dist[source] = 1.0;
  for (std::uint32_t m = 0; m <= max_steps; ++m) {
    if (tv_distance(dist, pi) <= target) {
      return m;
    }
    dist = evolve_step(g, dist);
  }
  return max_steps + 1;
}

}  // namespace antdense::spectral
