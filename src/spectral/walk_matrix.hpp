// Random-walk matrix tools for explicit graphs.
//
// Three jobs:
//   1. Exact distribution evolution x -> x W^m on small graphs — the test
//      oracle for the Monte Carlo engine, and the exact TV-distance
//      curves for the Section 5.1.4 burn-in analysis.
//   2. λ = max{|λ₂|, |λ_A|} of the walk matrix via power iteration on the
//      symmetrized matrix — the quantity in Lemma 23/24 and in the
//      burn-in bound M = O(log(|E|/δ)/(1-λ)).
//   3. Mixing-time measurement (smallest m with worst-case TV <= target).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace antdense::spectral {

/// The stationary distribution of a random walk on g: pi(v) proportional
/// to deg(v).  Uniform exactly when the graph is regular.
std::vector<double> stationary_distribution(const graph::Graph& g);

/// One exact step of distribution evolution: out[u] = sum over neighbors
/// v of u of in[v] / deg(v).  (Row-stochastic walk matrix applied on the
/// right, exploiting undirectedness.)
std::vector<double> evolve_step(const graph::Graph& g,
                                const std::vector<double>& dist);

/// m exact steps.
std::vector<double> evolve(const graph::Graph& g, std::vector<double> dist,
                           std::uint32_t steps);

/// Total variation distance: (1/2) * sum |a_i - b_i|.
double tv_distance(const std::vector<double>& a, const std::vector<double>& b);

/// λ = max{|λ₂|, |λ_A|} of the walk matrix W = D^{-1} A, computed by
/// power iteration on the symmetric normalization N = D^{-1/2} A D^{-1/2}
/// with the top eigenvector deflated.  Deterministic in `seed`.
double second_eigenvalue_magnitude(const graph::Graph& g,
                                   std::uint32_t iterations = 2000,
                                   std::uint64_t seed = 0x5EC7);

/// Spectral gap 1 - λ.
double spectral_gap(const graph::Graph& g, std::uint32_t iterations = 2000,
                    std::uint64_t seed = 0x5EC7);

/// The paper's burn-in length (Section 5.1.4):
/// M = ceil(log(|E|/delta) / (1-lambda)).
std::uint32_t burn_in_steps(std::uint64_t num_edges, double delta,
                            double lambda);

/// Smallest m such that the walk started from `source` has TV distance to
/// stationarity <= target.  Exact evolution; small graphs only.  Returns
/// max_steps+1 if not reached.
std::uint32_t mixing_time_from(const graph::Graph& g,
                               graph::Graph::vertex source, double target,
                               std::uint32_t max_steps);

}  // namespace antdense::spectral
