#include "spectral/exact_walk.hpp"

#include "spectral/walk_matrix.hpp"
#include "util/check.hpp"

namespace antdense::spectral {

using graph::Graph;

std::vector<double> walk_distribution(const Graph& g, Graph::vertex source,
                                      std::uint32_t steps) {
  ANTDENSE_CHECK(source < g.num_vertices(), "source out of range");
  std::vector<double> dist(g.num_vertices(), 0.0);
  dist[source] = 1.0;
  return evolve(g, std::move(dist), steps);
}

double exact_equalization_probability(const Graph& g, Graph::vertex source,
                                      std::uint32_t steps) {
  return walk_distribution(g, source, steps)[source];
}

double exact_recollision_probability(const Graph& g, Graph::vertex source,
                                     std::uint32_t steps) {
  const auto dist = walk_distribution(g, source, steps);
  double acc = 0.0;
  for (double p : dist) {
    acc += p * p;
  }
  return acc;
}

namespace {

// Shared driver: evolve one distribution per start vertex, reducing each
// step with `reduce(dist, start)` into curve[m], averaged over starts.
template <typename Reduce>
std::vector<double> averaged_curve(const Graph& g, std::uint32_t m_max,
                                   Reduce reduce) {
  const std::uint32_t n = g.num_vertices();
  ANTDENSE_CHECK(n > 0, "empty graph");
  std::vector<double> curve(m_max + 1, 0.0);
  for (Graph::vertex start = 0; start < n; ++start) {
    std::vector<double> dist(n, 0.0);
    dist[start] = 1.0;
    curve[0] += reduce(dist, start);
    for (std::uint32_t m = 1; m <= m_max; ++m) {
      dist = evolve_step(g, dist);
      curve[m] += reduce(dist, start);
    }
  }
  for (double& v : curve) {
    v /= n;
  }
  return curve;
}

}  // namespace

std::vector<double> exact_equalization_curve(const Graph& g,
                                             std::uint32_t m_max) {
  return averaged_curve(
      g, m_max,
      [](const std::vector<double>& dist, Graph::vertex start) {
        return dist[start];
      });
}

std::vector<double> exact_recollision_curve(const Graph& g,
                                            std::uint32_t m_max) {
  return averaged_curve(
      g, m_max, [](const std::vector<double>& dist, Graph::vertex) {
        double acc = 0.0;
        for (double p : dist) {
          acc += p * p;
        }
        return acc;
      });
}

}  // namespace antdense::spectral
