#include "serve/server.hpp"

#include <poll.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "campaign/spec.hpp"
#include "scenario/experiment.hpp"
#include "scenario/spec.hpp"
#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace antdense::serve {

namespace {

/// The cacheable form of a result: the scenario document minus every
/// per-invocation field — wall-clock timings, and the spec's `threads`
/// resource knob (the server runs with its own budget; `threads` is
/// excluded from identity, so it must be excluded from the cached bytes
/// too or warm responses could not be byte-identical to cold ones).
std::string canonical_result_payload(const scenario::ScenarioResult& result) {
  util::JsonValue doc = result.to_json();
  doc.erase("elapsed_seconds");
  doc.erase("elapsed_ns");
  util::JsonValue spec_doc = result.spec.to_json();
  spec_doc.erase("threads");
  doc.set("spec", std::move(spec_doc));
  return doc.dump(0);
}

/// Time-based progress-frame throttle, shared by run and sweep
/// requests.  should_send is callable from concurrent trial workers:
/// the check-then-store on last_us_ is deliberately racy (worst case
/// one extra frame), but the done == total final frame passes
/// unconditionally — that guarantee is pinned in tests/test_serve.cpp.
class ProgressThrottle {
 public:
  explicit ProgressThrottle(std::uint32_t interval_ms)
      : interval_us_(static_cast<std::int64_t>(interval_ms) * 1000) {}

  bool should_send(std::uint64_t done, std::uint64_t total) {
    if (done == total || interval_us_ == 0) {
      return true;
    }
    const auto now =
        static_cast<std::int64_t>(timer_.elapsed_nanos() / 1000);
    const std::int64_t last = last_us_.load(std::memory_order_relaxed);
    if (last >= 0 && now - last < interval_us_) {
      return false;
    }
    last_us_.store(now, std::memory_order_relaxed);
    return true;
  }

 private:
  std::int64_t interval_us_;
  util::WallTimer timer_;
  std::atomic<std::int64_t> last_us_{-1};
};

double payload_rel_error(const util::JsonValue& result_doc) {
  const util::JsonValue* truth = result_doc.find("true_value");
  const util::JsonValue* summary = result_doc.find("summary");
  const util::JsonValue* mean =
      summary == nullptr ? nullptr : summary->find("mean");
  if (truth == nullptr || mean == nullptr) {
    return 0.0;
  }
  const double t = truth->as_double();
  const double m = mean->as_double();
  if (t == 0.0) {
    return m < 0 ? -m : m;
  }
  const double diff = m - t;
  return (diff < 0 ? -diff : diff) / t;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(scenario::Registry::built_in()),
      trace_(options_.trace_bytes),
      telemetry_{&metrics_, &trace_},
      cache_(options_.journal_path, options_.cache_bytes, "antdense_serve",
             telemetry_),
      listener_(options_.port) {}

Server::~Server() { stop(); }

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait(int extra_wake_fd) {
  while (!stopping_.load(std::memory_order_acquire) &&
         !shutdown_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = shutdown_wake_.read_fd();
    fds[0].events = POLLIN;
    fds[1].fd = extra_wake_fd;
    fds[1].events = POLLIN;
    // The timeout is a guard against a poke racing the flag check, not a
    // busy loop: an idle daemon wakes twice a second to re-check.
    const int n = ::poll(fds, extra_wake_fd >= 0 ? 2 : 1, 500);
    if (n < 0 && errno != EINTR) {
      throw std::runtime_error("serve wait poll failed");
    }
    if (extra_wake_fd >= 0 && (fds[1].revents & POLLIN) != 0) {
      return;  // external termination (signal pipe) — caller decides
    }
  }
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller still wants the joins to have happened; the first
    // call does them, and thread::join below is not re-entrant — so
    // just wait for the accept thread to be gone.
    if (accept_thread_.joinable()) {
      // The first stop() is mid-join; joining here would race. The
      // accept loop exits promptly, so a yield loop suffices.
      while (accept_thread_.joinable()) {
        std::this_thread::yield();
      }
    }
    return;
  }
  wake_.poke();
  shutdown_wake_.poke();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      conn->socket.shutdown_both();  // unblocks recv in the handler
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    drained.swap(connections_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  listener_.close();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    util::Socket socket = listener_.accept_interruptible(wake_.read_fd());
    if (!socket.valid()) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      wake_.drain();  // stray poke; go back to waiting
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(socket);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(*raw); });
  }
}

bool Server::send_json(Connection& conn, const util::JsonValue& doc) {
  std::lock_guard<std::mutex> lock(conn.send_mutex);
  return write_frame_json(conn.socket, doc);
}

void Server::serve_connection(Connection& conn) {
  // Every request handled on this connection thread sees the daemon's
  // telemetry as ambient — engine taps inside executed experiments
  // record into the shared registry.
  obs::ScopedTelemetry ambient(&telemetry_);
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    const FrameStatus status = read_frame(conn.socket, payload);
    if (status == FrameStatus::kClosed) {
      return;
    }
    if (status != FrameStatus::kOk) {
      // The stream position is gone; one diagnostic, then hang up.
      send_json(conn, make_error(std::string("framing violation: ") +
                                 frame_status_name(status)));
      conn.socket.shutdown_both();
      return;
    }
    util::JsonValue response;
    try {
      const util::JsonValue request = util::JsonValue::parse(payload);
      response = handle_request(conn, request);
    } catch (const std::exception& e) {
      response = make_error(e.what());
    }
    const bool is_shutdown =
        response.find("type") != nullptr &&
        response.find("type")->as_string() == "shutdown_ack";
    if (!send_json(conn, response)) {
      return;
    }
    if (is_shutdown) {
      shutdown_requested_.store(true, std::memory_order_release);
      shutdown_wake_.poke();
      return;
    }
  }
}

util::JsonValue Server::handle_request(Connection& conn,
                                       const util::JsonValue& request) {
  const std::string type = envelope_type(request);
  // Known types only feed the counter label — a client typo must not
  // mint unbounded label cardinality.
  const bool known = type == "run" || type == "sweep" ||
                     type == "cache_stats" || type == "server_info" ||
                     type == "metrics" || type == "shutdown";
  metrics_
      .counter("antdense_serve_requests_total",
               {{"type", known ? type : std::string("unknown")}},
               "Requests handled by type")
      .add(1);
  obs::SpanScope span(&trace_, known ? type : std::string("unknown"),
                      "serve");
  if (type == "run") {
    return handle_run(conn, request);
  }
  if (type == "sweep") {
    return handle_sweep(conn, request);
  }
  if (type == "cache_stats") {
    util::JsonValue response = make_envelope("cache_stats");
    response.set("stats", cache_.stats().to_json());
    return response;
  }
  if (type == "server_info") {
    return server_info();
  }
  if (type == "metrics") {
    // Live stats: the ordered JSON snapshot plus the same registry as
    // Prometheus text exposition, ready for a scraper to relay.
    util::JsonValue response = make_envelope("metrics");
    response.set("metrics", metrics_.to_json());
    response.set("prometheus", metrics_.to_prometheus());
    return response;
  }
  if (type == "shutdown") {
    return make_envelope("shutdown_ack");
  }
  return make_error("unknown request type \"" + type + "\"");
}

util::JsonValue Server::handle_run(Connection& conn,
                                   const util::JsonValue& request) {
  const util::JsonValue* spec_doc = request.find("spec");
  if (spec_doc == nullptr || !spec_doc->is_object()) {
    return make_error("run request needs an object \"spec\"");
  }
  const util::JsonValue* progress_flag = request.find("progress");
  const bool want_progress =
      progress_flag != nullptr && progress_flag->is_bool() &&
      progress_flag->as_bool();

  scenario::ScenarioSpec spec = scenario::ScenarioSpec::from_json(*spec_doc);
  const std::string id = spec.identity_hash(registry_);
  spec.threads = options_.threads;  // resource knob, server's call

  util::WallTimer timer;
  const CacheOutcome outcome = cache_.get_or_run(id, [&]() -> std::string {
    scenario::Experiment experiment(spec, registry_);
    scenario::ProgressHooks hooks;
    hooks.round_stride = options_.progress_stride;
    if (want_progress) {
      const auto throttle =
          std::make_shared<ProgressThrottle>(options_.progress_interval_ms);
      hooks.on_progress = [this, &conn, &id, throttle](std::uint64_t done,
                                                       std::uint64_t total) {
        if (!throttle->should_send(done, total)) {
          return;
        }
        util::JsonValue frame = make_envelope("progress");
        frame.set("id", id);
        frame.set("done", done);
        frame.set("total", total);
        send_json(conn, frame);  // peer-gone is fine; result send notices
      };
    }
    return canonical_result_payload(experiment.run(hooks));
  });

  util::JsonValue response = make_envelope("result");
  response.set("id", id);
  response.set("cache_hit", outcome.cache_hit);
  response.set("elapsed_ns", timer.elapsed_nanos());
  response.set("result", util::JsonValue::parse(outcome.payload));
  return response;
}

util::JsonValue Server::handle_sweep(Connection& conn,
                                     const util::JsonValue& request) {
  const util::JsonValue* campaign_doc = request.find("campaign");
  if (campaign_doc == nullptr || !campaign_doc->is_object()) {
    return make_error("sweep request needs an object \"campaign\"");
  }
  const util::JsonValue* progress_flag = request.find("progress");
  const bool want_progress =
      progress_flag != nullptr && progress_flag->is_bool() &&
      progress_flag->as_bool();

  const campaign::CampaignSpec campaign =
      campaign::CampaignSpec::from_json(*campaign_doc);
  const std::vector<campaign::PlannedExperiment> planned =
      campaign.expand(registry_);

  util::WallTimer timer;
  util::JsonValue experiments = util::JsonValue::array();
  ProgressThrottle throttle(options_.progress_interval_ms);
  std::size_t executed = 0;
  std::size_t cache_hits = 0;
  // Experiments run in expansion order, each through the shared cache
  // under the daemon's own thread budget; a sweep and concurrent run
  // requests for the same spec single-flight together.
  for (std::size_t i = 0; i < planned.size(); ++i) {
    scenario::ScenarioSpec spec = planned[i].spec;
    const std::string id = spec.identity_hash(registry_);
    spec.threads = options_.threads;
    const CacheOutcome outcome = cache_.get_or_run(id, [&]() -> std::string {
      return canonical_result_payload(
          scenario::Experiment(spec, registry_).run());
    });
    if (outcome.cache_hit) {
      ++cache_hits;
    } else {
      ++executed;
    }
    const util::JsonValue result_doc = util::JsonValue::parse(outcome.payload);
    util::JsonValue entry = util::JsonValue::object();
    entry.set("id", id);
    entry.set("cache_hit", outcome.cache_hit);
    const util::JsonValue* truth = result_doc.find("true_value");
    const util::JsonValue* summary = result_doc.find("summary");
    if (truth != nullptr) {
      entry.set("true_value", *truth);
    }
    if (summary != nullptr && summary->find("mean") != nullptr) {
      entry.set("mean", *summary->find("mean"));
    }
    entry.set("rel_error", payload_rel_error(result_doc));
    experiments.push_back(std::move(entry));
    if (want_progress && throttle.should_send(i + 1, planned.size())) {
      util::JsonValue frame = make_envelope("progress");
      frame.set("id", id);
      frame.set("done", static_cast<std::uint64_t>(i + 1));
      frame.set("total", static_cast<std::uint64_t>(planned.size()));
      send_json(conn, frame);
    }
  }

  util::JsonValue response = make_envelope("sweep_result");
  response.set("name", campaign.name);
  response.set("planned", static_cast<std::uint64_t>(planned.size()));
  response.set("executed", static_cast<std::uint64_t>(executed));
  response.set("cache_hits", static_cast<std::uint64_t>(cache_hits));
  response.set("elapsed_ns", timer.elapsed_nanos());
  response.set("experiments", std::move(experiments));
  return response;
}

util::JsonValue Server::server_info() const {
  util::JsonValue response = make_envelope("server_info");
  response.set("serve_schema", kServeSchema);
  response.set("scenario_schema", "antdense.scenario.v1");
  response.set("journal_schema", campaign::kJournalSchema);
  response.set("port", static_cast<std::uint64_t>(listener_.port()));
  response.set("cache_journal",
               options_.journal_path.empty() ? util::JsonValue()
                                             : options_.journal_path);
  response.set("cache_capacity_bytes", options_.cache_bytes);
  response.set("threads", static_cast<std::uint64_t>(options_.threads));
  response.set("progress_interval_ms",
               static_cast<std::uint64_t>(options_.progress_interval_ms));
  util::JsonValue families = util::JsonValue::array();
  for (const std::string& name : registry_.family_names()) {
    families.push_back(name);
  }
  response.set("topology_families", std::move(families));
  util::JsonValue workloads = util::JsonValue::array();
  for (const std::string& name : scenario::workload_names()) {
    workloads.push_back(name);
  }
  response.set("workloads", std::move(workloads));
  return response;
}

}  // namespace antdense::serve
