// The antdense experiment daemon: a loopback TCP server that answers
// ScenarioSpec / CampaignSpec requests from the two-tier ResultCache,
// executing misses on the repo's existing engines.
//
// Threading model: one accept thread polling {listen fd, wake pipe},
// one thread per connection.  Requests on one connection are handled in
// order; concurrency comes from concurrent connections, whose identical
// requests the cache coalesces onto a single execution (single-flight).
// A per-connection send mutex serializes response and progress frames,
// because trial-grained progress ticks arrive from worker threads.
//
// Request vocabulary (envelope per serve/protocol.hpp):
//
//   {"type": "run", "spec": {...ScenarioSpec keys...},
//    "progress": true?}
//       -> zero or more {"type": "progress", "id", "done", "total"}
//          (only when requested, and only while actually executing)
//       -> {"type": "result", "id", "cache_hit", "elapsed_ns",
//           "result": {canonical scenario document}}
//
//   {"type": "sweep", "campaign": {...CampaignSpec keys...},
//    "progress": true?}
//       -> per-experiment progress frames (done/total count experiments)
//       -> {"type": "sweep_result", "name", "planned", "executed",
//           "cache_hits", "elapsed_ns", "experiments": [{"id",
//           "cache_hit", "true_value", "mean", "rel_error"}...]}
//
//   {"type": "cache_stats"}  -> {"type": "cache_stats", "stats": {...}}
//   {"type": "server_info"}  -> {"type": "server_info", ...}
//   {"type": "shutdown"}     -> {"type": "shutdown_ack"} and the server
//                               begins a clean stop (wait() returns).
//
// Error handling: malformed JSON or an invalid spec answers with one
// {"type": "error", "message"} frame and the connection stays usable;
// framing violations (bad magic, oversized or truncated frame) answer
// with an error frame and close the connection, because the byte stream
// can no longer be re-synchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "serve/cache.hpp"
#include "util/socket.hpp"

namespace antdense::serve {

struct ServerOptions {
  /// Listen port on 127.0.0.1; 0 = OS-assigned (read it back via
  /// Server::port — how tests and CI avoid collisions).
  std::uint16_t port = 0;
  /// Cache journal path; "" = memory-only (no restart survival).
  std::string journal_path;
  /// Tier-1 (in-memory) budget in payload bytes.
  std::uint64_t cache_bytes = 64ull << 20;
  /// Worker threads handed to each executed experiment (overrides the
  /// submitted spec's `threads`, which is not identity anyway); 0 = one
  /// per core.
  unsigned threads = 0;
  /// Round-progress stride forwarded to Experiment's ProgressHooks
  /// (0 = auto).
  std::uint32_t progress_stride = 0;
  /// Minimum milliseconds between progress frames on one request —
  /// per-round progress on a 10^6-round run would otherwise flood the
  /// connection.  The final done == total frame is always delivered.
  /// 0 = unthrottled (every stride tick becomes a frame).
  std::uint32_t progress_interval_ms = 100;
  /// Byte cap for the daemon's trace-event ring (per-request and
  /// cache/journal spans; oldest events drop first).
  std::uint64_t trace_bytes = 4ull << 20;
};

class Server {
 public:
  /// Binds the listener and warms the cache from the journal; throws on
  /// either failing.  Call start() to begin serving.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const ResultCache& cache() const { return cache_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  void start();
  /// Blocks until a shutdown request arrives or `extra_wake_fd` (e.g.
  /// util::termination_wake_fd()) becomes readable.  Does not stop the
  /// server — the caller decides, then calls stop().
  void wait(int extra_wake_fd = -1);
  /// Idempotent: wakes the accept loop, closes every live connection,
  /// and joins all threads.
  void stop();

 private:
  struct Connection {
    util::Socket socket;
    std::mutex send_mutex;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  util::JsonValue handle_request(Connection& conn,
                                 const util::JsonValue& request);
  util::JsonValue handle_run(Connection& conn,
                             const util::JsonValue& request);
  util::JsonValue handle_sweep(Connection& conn,
                               const util::JsonValue& request);
  util::JsonValue server_info() const;
  /// Frame send under the connection's send mutex.
  bool send_json(Connection& conn, const util::JsonValue& doc);

  ServerOptions options_;
  const scenario::Registry& registry_;
  // Telemetry precedes the cache so the cache can hang its counters on
  // the daemon's registry (exported by the `metrics` endpoint).
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
  obs::Telemetry telemetry_;
  ResultCache cache_;
  util::ListenSocket listener_;
  util::WakePipe wake_;           // pokes the accept loop out of poll
  util::WakePipe shutdown_wake_;  // pokes wait() when shutdown arrives
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace antdense::serve
