#include "serve/client.hpp"

#include <stdexcept>

#include "serve/protocol.hpp"

namespace antdense::serve {

Client::Client(std::uint16_t port)
    : socket_(util::Socket::connect_loopback(port)) {}

util::JsonValue Client::request(const util::JsonValue& envelope,
                                const ProgressFn& on_progress) {
  if (!write_frame_json(socket_, envelope)) {
    throw std::runtime_error("serve connection closed before the request "
                             "could be sent");
  }
  std::string payload;
  while (true) {
    const FrameStatus status = read_frame(socket_, payload);
    if (status != FrameStatus::kOk) {
      throw std::runtime_error(std::string("serve connection lost awaiting "
                                           "a response (") +
                               frame_status_name(status) + ")");
    }
    util::JsonValue response = util::JsonValue::parse(payload);
    if (envelope_type(response) == "progress") {
      if (on_progress) {
        const util::JsonValue* done = response.find("done");
        const util::JsonValue* total = response.find("total");
        on_progress(done != nullptr ? done->as_uint() : 0,
                    total != nullptr ? total->as_uint() : 0);
      }
      continue;
    }
    return response;
  }
}

util::JsonValue Client::run(const util::JsonValue& spec, bool want_progress,
                            const ProgressFn& on_progress) {
  util::JsonValue envelope = make_envelope("run");
  envelope.set("spec", spec);
  if (want_progress) {
    envelope.set("progress", true);
  }
  return request(envelope, on_progress);
}

util::JsonValue Client::sweep(const util::JsonValue& campaign,
                              bool want_progress,
                              const ProgressFn& on_progress) {
  util::JsonValue envelope = make_envelope("sweep");
  envelope.set("campaign", campaign);
  if (want_progress) {
    envelope.set("progress", true);
  }
  return request(envelope, on_progress);
}

util::JsonValue Client::cache_stats() {
  return request(make_envelope("cache_stats"));
}

util::JsonValue Client::server_info() {
  return request(make_envelope("server_info"));
}

util::JsonValue Client::metrics() {
  return request(make_envelope("metrics"));
}

util::JsonValue Client::shutdown() {
  return request(make_envelope("shutdown"));
}

}  // namespace antdense::serve
