#include "serve/cache.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace antdense::serve {

util::JsonValue CacheStats::to_json() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("hits_memory", hits_memory);
  doc.set("hits_disk", hits_disk);
  doc.set("hits_total", hits_total());
  doc.set("misses", misses);
  doc.set("coalesced", coalesced);
  doc.set("executions", executions);
  doc.set("evictions", evictions);
  doc.set("entries", entries);
  doc.set("bytes", bytes);
  doc.set("capacity_bytes", capacity_bytes);
  doc.set("in_flight", in_flight);
  doc.set("warm_loaded", warm_loaded);
  doc.set("journal_bytes", journal_bytes);
  return doc;
}

ResultCache::ResultCache(std::string journal_path,
                         std::uint64_t capacity_bytes, std::string cache_name,
                         obs::Telemetry telemetry)
    : journal_path_(std::move(journal_path)),
      cache_name_(std::move(cache_name)),
      capacity_bytes_(capacity_bytes),
      trace_(telemetry.trace) {
  obs::MetricsRegistry* reg = telemetry.metrics;
  if (reg == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    reg = own_registry_.get();
  }
  hits_memory_ = &reg->counter("antdense_cache_hits_total",
                               {{"tier", "memory"}},
                               "Cache hits by serving tier");
  hits_disk_ =
      &reg->counter("antdense_cache_hits_total", {{"tier", "disk"}});
  coalesced_ =
      &reg->counter("antdense_cache_hits_total", {{"tier", "coalesced"}});
  misses_ = &reg->counter("antdense_cache_misses_total", {},
                          "Lookups no tier could serve");
  executions_ = &reg->counter("antdense_cache_executions_total", {},
                              "Executions started for cache misses");
  evictions_ = &reg->counter("antdense_cache_evictions_total", {},
                             "Tier-1 LRU evictions");
  entries_gauge_ =
      &reg->gauge("antdense_cache_entries", {}, "Tier-1 entries resident");
  bytes_gauge_ =
      &reg->gauge("antdense_cache_bytes", {}, "Tier-1 payload bytes resident");
  in_flight_gauge_ = &reg->gauge("antdense_cache_in_flight", {},
                                 "Executions running right now");
  journal_bytes_gauge_ =
      &reg->gauge("antdense_cache_journal_bytes", {},
                  "Disk-tier journal size in bytes (append-only)");
  if (journal_path_.empty()) {
    return;
  }
  // Opening the Journal first gives us its torn-tail truncation: after
  // this, every line in the file is complete, so the offset scan below
  // can trust line boundaries.
  journal_ = std::make_unique<campaign::Journal>(journal_path_);
  // Validate the records through the loader (throws on corruption), then
  // index byte ranges with a second cheap pass.  Two passes keep the
  // loader's validation authoritative without teaching it about offsets.
  const std::vector<util::JsonValue> records =
      campaign::Journal::load(journal_path_);
  std::ifstream in(journal_path_, std::ios::binary);
  std::string line;
  std::uint64_t offset = 0;
  std::size_t record_index = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && record_index < records.size()) {
      const util::JsonValue& record = records[record_index];
      const util::JsonValue* id = record.find("id");
      const util::JsonValue* result = record.find("result");
      if (id != nullptr && id->is_string() && result != nullptr) {
        // Last record wins on duplicate ids (an interrupted writer may
        // have raced a restart); both copies hold identical payloads.
        disk_index_[id->as_string()] = DiskSlot{offset, line.size()};
      }
      ++record_index;
    }
    offset += line.size() + 1;
  }
  file_end_ = offset;
  warm_loaded_ = disk_index_.size();
  journal_bytes_gauge_->set(static_cast<std::int64_t>(file_end_));
}

void ResultCache::update_gauges_locked() {
  entries_gauge_->set(static_cast<std::int64_t>(entries_.size()));
  bytes_gauge_->set(static_cast<std::int64_t>(bytes_));
  in_flight_gauge_->set(static_cast<std::int64_t>(in_flight_.size()));
  journal_bytes_gauge_->set(static_cast<std::int64_t>(file_end_));
}

void ResultCache::insert_memory_locked(const std::string& id,
                                       const std::string& payload) {
  const std::uint64_t cost = payload.size() + id.size();
  if (cost > capacity_bytes_) {
    return;  // would evict everything and still not fit; disk serves it
  }
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    bytes_ -= it->second.payload.size() + id.size();
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  lru_.push_front(id);
  entries_.emplace(id, MemEntry{payload, lru_.begin()});
  bytes_ += cost;
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto vit = entries_.find(victim);
    bytes_ -= vit->second.payload.size() + victim.size();
    entries_.erase(vit);
    lru_.pop_back();
    evictions_->add(1);
  }
  update_gauges_locked();
}

std::string ResultCache::read_disk_slot(const DiskSlot& slot) const {
  std::ifstream in(journal_path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cache journal " + journal_path_ +
                             " disappeared");
  }
  std::string line(slot.length, '\0');
  in.seekg(static_cast<std::streamoff>(slot.offset));
  if (!in.read(line.data(), static_cast<std::streamsize>(slot.length))) {
    throw std::runtime_error("cache journal " + journal_path_ +
                             " shrank under us");
  }
  const util::JsonValue record = util::JsonValue::parse(line);
  const util::JsonValue* result = record.find("result");
  if (result == nullptr) {
    throw std::runtime_error("cache journal record lost its result");
  }
  // dump(0) of the parsed subtree reproduces the canonical payload
  // byte-for-byte (the writer's number formatting round-trips).
  return result->dump(0);
}

bool ResultCache::lookup(const std::string& id, std::string* payload) {
  const obs::SpanScope span(trace_, "cache-lookup", "serve");
  DiskSlot slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_memory_->add(1);
      if (payload != nullptr) {
        *payload = it->second.payload;
      }
      return true;
    }
    auto dit = disk_index_.find(id);
    if (dit == disk_index_.end()) {
      misses_->add(1);
      return false;
    }
    slot = dit->second;
  }
  // Disk read outside the lock: concurrent readers each open their own
  // stream, so one slow read never serializes the whole cache.
  std::string loaded = read_disk_slot(slot);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hits_disk_->add(1);
    insert_memory_locked(id, loaded);
  }
  if (payload != nullptr) {
    *payload = std::move(loaded);
  }
  return true;
}

bool ResultCache::in_memory(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(id) != entries_.end();
}

CacheOutcome ResultCache::get_or_run(
    const std::string& id, const std::function<std::string()>& execute) {
  DiskSlot slot;
  bool from_disk = false;
  std::shared_ptr<InFlight> wait_on;
  std::shared_ptr<InFlight> mine;
  {
    const obs::SpanScope span(trace_, "cache-lookup", "serve");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      hits_memory_->add(1);
      return CacheOutcome{it->second.payload, true};
    }
    auto dit = disk_index_.find(id);
    if (dit != disk_index_.end()) {
      slot = dit->second;
      from_disk = true;
    } else {
      auto fit = in_flight_.find(id);
      if (fit != in_flight_.end()) {
        wait_on = fit->second;
        coalesced_->add(1);
      } else {
        mine = std::make_shared<InFlight>();
        in_flight_.emplace(id, mine);
        misses_->add(1);
        executions_->add(1);
        update_gauges_locked();
      }
    }
  }

  if (from_disk) {
    std::string loaded = read_disk_slot(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hits_disk_->add(1);
      insert_memory_locked(id, loaded);
    }
    return CacheOutcome{std::move(loaded), true};
  }

  if (wait_on) {
    std::unique_lock<std::mutex> flock(wait_on->mutex);
    wait_on->cv.wait(flock, [&] { return wait_on->done; });
    if (wait_on->error) {
      std::rethrow_exception(wait_on->error);
    }
    // Served without executing anything: a hit from the requester's
    // point of view, even though the bytes are seconds old.
    return CacheOutcome{wait_on->payload, true};
  }

  // This request owns the execution; the callback runs lock-free.
  std::string payload;
  std::exception_ptr error;
  try {
    payload = execute();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_.erase(id);
    if (!error) {
      if (journal_) {
        // Journal before publishing: a crash between the two leaves a
        // re-runnable miss, never a memory-only result that a restart
        // silently forgets.
        const obs::SpanScope journal_span(trace_, "journal-append", "serve");
        util::JsonValue record = util::JsonValue::object();
        record.set("schema", campaign::kJournalSchema);
        record.set("campaign", cache_name_);
        record.set("id", id);
        record.set("result", util::JsonValue::parse(payload));
        const std::string line = record.dump(0);
        journal_->append(record);
        disk_index_[id] = DiskSlot{file_end_, line.size()};
        file_end_ += line.size() + 1;
      }
      insert_memory_locked(id, payload);
    }
    update_gauges_locked();
  }
  {
    std::lock_guard<std::mutex> flock(mine->mutex);
    mine->done = true;
    mine->payload = payload;
    mine->error = error;
  }
  mine->cv.notify_all();
  if (error) {
    std::rethrow_exception(error);
  }
  return CacheOutcome{std::move(payload), false};
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.hits_memory = hits_memory_->value();
  out.hits_disk = hits_disk_->value();
  out.misses = misses_->value();
  out.coalesced = coalesced_->value();
  out.executions = executions_->value();
  out.evictions = evictions_->value();
  std::lock_guard<std::mutex> lock(mutex_);
  out.entries = entries_.size();
  out.bytes = bytes_;
  out.capacity_bytes = capacity_bytes_;
  out.in_flight = in_flight_.size();
  out.warm_loaded = warm_loaded_;
  out.journal_bytes = file_end_;
  return out;
}

}  // namespace antdense::serve
