// The serve layer's two-tier content-addressed result cache.
//
// Key: ScenarioSpec::identity_hash — the same 16-hex content hash the
// campaign journal caches on, so "has this exact experiment already
// been computed?" has one answer across the daemon, antdense_sweep, and
// anything else that speaks the identity vocabulary.  Identical specs
// collide by construction (threads excluded, topology canonicalized);
// distinct specs get distinct entries.
//
// Tier 1 — memory: an LRU map bounded by payload bytes.  Hits are a
// map lookup plus a list splice.
//
// Tier 2 — disk: an append-only journal in the campaign-journal format
// ("antdense.campaign.v1" JSONL, torn-tail tolerant), carrying the full
// canonical result document under "result".  On construction the cache
// indexes the journal by byte offset — restart warm-up is an index
// scan, not a result re-computation — and a tier-2 hit seeks, re-parses
// one line, and promotes the payload into tier 1.  Because records are
// canonical compact dumps and the JSON writer's number formatting
// round-trips exactly, a journal-warmed payload is byte-identical to
// the cold one.
//
// Misses run under single-flight dedup: N concurrent requests for one
// id coalesce onto a single execution, the rest block on its completion
// and count as hits (they were served without executing anything).
//
// Thread-safe throughout; the execute callback runs outside all cache
// locks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "campaign/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace antdense::serve {

/// Snapshot for the cache_stats endpoint and the cache tests.  The
/// authoritative counters live on an obs::MetricsRegistry (the
/// daemon's, or a private one when none is supplied); this struct is
/// the endpoint's stable JSON shape read back from them.  Hit
/// accounting: hits_memory + hits_disk + coalesced requests were served
/// without a new execution; misses == executions always (every miss
/// executes exactly once; coalesced waiters are not misses).
struct CacheStats {
  std::uint64_t hits_memory = 0;
  std::uint64_t hits_disk = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;   // waited on another request's execution
  std::uint64_t executions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;        // tier-1 entries right now
  std::uint64_t bytes = 0;          // tier-1 payload bytes right now
  std::uint64_t capacity_bytes = 0;
  std::uint64_t in_flight = 0;      // executions running right now
  std::uint64_t warm_loaded = 0;    // ids indexed from the journal at start
  /// Disk-tier journal size in bytes.  The journal only grows (no
  /// disk-tier eviction yet — ROADMAP item 3), so this is the number
  /// to watch on a long-lived daemon.
  std::uint64_t journal_bytes = 0;

  std::uint64_t hits_total() const {
    return hits_memory + hits_disk + coalesced;
  }

  util::JsonValue to_json() const;
};

/// One answered lookup: the canonical result payload plus whether it
/// was served from cache (memory, disk, or a coalesced wait) rather
/// than executed by this call.
struct CacheOutcome {
  std::string payload;
  bool cache_hit = false;
};

class ResultCache {
 public:
  /// `journal_path` empty = memory-only (no tier 2, nothing survives a
  /// restart); otherwise the journal is created/opened for append and
  /// its existing records are indexed as the warm disk tier.
  /// `cache_name` labels the journal records' "campaign" field.
  /// `telemetry.metrics` hosts the cache's counters/gauges (a private
  /// registry is created when null, so stats() always works);
  /// `telemetry.trace` receives cache-lookup / journal-append spans.
  ResultCache(std::string journal_path, std::uint64_t capacity_bytes,
              std::string cache_name = "antdense_serve",
              obs::Telemetry telemetry = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cache's one verb.  Returns the canonical payload for `id`,
  /// executing `execute` (which must return that payload) only when no
  /// tier holds it and no other request is already computing it.
  /// `execute` runs outside all cache locks; if it throws, every
  /// coalesced waiter rethrows the same exception and the id stays
  /// uncached (the next request retries).
  CacheOutcome get_or_run(const std::string& id,
                          const std::function<std::string()>& execute);

  /// Non-executing lookup (memory, then disk, with promotion); false
  /// when neither tier holds the id.  Counts hit/miss stats.
  bool lookup(const std::string& id, std::string* payload);

  /// Test visibility: whether tier 1 currently holds `id` (no stats
  /// mutation, no promotion).
  bool in_memory(const std::string& id) const;

  CacheStats stats() const;

 private:
  struct DiskSlot {
    std::uint64_t offset = 0;  // byte offset of the record line
    std::uint64_t length = 0;  // line length excluding '\n'
  };
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string payload;
    std::exception_ptr error;
  };

  /// Inserts into tier 1 and evicts from the cold end until the byte
  /// budget holds.  Caller holds mutex_.
  void insert_memory_locked(const std::string& id, const std::string& payload);
  /// Refreshes the level gauges from tier-1/in-flight state.  Caller
  /// holds mutex_.
  void update_gauges_locked();
  /// Reads the record at `slot` and extracts its canonical payload.
  std::string read_disk_slot(const DiskSlot& slot) const;

  const std::string journal_path_;
  const std::string cache_name_;
  const std::uint64_t capacity_bytes_;

  // The counters live on a MetricsRegistry so the daemon's `metrics`
  // endpoint exports them alongside everything else; a cache built
  // without one gets its own private registry.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* hits_memory_ = nullptr;
  obs::Counter* hits_disk_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* coalesced_ = nullptr;
  obs::Counter* executions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* in_flight_gauge_ = nullptr;
  obs::Gauge* journal_bytes_gauge_ = nullptr;
  std::uint64_t warm_loaded_ = 0;

  mutable std::mutex mutex_;
  // Tier 1: lru_ front = hottest; entries_ maps id -> (payload, lru pos).
  std::list<std::string> lru_;
  struct MemEntry {
    std::string payload;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, MemEntry> entries_;
  std::uint64_t bytes_ = 0;
  // Tier 2.
  std::unique_ptr<campaign::Journal> journal_;
  std::unordered_map<std::string, DiskSlot> disk_index_;
  std::uint64_t file_end_ = 0;  // append offset (this cache is the sole writer)
  // Single-flight.
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
};

}  // namespace antdense::serve
