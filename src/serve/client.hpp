// Client side of the serve protocol: a blocking, single-connection
// convenience wrapper used by antdense_query, the serve tests, and the
// CI smoke job.  One Client = one framed connection; requests are
// strictly sequential (send one frame, read frames until the matching
// non-progress response).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/json.hpp"
#include "util/socket.hpp"

namespace antdense::serve {

class Client {
 public:
  /// Progress callback: (done, total) as reported by the server.
  using ProgressFn = std::function<void(std::uint64_t, std::uint64_t)>;

  /// Connects to the daemon on 127.0.0.1:port; throws on refusal.
  explicit Client(std::uint16_t port);

  /// Sends one envelope and returns the first non-"progress" response,
  /// feeding any progress frames to `on_progress`.  Throws
  /// std::runtime_error when the server hangs up mid-exchange.  An
  /// "error" response is returned, not thrown — the caller decides.
  util::JsonValue request(const util::JsonValue& envelope,
                          const ProgressFn& on_progress = {});

  /// {"type": "run"} for `spec` (ScenarioSpec JSON).  `want_progress`
  /// subscribes to round/trial progress frames.
  util::JsonValue run(const util::JsonValue& spec, bool want_progress = false,
                      const ProgressFn& on_progress = {});

  /// {"type": "sweep"} for `campaign` (CampaignSpec JSON).
  util::JsonValue sweep(const util::JsonValue& campaign,
                        bool want_progress = false,
                        const ProgressFn& on_progress = {});

  util::JsonValue cache_stats();
  util::JsonValue server_info();
  /// {"type": "metrics"}: the daemon's live MetricsRegistry snapshot,
  /// as both ordered JSON ("metrics") and Prometheus text
  /// ("prometheus").
  util::JsonValue metrics();
  /// Asks the daemon to stop; returns its shutdown_ack.
  util::JsonValue shutdown();

  /// Escape hatch for the bad-frame tests: the raw connected socket.
  util::Socket& socket() { return socket_; }

 private:
  util::Socket socket_;
};

}  // namespace antdense::serve
