// The wire protocol of the serve layer (schema "antdense.serve.v1").
//
// Transport framing: every message is one frame —
//
//   bytes 0..3   magic "ANTD"
//   bytes 4..7   payload length, unsigned 32-bit little-endian
//   bytes 8..    payload: one UTF-8 JSON document
//
// The magic makes a stray client speaking the wrong protocol fail at
// byte 0 instead of being misread as a gigantic length; the length cap
// (kMaxFrameBytes) bounds what a malicious or broken peer can make the
// daemon allocate.  Framing violations are connection-fatal (the stream
// position is unrecoverable); a payload that frames correctly but fails
// to parse as JSON only fails that one request.
//
// Envelope: every payload is a JSON object with
//   "schema": "antdense.serve.v1"
//   "type":   request —  "run" | "sweep" | "cache_stats" |
//                        "server_info" | "shutdown"
//             response — "result" | "sweep_result" | "progress" |
//                        "cache_stats" | "server_info" |
//                        "shutdown_ack" | "error"
// plus type-specific keys (serve::Server documents each).  Versioning
// is the schema string: a breaking change mints "antdense.serve.v2",
// and v1 peers reject it with a readable error instead of misparsing.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.hpp"
#include "util/socket.hpp"

namespace antdense::serve {

inline constexpr const char* kServeSchema = "antdense.serve.v1";

/// Frame magic, in wire order.
inline constexpr unsigned char kFrameMagic[4] = {'A', 'N', 'T', 'D'};

/// Upper bound on one frame's payload.  Large enough for any result
/// document the repo emits (estimates scale with agents x trials), small
/// enough that a hostile length field cannot OOM the daemon.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// What read_frame observed.  Everything except kOk / kClosed is a
/// framing violation: the byte stream can no longer be trusted, so the
/// server answers with one error frame and drops the connection.
enum class FrameStatus {
  kOk,         // payload filled
  kClosed,     // clean EOF before any frame byte (peer finished)
  kBadMagic,   // first four bytes are not "ANTD"
  kOversized,  // declared length exceeds kMaxFrameBytes
  kTruncated,  // peer vanished mid-frame
};

const char* frame_status_name(FrameStatus status);

/// Writes one frame; false when the peer is gone (never throws for
/// that).  Throws std::invalid_argument when payload exceeds
/// kMaxFrameBytes — that is a caller bug, not a peer condition.
bool write_frame(util::Socket& socket, const std::string& payload);

/// Serializes `doc` compactly and writes it as one frame.
bool write_frame_json(util::Socket& socket, const util::JsonValue& doc);

/// Reads one frame into `payload` (cleared first).
FrameStatus read_frame(util::Socket& socket, std::string& payload);

/// A fresh envelope: {"schema": kServeSchema, "type": type}.
util::JsonValue make_envelope(const std::string& type);

/// An "error" envelope with a human-readable message.
util::JsonValue make_error(const std::string& message);

/// Validates the envelope (object, schema string matches) and returns
/// its "type"; throws std::invalid_argument with a message suitable for
/// an error response otherwise.
std::string envelope_type(const util::JsonValue& doc);

}  // namespace antdense::serve
