#include "serve/protocol.hpp"

#include <cstring>
#include <stdexcept>

namespace antdense::serve {

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kBadMagic:
      return "bad magic";
    case FrameStatus::kOversized:
      return "oversized frame";
    case FrameStatus::kTruncated:
      return "truncated frame";
  }
  return "unknown";
}

bool write_frame(util::Socket& socket, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("serve frame payload exceeds " +
                                std::to_string(kMaxFrameBytes) + " bytes");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char header[8];
  std::memcpy(header, kFrameMagic, 4);
  header[4] = static_cast<unsigned char>(length & 0xFF);
  header[5] = static_cast<unsigned char>((length >> 8) & 0xFF);
  header[6] = static_cast<unsigned char>((length >> 16) & 0xFF);
  header[7] = static_cast<unsigned char>((length >> 24) & 0xFF);
  // One buffer, one send: a frame must never interleave with another
  // thread's frame on the same socket (callers hold a per-connection
  // send lock, but a single syscall also keeps the common case cheap).
  std::string wire;
  wire.reserve(sizeof header + payload.size());
  wire.append(reinterpret_cast<const char*>(header), sizeof header);
  wire.append(payload);
  return socket.send_all(wire.data(), wire.size());
}

bool write_frame_json(util::Socket& socket, const util::JsonValue& doc) {
  return write_frame(socket, doc.dump(0));
}

FrameStatus read_frame(util::Socket& socket, std::string& payload) {
  payload.clear();
  unsigned char header[8];
  // Distinguish "peer finished cleanly" (EOF at a frame boundary) from
  // "peer vanished mid-frame": probe the first byte alone.
  if (!socket.recv_all(header, 1)) {
    return FrameStatus::kClosed;
  }
  if (!socket.recv_all(header + 1, sizeof header - 1)) {
    return FrameStatus::kTruncated;
  }
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    return FrameStatus::kBadMagic;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(header[4]) |
                               (static_cast<std::uint32_t>(header[5]) << 8) |
                               (static_cast<std::uint32_t>(header[6]) << 16) |
                               (static_cast<std::uint32_t>(header[7]) << 24);
  if (length > kMaxFrameBytes) {
    return FrameStatus::kOversized;
  }
  payload.resize(length);
  if (length > 0 && !socket.recv_all(payload.data(), length)) {
    payload.clear();
    return FrameStatus::kTruncated;
  }
  return FrameStatus::kOk;
}

util::JsonValue make_envelope(const std::string& type) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", kServeSchema);
  doc.set("type", type);
  return doc;
}

util::JsonValue make_error(const std::string& message) {
  util::JsonValue doc = make_envelope("error");
  doc.set("message", message);
  return doc;
}

std::string envelope_type(const util::JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("serve message must be a JSON object");
  }
  const util::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kServeSchema) {
    throw std::invalid_argument(std::string("serve message must carry "
                                            "\"schema\": \"") +
                                kServeSchema + "\"");
  }
  const util::JsonValue* type = doc.find("type");
  if (type == nullptr || !type->is_string() || type->as_string().empty()) {
    throw std::invalid_argument(
        "serve message must carry a non-empty string \"type\"");
  }
  return type->as_string();
}

}  // namespace antdense::serve
