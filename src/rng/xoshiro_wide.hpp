// Wide (multi-lane) xoshiro256++ generation for the vector walk engine
// (sim/vector_walk.hpp): kWideLanes independent xoshiro256++ streams
// advanced in lockstep over structure-of-arrays state, emitting their
// outputs lane-interleaved.  This turns the per-agent "call the scalar
// generator" hot-path cost into one wide update per kWideLanes words —
// the batched recomputable-randomness idea KaGen-style generators use,
// applied to the round loop.
//
// Stream contract (pinned in tests/test_rng_wide.cpp):
//   - Lane l of XoshiroWide(root) is bit-identical to
//     Xoshiro256pp(derive_seed(root, kVectorLaneTag, l)) — lane streams
//     are ordinary scalar streams at domain-tagged derived seeds, so
//     their independence story is exactly the shard-stream one
//     (rng/stream.hpp).
//   - The emitted word sequence is lane-interleaved: word i of the
//     stream comes from lane (i mod kWideLanes), draw (i / kWideLanes).
//   - generate() and generate_portable() produce identical words.  The
//     AVX2 path (compiled when __AVX2__ is set, e.g. -mavx2 or
//     -DANTDENSE_AVX2=ON) is an implementation detail, never an
//     identity: vector-engine goldens hold on every build.
//
// WideStream adapts the block generator to the BitGenerator64 concept
// (buffered operator()) plus a bulk fill(), so scalar draw algorithms
// (Lemire rejection, bernoulli, placement) and vector step kernels can
// consume the *same* word sequence in the same order.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace antdense::rng {

/// Lane count of the wide generator.  8 lanes = two 4x64-bit AVX2
/// registers per state word, and a convenient unroll for the portable
/// fallback.  Part of the stream contract: changing it re-goldens the
/// vector engine.
inline constexpr std::size_t kWideLanes = 8;

/// Domain-separation tag for vector-engine lane streams ("VECLANES"):
/// keeps lane seeds disjoint from shard streams (kShardStreamTag),
/// trial seeds, and the 0x51/0x52 driver tags.
inline constexpr std::uint64_t kVectorLaneTag = 0x5645434C414E4553ULL;

/// kWideLanes xoshiro256++ streams advanced in lockstep.  State is
/// stored lane-major per word (SoA) so both the portable loop and the
/// AVX2 path touch contiguous memory.
class XoshiroWide {
 public:
  explicit XoshiroWide(std::uint64_t root) {
    for (std::size_t l = 0; l < kWideLanes; ++l) {
      const Xoshiro256pp lane(derive_seed(root, kVectorLaneTag,
                                          static_cast<std::uint64_t>(l)));
      for (int w = 0; w < 4; ++w) {
        state_[w][l] = lane.state()[w];
      }
    }
  }

  /// Writes `count` words (a multiple of kWideLanes) lane-interleaved
  /// into `dst`, advancing every lane count / kWideLanes draws.
  /// Dispatches to AVX2 when compiled in, else the portable loop.
  void generate(std::uint64_t* dst, std::size_t count) {
#if defined(__AVX2__)
    generate_avx2(dst, count);
#else
    generate_portable(dst, count);
#endif
  }

  /// The unrolled-u64-lane fallback, compiled on every platform.  The
  /// SIMD/fallback equality contract: generate() == generate_portable()
  /// word for word from equal states (tests/test_rng_wide.cpp).
  void generate_portable(std::uint64_t* dst, std::size_t count) {
    std::uint64_t s0[kWideLanes];
    std::uint64_t s1[kWideLanes];
    std::uint64_t s2[kWideLanes];
    std::uint64_t s3[kWideLanes];
    std::memcpy(s0, state_[0].data(), sizeof(s0));
    std::memcpy(s1, state_[1].data(), sizeof(s1));
    std::memcpy(s2, state_[2].data(), sizeof(s2));
    std::memcpy(s3, state_[3].data(), sizeof(s3));
    for (std::size_t i = 0; i < count; i += kWideLanes) {
      for (std::size_t l = 0; l < kWideLanes; ++l) {
        dst[i + l] = rotl(s0[l] + s3[l], 23) + s0[l];
      }
      for (std::size_t l = 0; l < kWideLanes; ++l) {
        const std::uint64_t t = s1[l] << 17;
        s2[l] ^= s0[l];
        s3[l] ^= s1[l];
        s1[l] ^= s2[l];
        s0[l] ^= s3[l];
        s2[l] ^= t;
        s3[l] = rotl(s3[l], 45);
      }
    }
    std::memcpy(state_[0].data(), s0, sizeof(s0));
    std::memcpy(state_[1].data(), s1, sizeof(s1));
    std::memcpy(state_[2].data(), s2, sizeof(s2));
    std::memcpy(state_[3].data(), s3, sizeof(s3));
  }

#if defined(__AVX2__)
  /// AVX2 path: each xoshiro state word is two 4-lane vectors; one loop
  /// iteration emits kWideLanes words with vector add/xor/shift/rotate.
  void generate_avx2(std::uint64_t* dst, std::size_t count) {
    __m256i s0a = load(state_[0].data());
    __m256i s0b = load(state_[0].data() + 4);
    __m256i s1a = load(state_[1].data());
    __m256i s1b = load(state_[1].data() + 4);
    __m256i s2a = load(state_[2].data());
    __m256i s2b = load(state_[2].data() + 4);
    __m256i s3a = load(state_[3].data());
    __m256i s3b = load(state_[3].data() + 4);
    for (std::size_t i = 0; i < count; i += kWideLanes) {
      const __m256i ra =
          _mm256_add_epi64(vrotl<23>(_mm256_add_epi64(s0a, s3a)), s0a);
      const __m256i rb =
          _mm256_add_epi64(vrotl<23>(_mm256_add_epi64(s0b, s3b)), s0b);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), ra);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), rb);
      const __m256i ta = _mm256_slli_epi64(s1a, 17);
      const __m256i tb = _mm256_slli_epi64(s1b, 17);
      s2a = _mm256_xor_si256(s2a, s0a);
      s2b = _mm256_xor_si256(s2b, s0b);
      s3a = _mm256_xor_si256(s3a, s1a);
      s3b = _mm256_xor_si256(s3b, s1b);
      s1a = _mm256_xor_si256(s1a, s2a);
      s1b = _mm256_xor_si256(s1b, s2b);
      s0a = _mm256_xor_si256(s0a, s3a);
      s0b = _mm256_xor_si256(s0b, s3b);
      s2a = _mm256_xor_si256(s2a, ta);
      s2b = _mm256_xor_si256(s2b, tb);
      s3a = vrotl<45>(s3a);
      s3b = vrotl<45>(s3b);
    }
    store(state_[0].data(), s0a);
    store(state_[0].data() + 4, s0b);
    store(state_[1].data(), s1a);
    store(state_[1].data() + 4, s1b);
    store(state_[2].data(), s2a);
    store(state_[2].data() + 4, s2b);
    store(state_[3].data(), s3a);
    store(state_[3].data() + 4, s3b);
  }
#endif

  /// Lane l's state, for the lane-equality tests.
  std::array<std::uint64_t, 4> lane_state(std::size_t lane) const {
    return {state_[0][lane], state_[1][lane], state_[2][lane],
            state_[3][lane]};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

#if defined(__AVX2__)
  template <int K>
  static __m256i vrotl(__m256i x) {
    return _mm256_or_si256(_mm256_slli_epi64(x, K),
                           _mm256_srli_epi64(x, 64 - K));
  }
  static __m256i load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
#endif

  std::array<std::array<std::uint64_t, kWideLanes>, 4> state_;
};

/// Buffered adapter over XoshiroWide: a single flat word stream that can
/// be consumed one word at a time (operator(), satisfying BitGenerator64
/// so every scalar draw helper works unchanged) or in bulk (fill(), used
/// by the vector step kernels).  Both paths pop the same sequence in
/// order, so mixing them is well-defined — the property that lets the
/// vector engine run scalar Lemire rejection and wide step kernels off
/// one reproducible stream.
class WideStream {
 public:
  using result_type = std::uint64_t;
  static constexpr std::size_t kBufferWords = 256;
  static_assert(kBufferWords % kWideLanes == 0);

  explicit WideStream(std::uint64_t root) : wide_(root) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() {
    if (pos_ == filled_) {
      wide_.generate(buffer_, kBufferWords);
      filled_ = kBufferWords;
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

  /// Pops out.size() words in stream order: buffered words first, then
  /// whole wide blocks straight into `out`, then a fresh buffer for the
  /// tail.  Equivalent to out.size() operator() calls.
  void fill(std::span<std::uint64_t> out) {
    std::size_t done = 0;
    const std::size_t n = out.size();
    while (done < n && pos_ < filled_) {
      out[done++] = buffer_[pos_++];
    }
    const std::size_t direct = ((n - done) / kWideLanes) * kWideLanes;
    if (direct > 0) {
      wide_.generate(out.data() + done, direct);
      done += direct;
    }
    while (done < n) {
      if (pos_ == filled_) {
        wide_.generate(buffer_, kBufferWords);
        filled_ = kBufferWords;
        pos_ = 0;
      }
      out[done++] = buffer_[pos_++];
    }
  }

 private:
  XoshiroWide wide_;
  std::uint64_t buffer_[kBufferWords];
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace antdense::rng
