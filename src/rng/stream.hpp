// Deterministic per-shard RNG stream derivation for the sharded walk
// engine (sim/sharded_walk.hpp).
//
// derive_stream(root, shard) maps a walk's stream seed plus a shard
// index to the seed of that shard's private generator.  It is the
// engine-level analogue of the campaign layer's derive_seed(campaign
// seed, identity hash): randomness is keyed by *which* unit of work is
// running (the shard), never by which thread happens to run it, so the
// merged output is bit-identical for any worker count.
//
// Two properties are part of the contract and pinned by
// tests/test_rng_stream.cpp:
//   1. Stability: the mapping is pure 64-bit integer arithmetic
//      (SplitMix64 mixing), so it yields the same values on every
//      platform, compiler, and word size.  Golden values are hardcoded
//      in the tests; changing this function re-goldens every sharded
//      walk.
//   2. Independence: a domain-separation tag keeps shard streams
//      well-separated from every other derive_seed user (trial seeds,
//      the 0x51/0x52 driver tags, campaign experiment seeds), and the
//      SplitMix64 avalanche keeps adjacent shard indices statistically
//      independent (moment checks in the tests).
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace antdense::rng {

/// Domain-separation tag for shard streams ("SHRDSTRM" in ASCII): no
/// other derive_seed call site uses this index, so shard streams can
/// never collide with trial or driver streams derived from the same
/// root.
inline constexpr std::uint64_t kShardStreamTag = 0x534852445354524DULL;

/// Seed for shard `shard`'s private generator within the walk stream
/// rooted at `root`.  Deterministic, platform-stable, and independent
/// across shards.
constexpr std::uint64_t derive_stream(std::uint64_t root,
                                      std::uint64_t shard) {
  return derive_seed(root, kShardStreamTag, shard);
}

/// Domain-separation tag for the dynamics mutation stream ("DYNMUTAT"
/// in ASCII).  World mutation (edge churn, node failure, agent
/// birth/death, sensing drift — sim/dynamics.hpp) draws from a stream
/// derived with this tag, never from the walk stream itself, so a
/// scenario with dynamics disabled consumes exactly the historical walk
/// stream and stays bit-identical to its static goldens.
inline constexpr std::uint64_t kMutationStreamTag = 0x44594E4D55544154ULL;

/// Seed for the serial mutation-phase generator of a walk whose engine
/// stream is rooted at `root`, for the dynamics model seeded with
/// `model_seed`.  Deterministic, platform-stable, and independent of
/// every walk/shard/trial stream derived from the same root.
constexpr std::uint64_t derive_mutation_stream(std::uint64_t root,
                                               std::uint64_t model_seed) {
  return derive_seed(root, kMutationStreamTag, model_seed);
}

}  // namespace antdense::rng
