// xoshiro256++ 1.0 (Blackman & Vigna 2019) — the library's workhorse
// engine.  Chosen for speed (sub-ns per draw), 256-bit state, and a
// long-jump function that provides 2^128 well-separated subsequences.
// Satisfies std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace antdense::rng {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state through SplitMix64 as recommended by the
  /// xoshiro authors (avoids the all-zero state for every seed value).
  explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x6A09E667F3BCC908ULL) {
    SplitMix64 mix(seed);
    for (auto& word : state_) {
      word = mix();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^192 draws; successive long_jump()s yield
  /// independent streams suitable for distinct agents.
  constexpr void long_jump() {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
        0x39109BB02ACBE635ULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) {
            acc[i] ^= state_[i];
          }
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace antdense::rng
