// Distribution helpers on top of a uniform bit generator.
//
// uniform_below uses Lemire's multiply-shift rejection method: unbiased,
// one multiplication in the common case, no modulo in the hot loop.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace antdense::rng {

template <typename G>
concept BitGenerator64 = requires(G g) {
  { g() } -> std::same_as<std::uint64_t>;
};

/// Unbiased uniform integer in [0, bound).
///
/// Precondition: bound >= 1.  An empty range has no uniform sample, and
/// the rejection threshold computes (2^64 mod bound) as
/// `(0 - bound) % bound` — a division by zero when bound == 0.  Debug
/// builds assert; release builds return 0 instead of dividing by zero,
/// so a violated precondition stays deterministic rather than UB.
template <BitGenerator64 G>
inline std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
#ifndef NDEBUG
  ANTDENSE_ASSERT(bound >= 1, "uniform_below requires bound >= 1");
#endif
  if (bound == 0) [[unlikely]] {
    return 0;
  }
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

namespace detail {

/// Pops out.size() words from the generator, using its bulk fill()
/// member when it has one (rng::WideStream), else sequential calls.
template <BitGenerator64 G>
inline void fill_words(G& gen, std::span<std::uint64_t> out) {
  if constexpr (requires { gen.fill(out); }) {
    gen.fill(out);
  } else {
    for (std::uint64_t& w : out) {
      w = gen();
    }
  }
}

/// Word source that replays a buffered prefix before falling through to
/// the live generator — the replay device that keeps batched Lemire
/// rejection word-for-word compatible with sequential draws.
template <BitGenerator64 G>
struct ReplayThenGen {
  const std::uint64_t* words;
  std::size_t count;
  std::size_t pos;
  G* gen;
  std::uint64_t operator()() {
    return pos < count ? words[pos++] : (*gen)();
  }
};

}  // namespace detail

/// Batched uniform_below with a shared bound: out[i] gets the value the
/// i-th sequential uniform_below(gen, bound) call would produce — same
/// draws, same order.  The fast path draws a block of words in bulk and
/// multiplies straight through; iff any word lands under the rejection
/// threshold (probability (2^64 mod bound)/2^64 per word, ~0 for the
/// small bounds topologies use), that block is recomputed sequentially
/// over the already-drawn words, consuming extra words exactly where the
/// scalar loop would.  Precondition: bound >= 1 (see uniform_below).
template <BitGenerator64 G>
inline void uniform_below_batch(G& gen, std::uint64_t bound,
                                std::span<std::uint64_t> out) {
#ifndef NDEBUG
  ANTDENSE_ASSERT(bound >= 1, "uniform_below_batch requires bound >= 1");
#endif
  if (bound == 0) [[unlikely]] {
    std::fill(out.begin(), out.end(), std::uint64_t{0});
    return;
  }
  const std::uint64_t threshold = (0 - bound) % bound;
  constexpr std::size_t kBlock = 256;
  std::uint64_t words[kBlock];
  for (std::size_t done = 0; done < out.size();) {
    const std::size_t m = std::min(kBlock, out.size() - done);
    detail::fill_words(gen, {words, m});
    bool reject = false;
    for (std::size_t j = 0; j < m; ++j) {
      const __uint128_t prod = static_cast<__uint128_t>(words[j]) * bound;
      out[done + j] = static_cast<std::uint64_t>(prod >> 64);
      reject |= static_cast<std::uint64_t>(prod) < threshold;
    }
    if (reject) [[unlikely]] {
      detail::ReplayThenGen<G> src{words, m, 0, &gen};
      for (std::size_t j = 0; j < m; ++j) {
        out[done + j] = uniform_below(src, bound);
      }
    }
    done += m;
  }
}

/// Batched uniform_below with per-element bounds (irregular-degree
/// families): out[i] gets what uniform_below(gen, bounds[i]) would
/// produce sequentially.  Same optimistic-block / sequential-replay
/// scheme as the shared-bound overload; the per-element threshold is
/// only computed on the rare low < bound path, so the fast path does
/// one multiply and one compare per element.
template <BitGenerator64 G>
inline void uniform_below_batch(G& gen, std::span<const std::uint64_t> bounds,
                                std::span<std::uint64_t> out) {
  ANTDENSE_CHECK(bounds.size() == out.size(),
                 "uniform_below_batch needs equal-sized spans");
  constexpr std::size_t kBlock = 256;
  std::uint64_t words[kBlock];
  for (std::size_t done = 0; done < out.size();) {
    const std::size_t m = std::min(kBlock, out.size() - done);
    detail::fill_words(gen, {words, m});
    bool reject = false;
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t bound = bounds[done + j];
#ifndef NDEBUG
      ANTDENSE_ASSERT(bound >= 1, "uniform_below_batch requires bounds >= 1");
#endif
      const __uint128_t prod = static_cast<__uint128_t>(words[j]) * bound;
      const auto low = static_cast<std::uint64_t>(prod);
      out[done + j] = static_cast<std::uint64_t>(prod >> 64);
      if (low < bound) [[unlikely]] {
        reject |= bound == 0 || low < (0 - bound) % bound;
      }
    }
    if (reject) [[unlikely]] {
      detail::ReplayThenGen<G> src{words, m, 0, &gen};
      for (std::size_t j = 0; j < m; ++j) {
        out[done + j] = uniform_below(src, bounds[done + j]);
      }
    }
    done += m;
  }
}

/// Uniform integer in [lo, hi] inclusive.  The span hi - lo + 1 must not
/// wrap to zero, i.e. the full 64-bit range [INT64_MIN, INT64_MAX] is
/// excluded — that span violates uniform_below's bound >= 1 precondition.
template <BitGenerator64 G>
inline std::int64_t uniform_int(G& gen, std::int64_t lo, std::int64_t hi) {
  ANTDENSE_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(gen, span));
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <BitGenerator64 G>
inline double uniform_unit(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <BitGenerator64 G>
inline double uniform_real(G& gen, double lo, double hi) {
  ANTDENSE_CHECK(lo < hi, "uniform_real requires lo < hi");
  return lo + (hi - lo) * uniform_unit(gen);
}

/// Bernoulli trial with success probability p in [0, 1].
template <BitGenerator64 G>
inline bool bernoulli(G& gen, double p) {
  return uniform_unit(gen) < p;
}

/// One unbiased coin flip.
template <BitGenerator64 G>
inline bool coin_flip(G& gen) {
  return (gen() >> 63) != 0;
}

/// Binomial(n, p) sample: the number of successes in n independent
/// Bernoulli(p) trials, drawn without iterating all n trials.  Uses the
/// geometric-skip (second waiting time) method — each uniform draw jumps
/// over a geometric run of failures — so the expected cost is
/// O(n * min(p, 1-p) + 1) draws instead of n.  The engine uses this to
/// collapse the per-partner detection-miss loop into one call per agent.
template <BitGenerator64 G>
inline std::uint64_t binomial(G& gen, std::uint64_t n, double p) {
  ANTDENSE_CHECK(p >= 0.0 && p <= 1.0, "binomial probability must be in [0,1]");
  if (n == 0 || p == 0.0) {
    return 0;
  }
  if (p == 1.0) {
    return n;
  }
  if (p > 0.5) {
    return n - binomial(gen, n, 1.0 - p);
  }
  const double log_q = std::log1p(-p);  // log(1-p) < 0
  std::uint64_t successes = 0;
  std::uint64_t trials_used = 0;
  while (true) {
    const double u = uniform_unit(gen);
    // Failures before the next success: Geometric(p) on {0, 1, 2, ...}.
    const double skip = std::floor(std::log1p(-u) / log_q);
    if (skip >= static_cast<double>(n - trials_used)) {
      break;  // the next success would land beyond trial n
    }
    trials_used += static_cast<std::uint64_t>(skip) + 1;
    ++successes;
    if (trials_used >= n) {
      break;
    }
  }
  return successes;
}

/// Fisher–Yates shuffle.
template <BitGenerator64 G, typename T>
inline void shuffle(G& gen, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = uniform_below(gen, i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Samples k distinct indices from [0, n) without replacement
/// (Floyd's algorithm for k << n; falls back to partial shuffle).
template <BitGenerator64 G>
std::vector<std::uint64_t> sample_without_replacement(G& gen, std::uint64_t n,
                                                      std::uint64_t k);

}  // namespace antdense::rng

#include "rng/random_impl.hpp"
