// Distribution helpers on top of a uniform bit generator.
//
// uniform_below uses Lemire's multiply-shift rejection method: unbiased,
// one multiplication in the common case, no modulo in the hot loop.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace antdense::rng {

template <typename G>
concept BitGenerator64 = requires(G g) {
  { g() } -> std::same_as<std::uint64_t>;
};

/// Unbiased uniform integer in [0, bound).  bound must be >= 1.
template <BitGenerator64 G>
inline std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] inclusive.
template <BitGenerator64 G>
inline std::int64_t uniform_int(G& gen, std::int64_t lo, std::int64_t hi) {
  ANTDENSE_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(gen, span));
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <BitGenerator64 G>
inline double uniform_unit(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <BitGenerator64 G>
inline double uniform_real(G& gen, double lo, double hi) {
  ANTDENSE_CHECK(lo < hi, "uniform_real requires lo < hi");
  return lo + (hi - lo) * uniform_unit(gen);
}

/// Bernoulli trial with success probability p in [0, 1].
template <BitGenerator64 G>
inline bool bernoulli(G& gen, double p) {
  return uniform_unit(gen) < p;
}

/// One unbiased coin flip.
template <BitGenerator64 G>
inline bool coin_flip(G& gen) {
  return (gen() >> 63) != 0;
}

/// Fisher–Yates shuffle.
template <BitGenerator64 G, typename T>
inline void shuffle(G& gen, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = uniform_below(gen, i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Samples k distinct indices from [0, n) without replacement
/// (Floyd's algorithm for k << n; falls back to partial shuffle).
template <BitGenerator64 G>
std::vector<std::uint64_t> sample_without_replacement(G& gen, std::uint64_t n,
                                                      std::uint64_t k);

}  // namespace antdense::rng

#include "rng/random_impl.hpp"
