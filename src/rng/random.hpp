// Distribution helpers on top of a uniform bit generator.
//
// uniform_below uses Lemire's multiply-shift rejection method: unbiased,
// one multiplication in the common case, no modulo in the hot loop.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace antdense::rng {

template <typename G>
concept BitGenerator64 = requires(G g) {
  { g() } -> std::same_as<std::uint64_t>;
};

/// Unbiased uniform integer in [0, bound).  bound must be >= 1.
template <BitGenerator64 G>
inline std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] inclusive.
template <BitGenerator64 G>
inline std::int64_t uniform_int(G& gen, std::int64_t lo, std::int64_t hi) {
  ANTDENSE_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(gen, span));
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <BitGenerator64 G>
inline double uniform_unit(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <BitGenerator64 G>
inline double uniform_real(G& gen, double lo, double hi) {
  ANTDENSE_CHECK(lo < hi, "uniform_real requires lo < hi");
  return lo + (hi - lo) * uniform_unit(gen);
}

/// Bernoulli trial with success probability p in [0, 1].
template <BitGenerator64 G>
inline bool bernoulli(G& gen, double p) {
  return uniform_unit(gen) < p;
}

/// One unbiased coin flip.
template <BitGenerator64 G>
inline bool coin_flip(G& gen) {
  return (gen() >> 63) != 0;
}

/// Binomial(n, p) sample: the number of successes in n independent
/// Bernoulli(p) trials, drawn without iterating all n trials.  Uses the
/// geometric-skip (second waiting time) method — each uniform draw jumps
/// over a geometric run of failures — so the expected cost is
/// O(n * min(p, 1-p) + 1) draws instead of n.  The engine uses this to
/// collapse the per-partner detection-miss loop into one call per agent.
template <BitGenerator64 G>
inline std::uint64_t binomial(G& gen, std::uint64_t n, double p) {
  ANTDENSE_CHECK(p >= 0.0 && p <= 1.0, "binomial probability must be in [0,1]");
  if (n == 0 || p == 0.0) {
    return 0;
  }
  if (p == 1.0) {
    return n;
  }
  if (p > 0.5) {
    return n - binomial(gen, n, 1.0 - p);
  }
  const double log_q = std::log1p(-p);  // log(1-p) < 0
  std::uint64_t successes = 0;
  std::uint64_t trials_used = 0;
  while (true) {
    const double u = uniform_unit(gen);
    // Failures before the next success: Geometric(p) on {0, 1, 2, ...}.
    const double skip = std::floor(std::log1p(-u) / log_q);
    if (skip >= static_cast<double>(n - trials_used)) {
      break;  // the next success would land beyond trial n
    }
    trials_used += static_cast<std::uint64_t>(skip) + 1;
    ++successes;
    if (trials_used >= n) {
      break;
    }
  }
  return successes;
}

/// Fisher–Yates shuffle.
template <BitGenerator64 G, typename T>
inline void shuffle(G& gen, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = uniform_below(gen, i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Samples k distinct indices from [0, n) without replacement
/// (Floyd's algorithm for k << n; falls back to partial shuffle).
template <BitGenerator64 G>
std::vector<std::uint64_t> sample_without_replacement(G& gen, std::uint64_t n,
                                                      std::uint64_t k);

}  // namespace antdense::rng

#include "rng/random_impl.hpp"
