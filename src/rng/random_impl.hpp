// Out-of-line template implementations for random.hpp.
#pragma once

#include <algorithm>
#include <unordered_set>

namespace antdense::rng {

template <BitGenerator64 G>
std::vector<std::uint64_t> sample_without_replacement(G& gen, std::uint64_t n,
                                                      std::uint64_t k) {
  ANTDENSE_CHECK(k <= n, "cannot sample more items than the population");
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k == 0) {
    return out;
  }
  // For dense sampling a partial Fisher–Yates over an explicit index array
  // is cheaper than rejection; for sparse sampling use Floyd's algorithm.
  if (k * 4 >= n) {
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      idx[i] = i;
    }
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + uniform_below(gen, n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_below(gen, j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace antdense::rng
