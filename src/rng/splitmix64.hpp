// SplitMix64 generator (Steele, Lea, Flood 2014).
//
// Used in two roles:
//   1. seeding xoshiro256++ state from a single 64-bit seed, and
//   2. deriving independent child streams from (root seed, index...) so
//      that every agent and every Monte Carlo trial gets reproducible,
//      well-separated randomness regardless of thread scheduling.
#pragma once

#include <cstdint>

namespace antdense::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix64's output mixer on its own: a cheap full-avalanche 64-bit
/// hash.  Both collision counters key their probe sequences off this
/// exact function — they must agree (serial/sharded parity tests assume
/// identical hashing), which is why it lives here once.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash-combines a root seed with stream indices into a new 64-bit seed.
/// derive_seed(s, a, b) != derive_seed(s, b, a) by construction, and the
/// avalanche properties of SplitMix64's mixer keep adjacent indices
/// statistically independent.
constexpr std::uint64_t derive_seed(std::uint64_t root) {
  SplitMix64 mix(root);
  return mix();
}

template <typename... Rest>
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index,
                                    Rest... rest) {
  SplitMix64 mix(root ^ (index + 0x9E3779B97F4A7C15ULL));
  std::uint64_t mixed = mix();
  if constexpr (sizeof...(rest) == 0) {
    return mixed;
  } else {
    return derive_seed(mixed, rest...);
  }
}

}  // namespace antdense::rng
