#include "scenario/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "core/density_estimator.hpp"
#include "core/property_frequency.hpp"
#include "obs/telemetry.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/ball_density.hpp"
#include "scenario/dynamics_registry.hpp"
#include "sim/density_sim.hpp"
#include "sim/dynamic_world.hpp"
#include "sim/sharded_walk.hpp"
#include "sim/trial_runner.hpp"
#include "sim/vector_walk.hpp"
#include "sim/walk_engine.hpp"
#include "stats/accumulator.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace antdense::scenario {

namespace {

ScenarioSummary summarize(const std::vector<double>& estimates,
                          double true_value, double eps) {
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  ScenarioSummary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.sample_stddev();
  s.standard_error = acc.standard_error();
  s.min = acc.count() == 0 ? 0.0 : acc.min();
  s.max = acc.count() == 0 ? 0.0 : acc.max();
  std::uint64_t within = 0;
  for (double e : estimates) {
    if (std::fabs(e - true_value) <= eps * true_value) {
      ++within;
    }
  }
  s.within_eps = estimates.empty()
                     ? 0.0
                     : static_cast<double>(within) /
                           static_cast<double>(estimates.size());
  return s;
}

/// Round-grained progress tap for the single-walk workloads.  Its only
/// hook is end_round, which all three engines fire serially, and it
/// draws no randomness — so riding it alongside the workload observers
/// leaves every result stream bit-identical to the plain run.
struct RoundProgressObserver {
  RoundProgressObserver(const ProgressHooks& hooks, std::uint64_t total_rounds)
      : hooks_(hooks), total_(total_rounds) {
    stride_ = hooks.round_stride != 0
                  ? hooks.round_stride
                  : static_cast<std::uint32_t>(
                        std::max<std::uint64_t>(1, total_rounds / 64));
  }

  void end_round(std::uint32_t round) {
    if (hooks_.on_progress && (round % stride_ == 0 || round == total_)) {
      hooks_.on_progress(round, total_);
    }
  }

 private:
  const ProgressHooks& hooks_;
  std::uint64_t total_;
  std::uint32_t stride_;
};

/// Trial-grained progress tap for the fan-out workloads: one tick per
/// finished trial, reported from whichever worker ran it.
struct TrialProgress {
  TrialProgress(const ProgressHooks& hooks, std::uint64_t total_trials)
      : hooks_(hooks), total_(total_trials) {}

  std::function<void(std::size_t)> callback() {
    if (!hooks_.on_progress) {
      return {};
    }
    return [this](std::size_t) {
      hooks_.on_progress(done_.fetch_add(1, std::memory_order_relaxed) + 1,
                         total_);
    };
  }

 private:
  const ProgressHooks& hooks_;
  std::uint64_t total_;
  std::atomic<std::uint64_t> done_{0};
};

sim::DensityConfig density_config(const ScenarioSpec& spec) {
  sim::DensityConfig cfg;
  cfg.num_agents = spec.agents;
  cfg.rounds = spec.rounds;
  cfg.lazy_probability = spec.lazy_probability;
  cfg.detection_miss_probability = spec.sensing.detection_miss;
  cfg.spurious_collision_probability = spec.sensing.spurious;
  cfg.observation_dropout_probability = spec.sensing.dropout;
  return cfg;
}

}  // namespace

util::JsonValue ScenarioResult::to_json() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "antdense.scenario.v1");
  doc.set("spec", spec.to_json());
  doc.set("topology", topology_name);
  doc.set("num_nodes", num_nodes);
  doc.set("workload", workload_name(spec.workload));
  doc.set("rounds", spec.rounds);
  doc.set("true_value", true_value);

  util::JsonValue summary_doc = util::JsonValue::object();
  summary_doc.set("count", summary.count);
  summary_doc.set("mean", summary.mean);
  summary_doc.set("stddev", summary.stddev);
  summary_doc.set("standard_error", summary.standard_error);
  summary_doc.set("min", summary.min);
  summary_doc.set("max", summary.max);
  summary_doc.set("within_eps", summary.within_eps);
  doc.set("summary", summary_doc);

  util::JsonValue estimates_doc = util::JsonValue::array();
  for (double e : estimates) {
    estimates_doc.push_back(e);
  }
  doc.set("estimates", estimates_doc);

  util::JsonValue checkpoints_doc = util::JsonValue::array();
  for (std::uint32_t c : checkpoints) {
    checkpoints_doc.push_back(c);
  }
  doc.set("checkpoints", checkpoints_doc);

  util::JsonValue series_doc = util::JsonValue::array();
  for (const auto& trace : series) {
    util::JsonValue trace_doc = util::JsonValue::array();
    for (double v : trace) {
      trace_doc.push_back(v);
    }
    series_doc.push_back(std::move(trace_doc));
  }
  doc.set("series", series_doc);

  doc.set("elapsed_seconds", elapsed_seconds);
  doc.set("elapsed_ns", elapsed_ns);
  return doc;
}

Experiment::Experiment(ScenarioSpec spec)
    : Experiment(std::move(spec), Registry::built_in()) {}

Experiment::Experiment(ScenarioSpec spec, const Registry& registry)
    : spec_(std::move(spec)), topo_(registry.make(spec_.topology)) {
  spec_.validate();
  spec_.topology = registry.canonical(spec_.topology);
  if (!spec_.dynamics.empty()) {
    // Canonicalize like the topology so journals and caches key on one
    // spelling; this is also where an unknown model (or any dynamics
    // spec on an ANTDENSE_DYNAMICS=OFF build) is rejected.
    spec_.dynamics = DynamicsRegistry::built_in().canonical(spec_.dynamics);
    ANTDENSE_CHECK(spec_.workload == Workload::kDensity,
                   "dynamics models apply to the density workload only");
  }
  ANTDENSE_CHECK(spec_.workload == Workload::kDensity ||
                     !spec_.sensing.any(),
                 "sensing-noise knobs (miss, spurious, dropout) apply to "
                 "the density workload only");
  ANTDENSE_CHECK(spec_.trials == 1 ||
                     spec_.workload == Workload::kDensity ||
                     spec_.workload == Workload::kProperty,
                 "trials > 1 applies to the density and property "
                 "workloads only (trajectory and local-density record "
                 "one walk)");
  spec_.tracked = std::min(spec_.tracked, spec_.agents);
  if (spec_.rounds == 0) {
    const double density = static_cast<double>(spec_.agents - 1) /
                           static_cast<double>(topo_.num_nodes());
    spec_.rounds = core::plan_rounds(spec_.eps, spec_.delta, density,
                                     topo_.num_nodes());
  }
}

ScenarioResult Experiment::run() const { return run(ProgressHooks{}); }

ScenarioResult Experiment::run(const ProgressHooks& hooks) const {
  util::WallTimer timer;
  // Trace the whole workload as one span (RNG-neutral: a trace scope
  // observes wall time only).  The ambient bundle is also what the
  // property fan-out below re-installs inside its workers.
  obs::Telemetry* telemetry = obs::ambient_telemetry();
  obs::SpanScope workload_span(
      telemetry != nullptr ? telemetry->trace : nullptr,
      workload_name(spec_.workload), "scenario");
  ScenarioResult result;
  result.spec = spec_;
  result.topology_name = topo_.name();
  result.num_nodes = topo_.num_nodes();
  result.true_value = static_cast<double>(spec_.agents - 1) /
                      static_cast<double>(topo_.num_nodes());

  switch (spec_.workload) {
    case Workload::kDensity: {
      // Dynamic worlds run through the dynamics-aware pipeline: the walk
      // stream is the exact static stream (tag 0x51), the model mutates
      // between rounds from its own derived stream, and each fan-out
      // trial builds a fresh model from the canonical spec so trials
      // stay independent and order-free.  validate() already rejected
      // engine=vector here.
      if (!spec_.dynamics.empty()) {
        const DynamicsRegistry& models = DynamicsRegistry::built_in();
        if (spec_.trials == 1) {
          RoundProgressObserver progress(hooks, spec_.rounds);
          const std::unique_ptr<sim::WorldDynamics> model =
              models.make(spec_.dynamics, topo_, spec_.agents);
          if (spec_.engine == EngineMode::kSharded) {
            result.estimates = sim::run_dynamic_density_walk_sharded(
                topo_, density_config(spec_), *model, spec_.seed,
                sim::ShardExec{.threads = spec_.threads}, progress);
          } else {
            result.estimates = sim::run_dynamic_density_walk(
                topo_, density_config(spec_), *model, spec_.seed, progress);
          }
        } else {
          TrialProgress progress(hooks, spec_.trials);
          const std::function<void(std::size_t)> on_trial_done =
              progress.callback();
          std::vector<std::vector<double>> per_trial(spec_.trials);
          util::parallel_for(
              spec_.trials,
              [&](std::size_t trial) {
                obs::ScopedTelemetry ambient(telemetry);
                const std::uint64_t trial_seed =
                    rng::derive_seed(spec_.seed, trial);
                const std::unique_ptr<sim::WorldDynamics> model =
                    models.make(spec_.dynamics, topo_, spec_.agents);
                if (spec_.engine == EngineMode::kSharded) {
                  per_trial[trial] = sim::run_dynamic_density_walk_sharded(
                      topo_, density_config(spec_), *model, trial_seed,
                      sim::ShardExec{.threads = 1});
                } else {
                  per_trial[trial] = sim::run_dynamic_density_walk(
                      topo_, density_config(spec_), *model, trial_seed);
                }
                if (on_trial_done) {
                  on_trial_done(trial);
                }
              },
              spec_.threads);
          for (const auto& v : per_trial) {
            result.estimates.insert(result.estimates.end(), v.begin(),
                                    v.end());
          }
        }
        break;
      }
      // Single-stream, one trial matches run_density_walk(seed) exactly;
      // fan-outs pool derived per-trial streams through the parallel
      // trial runner.  The sharded engine keeps its own (thread-count-
      // invariant) stream: one trial parallelizes within the walk, fan-
      // outs parallelize across trials and run each walk's shards
      // serially — the estimates are identical either way.
      if (spec_.trials == 1) {
        RoundProgressObserver progress(hooks, spec_.rounds);
        switch (spec_.engine) {
          case EngineMode::kSharded:
            result.estimates =
                sim::run_density_walk_sharded(
                    topo_, density_config(spec_), spec_.seed,
                    sim::ShardExec{.threads = spec_.threads}, nullptr,
                    progress)
                    .estimates();
            break;
          case EngineMode::kVector:
            result.estimates =
                sim::run_density_walk_vector(topo_, density_config(spec_),
                                             spec_.seed, sim::VectorExec{},
                                             nullptr, progress)
                    .estimates();
            break;
          case EngineMode::kSingleStream:
            result.estimates =
                sim::run_density_walk(topo_, density_config(spec_),
                                      spec_.seed, nullptr, progress)
                    .estimates();
            break;
        }
      } else {
        TrialProgress progress(hooks, spec_.trials);
        if (spec_.engine == EngineMode::kSharded) {
          result.estimates = sim::collect_all_agent_estimates_sharded(
              topo_, density_config(spec_), spec_.seed, spec_.trials,
              spec_.threads, progress.callback());
        } else if (spec_.engine == EngineMode::kVector) {
          result.estimates = sim::collect_all_agent_estimates_vector(
              topo_, density_config(spec_), spec_.seed, spec_.trials,
              spec_.threads, progress.callback());
        } else {
          result.estimates = sim::collect_all_agent_estimates(
              topo_, density_config(spec_), spec_.seed, spec_.trials,
              spec_.threads, progress.callback());
        }
      }
      break;
    }

    case Workload::kProperty: {
      // estimate_property_frequency with the spec's trial fan-out and
      // lazy knob: same property-assignment stream (tag 0xF00D), one
      // derived seed per trial, bit-identical for any thread count.
      const auto num_property = static_cast<std::uint32_t>(
          std::lround(spec_.property_fraction * spec_.agents));
      std::vector<std::vector<double>> per_trial(spec_.trials);
      double truth = 0.0;
      TrialProgress progress(hooks, spec_.trials);
      const std::function<void(std::size_t)> on_trial_done =
          progress.callback();
      util::parallel_for(
          spec_.trials,
          [&](std::size_t trial) {
            // parallel_for workers have no ambient telemetry of their
            // own; propagate the experiment's bundle so engine taps
            // fire inside each trial.
            obs::ScopedTelemetry ambient(telemetry);
            const std::uint64_t trial_seed =
                spec_.trials == 1 ? spec_.seed
                                  : rng::derive_seed(spec_.seed, trial);
            rng::Xoshiro256pp assign_gen(
                rng::derive_seed(trial_seed, 0xF00Du));
            std::vector<bool> has_property(spec_.agents, false);
            for (std::uint64_t idx : rng::sample_without_replacement(
                     assign_gen, spec_.agents, num_property)) {
              has_property[idx] = true;
            }
            const sim::PropertyResult raw = [&] {
              switch (spec_.engine) {
                case EngineMode::kSharded:
                  return sim::run_property_walk_sharded(
                      topo_, density_config(spec_), has_property, trial_seed,
                      sim::ShardExec{.threads = spec_.trials == 1
                                         ? spec_.threads
                                         : 1});
                case EngineMode::kVector:
                  return sim::run_property_walk_vector(
                      topo_, density_config(spec_), has_property, trial_seed);
                case EngineMode::kSingleStream:
                default:
                  return sim::run_property_walk(topo_, density_config(spec_),
                                                has_property, trial_seed);
              }
            }();
            std::vector<double>& freq = per_trial[trial];
            freq.reserve(spec_.agents);
            for (std::uint32_t i = 0; i < spec_.agents; ++i) {
              const auto c = static_cast<double>(raw.total_counts[i]);
              const auto cp = static_cast<double>(raw.property_counts[i]);
              freq.push_back(c == 0.0 ? 0.0 : cp / c);
            }
            if (trial == 0) {
              truth = static_cast<double>(num_property) /
                      static_cast<double>(spec_.agents - 1);
            }
            if (on_trial_done) {
              on_trial_done(trial);
            }
          },
          spec_.threads);
      result.true_value = truth;
      result.estimates.reserve(static_cast<std::size_t>(spec_.trials) *
                               spec_.agents);
      for (const auto& v : per_trial) {
        result.estimates.insert(result.estimates.end(), v.begin(), v.end());
      }
      break;
    }

    case Workload::kTrajectory: {
      // run_trajectory plus the lazy knob: same observers, same seed tag,
      // so the unperturbed scenario matches sim::run_trajectory exactly.
      result.checkpoints = spec_.checkpoint_rounds(spec_.rounds);
      sim::CollisionObserver counts(spec_.agents);
      sim::TrajectoryObserver trajectory(counts, spec_.tracked,
                                         result.checkpoints);
      sim::WalkConfig cfg;
      cfg.num_agents = spec_.agents;
      cfg.rounds = result.checkpoints.back();
      cfg.lazy_probability = spec_.lazy_probability;
      RoundProgressObserver progress(hooks, cfg.rounds);
      if (spec_.engine == EngineMode::kSharded) {
        sim::run_walk_sharded(
            topo_, cfg, rng::derive_seed(spec_.seed, 0x7124u),
            sim::ShardExec{.threads = spec_.threads},
            static_cast<const std::vector<std::uint64_t>*>(nullptr), counts,
            trajectory, progress);
      } else if (spec_.engine == EngineMode::kVector) {
        sim::run_walk_vector(
            topo_, cfg, rng::derive_seed(spec_.seed, 0x7124u),
            sim::VectorExec{},
            static_cast<const std::vector<std::uint64_t>*>(nullptr), counts,
            trajectory, progress);
      } else {
        sim::run_walk(topo_, cfg, rng::derive_seed(spec_.seed, 0x7124u),
                      static_cast<const std::vector<std::uint64_t>*>(nullptr),
                      counts, trajectory, progress);
      }
      result.series = trajectory.take_estimates();
      for (const auto& trace : result.series) {
        result.estimates.push_back(trace.back());
      }
      break;
    }

    case Workload::kLocalDensity: {
      result.checkpoints = spec_.checkpoint_rounds(spec_.rounds);
      BallDensityObserver balls(topo_, spec_.radius, result.checkpoints,
                                spec_.agents);
      sim::WalkConfig cfg;
      cfg.num_agents = spec_.agents;
      cfg.rounds = result.checkpoints.back();
      cfg.lazy_probability = spec_.lazy_probability;
      RoundProgressObserver progress(hooks, cfg.rounds);
      if (spec_.engine == EngineMode::kSharded) {
        sim::run_walk_sharded(
            topo_, cfg, rng::derive_seed(spec_.seed, 0x10Du),
            sim::ShardExec{.threads = spec_.threads},
            static_cast<const std::vector<std::uint64_t>*>(nullptr), balls,
            progress);
      } else if (spec_.engine == EngineMode::kVector) {
        sim::run_walk_vector(
            topo_, cfg, rng::derive_seed(spec_.seed, 0x10Du),
            sim::VectorExec{},
            static_cast<const std::vector<std::uint64_t>*>(nullptr), balls,
            progress);
      } else {
        sim::run_walk(topo_, cfg, rng::derive_seed(spec_.seed, 0x10Du),
                      static_cast<const std::vector<std::uint64_t>*>(nullptr),
                      balls, progress);
      }
      const std::vector<std::vector<double>> densities =
          balls.take_densities();
      result.estimates = densities.back();
      result.series.resize(spec_.tracked);
      for (std::uint32_t a = 0; a < spec_.tracked; ++a) {
        result.series[a].reserve(densities.size());
        for (const auto& row : densities) {
          result.series[a].push_back(row[a]);
        }
      }
      break;
    }
  }

  result.summary = summarize(result.estimates, result.true_value, spec_.eps);
  result.elapsed_seconds = timer.elapsed_seconds();
  result.elapsed_ns = timer.elapsed_nanos();
  return result;
}

}  // namespace antdense::scenario
