#include "scenario/dynamics_registry.hpp"

#include <charconv>
#include <limits>
#include <utility>

#include "sim/dynamic_world.hpp"
#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::scenario {

namespace {

// Diagnostics contract, matching the topology registry (see
// tests/test_dynamics.cpp): every parse error names the model AND the
// offending key=value, so a failed sweep axis is attributable from the
// message alone.

[[noreturn]] void throw_param_error(const std::string& model,
                                    const std::string& detail) {
  throw std::invalid_argument("dynamics spec '" + model + "': " + detail);
}

/// Strict uint parse: the whole token must be digits so "1e4" or
/// trailing garbage fail loudly.
std::uint64_t parse_u64(const std::string& model, const std::string& key,
                        const std::string& token) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (token.empty() || ec != std::errc{} || ptr != end) {
    throw_param_error(model, "parameter '" + key + "=" + token +
                                 "': expected an unsigned integer");
  }
  return value;
}

/// Strict double parse for the probability parameters.
double parse_f64(const std::string& model, const std::string& key,
                 const std::string& token) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (token.empty() || ec != std::errc{} || ptr != end) {
    throw_param_error(model, "parameter '" + key + "=" + token +
                                 "': expected a real number");
  }
  return value;
}

/// One typed field of a "k=v,k=v" parameter list.
struct KvField {
  enum class Kind { kU64, kF64 };
  std::string key;
  Kind kind = Kind::kU64;
  bool required = false;
  std::uint64_t u64_default = 0;
  double f64_default = 0.0;
};

struct KvValues {
  std::vector<std::uint64_t> u64s;  // indexed like the field schema
  std::vector<double> f64s;
};

/// Parses "k=v,k=v" against a typed schema (later duplicates win).
/// Every diagnostic carries the model and the offending key=value.
KvValues parse_kv(const std::string& model, const std::string& params,
                  const std::vector<KvField>& fields) {
  KvValues values;
  values.u64s.resize(fields.size());
  values.f64s.resize(fields.size());
  std::vector<bool> seen(fields.size(), false);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    values.u64s[i] = fields[i].u64_default;
    values.f64s[i] = fields[i].f64_default;
  }
  std::size_t start = 0;
  while (start <= params.size()) {
    const std::size_t comma = params.find(',', start);
    const std::string item =
        params.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw_param_error(model, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string token = item.substr(eq + 1);
    bool matched = false;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].key == key) {
        if (fields[i].kind == KvField::Kind::kU64) {
          values.u64s[i] = parse_u64(model, key, token);
        } else {
          values.f64s[i] = parse_f64(model, key, token);
        }
        seen[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::string known;
      for (const auto& f : fields) {
        known += (known.empty() ? "" : ", ") + f.key;
      }
      throw_param_error(model, "unknown parameter '" + key + "=" + token +
                                   "' (expected: " + known + ")");
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].required && !seen[i]) {
      throw_param_error(model, "missing required parameter '" +
                                   fields[i].key + "'");
    }
  }
  return values;
}

/// Range guard whose message carries model, key, and value.
void check_range(bool ok, const std::string& model, const std::string& key,
                 const std::string& value, const std::string& expectation) {
  if (!ok) {
    throw_param_error(model, "parameter '" + key + "=" + value +
                                 "': " + expectation);
  }
}

KvField u64_field(std::string key, bool required,
                  std::uint64_t fallback = 0) {
  return {.key = std::move(key), .kind = KvField::Kind::kU64,
          .required = required, .u64_default = fallback};
}

KvField f64_field(std::string key, bool required, double fallback = 0.0) {
  return {.key = std::move(key), .kind = KvField::Kind::kF64,
          .required = required, .f64_default = fallback};
}

#if ANTDENSE_DYNAMICS

/// churn grammar.  mean_down defaults to 10 rounds; the canonical
/// spelling makes both optional parameters explicit so parameter order
/// and omitted defaults never split the identity hash.
const std::vector<KvField>& churn_fields() {
  static const std::vector<KvField> fields = {
      f64_field("p_edge", /*required=*/true),
      f64_field("p_fail", /*required=*/true),
      u64_field("mean_down", /*required=*/false, 10),
      u64_field("seed", /*required=*/false, 0)};
  return fields;
}

struct ChurnParams {
  double p_edge = 0.0;
  double p_fail = 0.0;
  std::uint32_t mean_down = 10;
  std::uint64_t seed = 0;
};

ChurnParams parse_churn(const std::string& params) {
  const KvValues v = parse_kv("churn", params, churn_fields());
  ChurnParams out;
  out.p_edge = v.f64s[0];
  out.p_fail = v.f64s[1];
  check_range(out.p_edge >= 0.0 && out.p_edge <= 1.0, "churn", "p_edge",
              util::format_shortest(out.p_edge), "must be in [0,1]");
  check_range(out.p_fail >= 0.0 && out.p_fail <= 1.0, "churn", "p_fail",
              util::format_shortest(out.p_fail), "must be in [0,1]");
  check_range(v.u64s[2] >= 1 &&
                  v.u64s[2] <= std::numeric_limits<std::uint32_t>::max(),
              "churn", "mean_down", std::to_string(v.u64s[2]),
              "must be in [1, 2^32)");
  out.mean_down = static_cast<std::uint32_t>(v.u64s[2]);
  out.seed = v.u64s[3];
  return out;
}

const std::vector<KvField>& drift_fields() {
  static const std::vector<KvField> fields = {
      f64_field("p_death", /*required=*/true),
      f64_field("p_birth", /*required=*/true),
      u64_field("seed", /*required=*/false, 0)};
  return fields;
}

struct DriftParams {
  double p_death = 0.0;
  double p_birth = 0.0;
  std::uint64_t seed = 0;
};

DriftParams parse_drift(const std::string& params) {
  const KvValues v = parse_kv("drift", params, drift_fields());
  DriftParams out{.p_death = v.f64s[0], .p_birth = v.f64s[1],
                  .seed = v.u64s[2]};
  check_range(out.p_death >= 0.0 && out.p_death <= 1.0, "drift", "p_death",
              util::format_shortest(out.p_death), "must be in [0,1]");
  check_range(out.p_birth >= 0.0 && out.p_birth <= 1.0, "drift", "p_birth",
              util::format_shortest(out.p_birth), "must be in [0,1]");
  return out;
}

const std::vector<KvField>& fade_fields() {
  static const std::vector<KvField> fields = {
      f64_field("p0", /*required=*/true),
      f64_field("step", /*required=*/true),
      u64_field("seed", /*required=*/false, 0)};
  return fields;
}

struct FadeParams {
  double p0 = 0.0;
  double step = 0.0;
  std::uint64_t seed = 0;
};

FadeParams parse_fade(const std::string& params) {
  const KvValues v = parse_kv("fade", params, fade_fields());
  FadeParams out{.p0 = v.f64s[0], .step = v.f64s[1], .seed = v.u64s[2]};
  check_range(out.p0 >= 0.0 && out.p0 <= 1.0, "fade", "p0",
              util::format_shortest(out.p0), "must be in [0,1]");
  check_range(out.step >= 0.0 && out.step <= 1.0, "fade", "step",
              util::format_shortest(out.step), "must be in [0,1]");
  return out;
}

#endif  // ANTDENSE_DYNAMICS

DynamicsRegistry make_built_in() {
  DynamicsRegistry reg;

#if ANTDENSE_DYNAMICS
  reg.register_family(
      "churn",
      {.make =
           [](const std::string& params, const graph::AnyTopology& topo,
              std::uint32_t /*agents*/)
               -> std::unique_ptr<sim::WorldDynamics> {
             const ChurnParams p = parse_churn(params);
             return std::make_unique<sim::ChurnDynamics>(
                 topo, p.p_edge, p.p_fail, p.mean_down, p.seed);
           },
       .canonical =
           [](const std::string& params) {
             const ChurnParams p = parse_churn(params);
             // Matches ChurnDynamics::name() byte for byte.
             return "churn:p_edge=" + util::format_shortest(p.p_edge) +
                    ",p_fail=" + util::format_shortest(p.p_fail) +
                    ",mean_down=" + std::to_string(p.mean_down) +
                    ",seed=" + std::to_string(p.seed);
           },
       .grammar = "churn:p_edge=P,p_fail=P[,mean_down=R][,seed=S] — edge "
                  "churn + node failure "
                  "(e.g. churn:p_edge=0.001,p_fail=0.0005)"});

  reg.register_family(
      "drift",
      {.make =
           [](const std::string& params, const graph::AnyTopology& topo,
              std::uint32_t agents) -> std::unique_ptr<sim::WorldDynamics> {
             const DriftParams p = parse_drift(params);
             return std::make_unique<sim::DriftDynamics>(
                 topo, agents, p.p_death, p.p_birth, p.seed);
           },
       .canonical =
           [](const std::string& params) {
             const DriftParams p = parse_drift(params);
             return "drift:p_death=" + util::format_shortest(p.p_death) +
                    ",p_birth=" + util::format_shortest(p.p_birth) +
                    ",seed=" + std::to_string(p.seed);
           },
       .grammar = "drift:p_death=P,p_birth=P[,seed=S] — agent birth/death "
                  "under population drift "
                  "(e.g. drift:p_death=0.01,p_birth=0.01)"});

  reg.register_family(
      "fade",
      {.make =
           [](const std::string& params, const graph::AnyTopology& /*topo*/,
              std::uint32_t agents) -> std::unique_ptr<sim::WorldDynamics> {
             const FadeParams p = parse_fade(params);
             return std::make_unique<sim::FadeDynamics>(agents, p.p0, p.step,
                                                        p.seed);
           },
       .canonical =
           [](const std::string& params) {
             const FadeParams p = parse_fade(params);
             return "fade:p0=" + util::format_shortest(p.p0) +
                    ",step=" + util::format_shortest(p.step) +
                    ",seed=" + std::to_string(p.seed);
           },
       .grammar = "fade:p0=P,step=P[,seed=S] — per-agent time-varying "
                  "detection-miss probability "
                  "(e.g. fade:p0=0.1,step=0.02)"});
#endif  // ANTDENSE_DYNAMICS

  return reg;
}

}  // namespace

const DynamicsRegistry& DynamicsRegistry::built_in() {
  static const DynamicsRegistry reg = make_built_in();
  return reg;
}

void DynamicsRegistry::register_family(const std::string& name,
                                       Family family) {
  ANTDENSE_CHECK(!name.empty() && name.find(':') == std::string::npos,
                 "model name must be non-empty and colon-free");
  ANTDENSE_CHECK(family.make != nullptr && family.canonical != nullptr,
                 "model family needs both make and canonical");
  families_[name] = std::move(family);
}

bool DynamicsRegistry::has_family(const std::string& name) const {
  return families_.count(name) > 0;
}

const std::string& DynamicsRegistry::grammar(const std::string& name) const {
  const auto it = families_.find(name);
  ANTDENSE_CHECK(it != families_.end(),
                 "unknown dynamics model '" + name + "'");
  return it->second.grammar;
}

std::vector<std::string> DynamicsRegistry::family_names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    out.push_back(name);
  }
  return out;
}

const DynamicsRegistry::Family& DynamicsRegistry::family_for(
    const std::string& spec, std::string* params) const {
  const std::size_t colon = spec.find(':');
  ANTDENSE_CHECK(colon != std::string::npos && colon > 0,
                 "dynamics spec '" + spec +
                     "' must look like model:params "
                     "(e.g. churn:p_edge=0.001,p_fail=0.0005)");
  const std::string model = spec.substr(0, colon);
  const auto it = families_.find(model);
  if (it == families_.end()) {
    std::string known;
    for (const auto& [name, f] : families_) {
      known += (known.empty() ? "" : ", ") + name;
    }
    throw std::invalid_argument(
        "unknown dynamics model '" + model + "' (known: " +
        (known.empty() ? "none — built without ANTDENSE_DYNAMICS" : known) +
        ")");
  }
  *params = spec.substr(colon + 1);
  return it->second;
}

std::unique_ptr<sim::WorldDynamics> DynamicsRegistry::make(
    const std::string& spec, const graph::AnyTopology& topo,
    std::uint32_t agents) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.make(params, topo, agents);
}

std::string DynamicsRegistry::canonical(const std::string& spec) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.canonical(params);
}

}  // namespace antdense::scenario
