// Runtime topology construction from spec strings.
//
// A topology spec is "family:params" — one string selects the substrate
// at runtime, so every paper figure can run on every graph family
// without recompiling:
//
//   torus2d:64x64                   2-D torus, width x height (Section 2)
//   ring:10000                      1-D torus (Section 4.2)
//   toruskd:3x22                    k-dim torus, k x side (Section 4.3)
//   hypercube:14                    k-dim hypercube (Section 4.5)
//   complete:4096                   complete graph (Section 1.1)
//   expander:d=8,n=100000,seed=7    random d-regular graph (Section 4.4)
//   rgg2d:n=1000000,r=0.002,seed=1  implicit toroidal geometric graph
//   gnp:n=2000,p=0.01,seed=1        implicit Erdős–Rényi G(n, p)
//   ba:n=5000,d=4,seed=1            implicit Barabási–Albert graph
//
// The Registry maps family names to factories producing
// graph::AnyTopology handles; built_in() carries the nine families above
// and register_family extends the vocabulary at runtime (new substrates
// plug into antdense_run without touching the driver).  canonical()
// re-emits the normalized spelling of a spec (real-valued parameters as
// their shortest exact round-trip decimal), so specs round-trip and
// malformed input fails with a precise std::invalid_argument naming the
// family and the offending key=value.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"

namespace antdense::scenario {

class Registry {
 public:
  struct Family {
    /// Builds the topology from the text after "family:".
    std::function<graph::AnyTopology(const std::string& params)> make;
    /// Parses the params and re-emits the canonical "family:..." spec.
    std::function<std::string(const std::string& params)> canonical;
    /// Human-readable canonical spec grammar plus an example, e.g.
    /// "torus2d:WIDTHxHEIGHT (e.g. torus2d:64x64)" — what
    /// `antdense_run --list-topologies` prints so sweep authors can
    /// discover valid campaign axis values.  Optional.
    std::string grammar;
  };

  /// The registry holding the nine built-in families.
  static const Registry& built_in();

  /// Registers (or replaces) a family under `name`.
  void register_family(const std::string& name, Family family);

  bool has_family(const std::string& name) const;
  std::vector<std::string> family_names() const;
  /// The registered grammar line for `name` (empty when the family did
  /// not provide one); throws std::invalid_argument on unknown names.
  const std::string& grammar(const std::string& name) const;

  /// Parses "family:params" and builds the topology.  Throws
  /// std::invalid_argument on an unknown family or malformed params.
  graph::AnyTopology make(const std::string& spec) const;

  /// Parses and re-serializes the spec into its canonical spelling
  /// (idempotent; same error behavior as make).
  std::string canonical(const std::string& spec) const;

 private:
  const Family& family_for(const std::string& spec,
                           std::string* params) const;

  std::map<std::string, Family> families_;
};

}  // namespace antdense::scenario
