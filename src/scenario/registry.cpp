#include "scenario/registry.hpp"

#include <charconv>
#include <limits>
#include <memory>
#include <utility>

#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "util/check.hpp"

namespace antdense::scenario {

namespace {

/// Strict uint parse: the whole token must be digits (no sign, no
/// trailing garbage) so "64x64x3" or "1e4" fail loudly.
std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  ANTDENSE_CHECK(!token.empty() && ec == std::errc{} && ptr == end,
                 "topology spec: expected an unsigned integer for " + what +
                     ", got '" + token + "'");
  return value;
}

/// parse_u64 narrowed to the 32-bit constructor parameters; out-of-range
/// values throw instead of silently wrapping to a different substrate.
std::uint32_t narrow_u32(std::uint64_t value, const std::string& what) {
  ANTDENSE_CHECK(value <= std::numeric_limits<std::uint32_t>::max(),
                 "topology spec: " + what + " value " +
                     std::to_string(value) + " exceeds the 32-bit range");
  return static_cast<std::uint32_t>(value);
}

/// Splits "AxB" into two strict uints.
std::pair<std::uint64_t, std::uint64_t> parse_pair(const std::string& params,
                                                   const std::string& what) {
  const auto x = params.find('x');
  ANTDENSE_CHECK(x != std::string::npos,
                 "topology spec: expected '" + what + "', got '" + params +
                     "'");
  return {parse_u64(params.substr(0, x), what),
          parse_u64(params.substr(x + 1), what)};
}

/// Parses "k=v,k=v" with exactly the keys in `keys` (later duplicates
/// win); `required` marks which must be present, others default to
/// `defaults`.
std::vector<std::uint64_t> parse_kv(const std::string& params,
                                    const std::vector<std::string>& keys,
                                    const std::vector<bool>& required,
                                    const std::vector<std::uint64_t>& defaults) {
  std::vector<std::uint64_t> values = defaults;
  std::vector<bool> seen(keys.size(), false);
  std::size_t start = 0;
  while (start <= params.size()) {
    const std::size_t comma = params.find(',', start);
    const std::string item =
        params.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    const std::size_t eq = item.find('=');
    ANTDENSE_CHECK(eq != std::string::npos,
                   "topology spec: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    bool matched = false;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        values[i] = parse_u64(item.substr(eq + 1), key);
        seen[i] = true;
        matched = true;
        break;
      }
    }
    ANTDENSE_CHECK(matched, "topology spec: unknown parameter '" + key + "'");
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ANTDENSE_CHECK(!required[i] || seen[i],
                   "topology spec: missing required parameter '" + keys[i] +
                       "'");
  }
  return values;
}

Registry make_built_in() {
  Registry reg;

  reg.register_family(
      "torus2d",
      {.make =
           [](const std::string& params) {
             const auto [w, h] = parse_pair(params, "WIDTHxHEIGHT");
             return graph::AnyTopology(graph::Torus2D(
                 narrow_u32(w, "width"), narrow_u32(h, "height")));
           },
       .canonical =
           [](const std::string& params) {
             const auto [w, h] = parse_pair(params, "WIDTHxHEIGHT");
             return "torus2d:" + std::to_string(w) + "x" + std::to_string(h);
           },
       .grammar = "torus2d:WIDTHxHEIGHT (2-D torus, Section 2; "
                  "e.g. torus2d:64x64)"});

  reg.register_family(
      "ring", {.make =
                   [](const std::string& params) {
                     return graph::AnyTopology(
                         graph::Ring(parse_u64(params, "NODES")));
                   },
               .canonical =
                   [](const std::string& params) {
                     return "ring:" +
                            std::to_string(parse_u64(params, "NODES"));
                   },
               .grammar = "ring:NODES (1-D torus, Section 4.2; "
                          "e.g. ring:10000)"});

  reg.register_family(
      "hypercube",
      {.make =
           [](const std::string& params) {
             return graph::AnyTopology(graph::Hypercube(
                 narrow_u32(parse_u64(params, "DIMS"), "DIMS")));
           },
       .canonical =
           [](const std::string& params) {
             return "hypercube:" + std::to_string(parse_u64(params, "DIMS"));
           },
       .grammar = "hypercube:DIMS (k-dim hypercube, Section 4.5; "
                  "e.g. hypercube:14)"});

  reg.register_family(
      "toruskd",
      {.make =
           [](const std::string& params) {
             const auto [k, side] = parse_pair(params, "DIMSxSIDE");
             return graph::AnyTopology(graph::TorusKD(
                 narrow_u32(k, "DIMS"), narrow_u32(side, "SIDE")));
           },
       .canonical =
           [](const std::string& params) {
             const auto [k, side] = parse_pair(params, "DIMSxSIDE");
             return "toruskd:" + std::to_string(k) + "x" +
                    std::to_string(side);
           },
       .grammar = "toruskd:DIMSxSIDE (k-dim torus, Section 4.3; "
                  "e.g. toruskd:3x22)"});

  reg.register_family(
      "complete",
      {.make =
           [](const std::string& params) {
             return graph::AnyTopology(
                 graph::CompleteGraph(parse_u64(params, "NODES")));
           },
       .canonical =
           [](const std::string& params) {
             return "complete:" + std::to_string(parse_u64(params, "NODES"));
           },
       .grammar = "complete:NODES (complete graph, Section 1.1; "
                  "e.g. complete:4096)"});

  const std::vector<std::string> expander_keys = {"d", "n", "seed"};
  const std::vector<bool> expander_required = {true, true, false};
  const std::vector<std::uint64_t> expander_defaults = {0, 0, 1};
  reg.register_family(
      "expander",
      {.make =
           [=](const std::string& params) {
             const auto v = parse_kv(params, expander_keys,
                                     expander_required, expander_defaults);
             // The explicit graph is owned by the handle (payload), so
             // the spec string is the only lifetime the caller manages.
             auto g = std::make_shared<graph::Graph>(
                 graph::make_random_regular_graph(narrow_u32(v[1], "n"),
                                                  narrow_u32(v[0], "d"),
                                                  v[2]));
             return graph::AnyTopology::with_payload(
                 graph::ExplicitTopology(*g, "expander"), g);
           },
       .canonical =
           [=](const std::string& params) {
             const auto v = parse_kv(params, expander_keys,
                                     expander_required, expander_defaults);
             return "expander:d=" + std::to_string(v[0]) +
                    ",n=" + std::to_string(v[1]) +
                    ",seed=" + std::to_string(v[2]);
           },
       .grammar = "expander:d=DEGREE,n=NODES[,seed=S] (random d-regular "
                  "graph, Section 4.4; e.g. expander:d=8,n=100000,seed=7)"});

  return reg;
}

}  // namespace

const Registry& Registry::built_in() {
  static const Registry reg = make_built_in();
  return reg;
}

void Registry::register_family(const std::string& name, Family family) {
  ANTDENSE_CHECK(!name.empty() && name.find(':') == std::string::npos,
                 "family name must be non-empty and colon-free");
  ANTDENSE_CHECK(family.make != nullptr && family.canonical != nullptr,
                 "family needs both make and canonical");
  families_[name] = std::move(family);
}

bool Registry::has_family(const std::string& name) const {
  return families_.count(name) > 0;
}

const std::string& Registry::grammar(const std::string& name) const {
  const auto it = families_.find(name);
  ANTDENSE_CHECK(it != families_.end(),
                 "unknown topology family '" + name + "'");
  return it->second.grammar;
}

std::vector<std::string> Registry::family_names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    out.push_back(name);
  }
  return out;
}

const Registry::Family& Registry::family_for(const std::string& spec,
                                             std::string* params) const {
  const std::size_t colon = spec.find(':');
  ANTDENSE_CHECK(colon != std::string::npos && colon > 0,
                 "topology spec '" + spec +
                     "' must look like family:params (e.g. torus2d:64x64)");
  const std::string family = spec.substr(0, colon);
  const auto it = families_.find(family);
  if (it == families_.end()) {
    std::string known;
    for (const auto& [name, f] : families_) {
      known += (known.empty() ? "" : ", ") + name;
    }
    throw std::invalid_argument("unknown topology family '" + family +
                                "' (known: " + known + ")");
  }
  *params = spec.substr(colon + 1);
  return it->second;
}

graph::AnyTopology Registry::make(const std::string& spec) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.make(params);
}

std::string Registry::canonical(const std::string& spec) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.canonical(params);
}

}  // namespace antdense::scenario
