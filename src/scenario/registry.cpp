#include "scenario/registry.hpp"

#include <charconv>
#include <limits>
#include <memory>
#include <utility>

#include "graph/ba.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/gnp.hpp"
#include "graph/graph.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/rgg2d.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::scenario {

namespace {

// Diagnostics contract (see tests/test_scenario.cpp): every parse error
// names the family AND the offending key=value, so a failed sweep axis
// is attributable from the message alone.

[[noreturn]] void throw_param_error(const std::string& family,
                                    const std::string& detail) {
  throw std::invalid_argument("topology spec '" + family + "': " + detail);
}

/// Strict uint parse: the whole token must be digits (no sign, no
/// trailing garbage) so "64x64x3" or "1e4" fail loudly.
std::uint64_t parse_u64(const std::string& family, const std::string& key,
                        const std::string& token) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (token.empty() || ec != std::errc{} || ptr != end) {
    throw_param_error(family, "parameter '" + key + "=" + token +
                                  "': expected an unsigned integer");
  }
  return value;
}

/// Strict double parse for real-valued generator parameters.
double parse_f64(const std::string& family, const std::string& key,
                 const std::string& token) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (token.empty() || ec != std::errc{} || ptr != end) {
    throw_param_error(family, "parameter '" + key + "=" + token +
                                  "': expected a real number");
  }
  return value;
}

/// parse_u64 narrowed to the 32-bit constructor parameters; out-of-range
/// values throw instead of silently wrapping to a different substrate.
std::uint32_t narrow_u32(const std::string& family, const std::string& key,
                         std::uint64_t value) {
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw_param_error(family, "parameter '" + key + "=" +
                                  std::to_string(value) +
                                  "': exceeds the 32-bit range");
  }
  return static_cast<std::uint32_t>(value);
}

/// Splits "AxB" into two strict uints.
std::pair<std::uint64_t, std::uint64_t> parse_pair(const std::string& family,
                                                   const std::string& what,
                                                   const std::string& params) {
  const auto x = params.find('x');
  if (x == std::string::npos) {
    throw_param_error(family,
                      "expected '" + what + "', got '" + params + "'");
  }
  const auto lhs = what.substr(0, what.find('x'));
  const auto rhs = what.substr(what.find('x') + 1);
  return {parse_u64(family, lhs, params.substr(0, x)),
          parse_u64(family, rhs, params.substr(x + 1))};
}

/// One typed field of a "k=v,k=v" parameter list.
struct KvField {
  enum class Kind { kU64, kF64 };
  std::string key;
  Kind kind = Kind::kU64;
  bool required = false;
  std::uint64_t u64_default = 0;
  double f64_default = 0.0;
};

struct KvValues {
  std::vector<std::uint64_t> u64s;  // indexed like the field schema
  std::vector<double> f64s;
};

/// Parses "k=v,k=v" against a typed schema (later duplicates win).
/// Every diagnostic carries the family and the offending key=value.
KvValues parse_kv(const std::string& family, const std::string& params,
                  const std::vector<KvField>& fields) {
  KvValues values;
  values.u64s.resize(fields.size());
  values.f64s.resize(fields.size());
  std::vector<bool> seen(fields.size(), false);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    values.u64s[i] = fields[i].u64_default;
    values.f64s[i] = fields[i].f64_default;
  }
  std::size_t start = 0;
  while (start <= params.size()) {
    const std::size_t comma = params.find(',', start);
    const std::string item =
        params.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw_param_error(family, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string token = item.substr(eq + 1);
    bool matched = false;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].key == key) {
        if (fields[i].kind == KvField::Kind::kU64) {
          values.u64s[i] = parse_u64(family, key, token);
        } else {
          values.f64s[i] = parse_f64(family, key, token);
        }
        seen[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::string known;
      for (const auto& f : fields) {
        known += (known.empty() ? "" : ", ") + f.key;
      }
      throw_param_error(family, "unknown parameter '" + key + "=" + token +
                                    "' (expected: " + known + ")");
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].required && !seen[i]) {
      throw_param_error(family, "missing required parameter '" +
                                    fields[i].key + "'");
    }
  }
  return values;
}

/// Range guard whose message carries family, key, and value.
void check_range(bool ok, const std::string& family, const std::string& key,
                 const std::string& value, const std::string& expectation) {
  if (!ok) {
    throw_param_error(family, "parameter '" + key + "=" + value +
                                  "': " + expectation);
  }
}

KvField u64_field(std::string key, bool required,
                  std::uint64_t fallback = 0) {
  return {.key = std::move(key), .kind = KvField::Kind::kU64,
          .required = required, .u64_default = fallback};
}

KvField f64_field(std::string key, bool required, double fallback = 0.0) {
  return {.key = std::move(key), .kind = KvField::Kind::kF64,
          .required = required, .f64_default = fallback};
}

Registry make_built_in() {
  Registry reg;

  reg.register_family(
      "torus2d",
      {.make =
           [](const std::string& params) {
             const auto [w, h] = parse_pair("torus2d", "WIDTHxHEIGHT", params);
             return graph::AnyTopology(
                 graph::Torus2D(narrow_u32("torus2d", "WIDTH", w),
                                narrow_u32("torus2d", "HEIGHT", h)));
           },
       .canonical =
           [](const std::string& params) {
             const auto [w, h] = parse_pair("torus2d", "WIDTHxHEIGHT", params);
             return "torus2d:" + std::to_string(w) + "x" + std::to_string(h);
           },
       .grammar = "torus2d:WIDTHxHEIGHT (2-D torus, Section 2; "
                  "e.g. torus2d:64x64)"});

  reg.register_family(
      "ring",
      {.make =
           [](const std::string& params) {
             return graph::AnyTopology(
                 graph::Ring(parse_u64("ring", "NODES", params)));
           },
       .canonical =
           [](const std::string& params) {
             return "ring:" +
                    std::to_string(parse_u64("ring", "NODES", params));
           },
       .grammar = "ring:NODES (1-D torus, Section 4.2; "
                  "e.g. ring:10000)"});

  reg.register_family(
      "hypercube",
      {.make =
           [](const std::string& params) {
             return graph::AnyTopology(graph::Hypercube(narrow_u32(
                 "hypercube", "DIMS",
                 parse_u64("hypercube", "DIMS", params))));
           },
       .canonical =
           [](const std::string& params) {
             return "hypercube:" +
                    std::to_string(parse_u64("hypercube", "DIMS", params));
           },
       .grammar = "hypercube:DIMS (k-dim hypercube, Section 4.5; "
                  "e.g. hypercube:14)"});

  reg.register_family(
      "toruskd",
      {.make =
           [](const std::string& params) {
             const auto [k, side] = parse_pair("toruskd", "DIMSxSIDE", params);
             return graph::AnyTopology(
                 graph::TorusKD(narrow_u32("toruskd", "DIMS", k),
                                narrow_u32("toruskd", "SIDE", side)));
           },
       .canonical =
           [](const std::string& params) {
             const auto [k, side] = parse_pair("toruskd", "DIMSxSIDE", params);
             return "toruskd:" + std::to_string(k) + "x" +
                    std::to_string(side);
           },
       .grammar = "toruskd:DIMSxSIDE (k-dim torus, Section 4.3; "
                  "e.g. toruskd:3x22)"});

  reg.register_family(
      "complete",
      {.make =
           [](const std::string& params) {
             return graph::AnyTopology(
                 graph::CompleteGraph(parse_u64("complete", "NODES", params)));
           },
       .canonical =
           [](const std::string& params) {
             return "complete:" +
                    std::to_string(parse_u64("complete", "NODES", params));
           },
       .grammar = "complete:NODES (complete graph, Section 1.1; "
                  "e.g. complete:4096)"});

  const std::vector<KvField> expander_fields = {
      u64_field("d", true), u64_field("n", true), u64_field("seed", false, 1)};
  reg.register_family(
      "expander",
      {.make =
           [=](const std::string& params) {
             const auto v = parse_kv("expander", params, expander_fields);
             // The explicit graph is owned by the handle (payload), so
             // the spec string is the only lifetime the caller manages.
             auto g = std::make_shared<graph::Graph>(
                 graph::make_random_regular_graph(
                     narrow_u32("expander", "n", v.u64s[1]),
                     narrow_u32("expander", "d", v.u64s[0]), v.u64s[2]));
             return graph::AnyTopology::with_payload(
                 graph::ExplicitTopology(*g, "expander"), g);
           },
       .canonical =
           [=](const std::string& params) {
             const auto v = parse_kv("expander", params, expander_fields);
             return "expander:d=" + std::to_string(v.u64s[0]) +
                    ",n=" + std::to_string(v.u64s[1]) +
                    ",seed=" + std::to_string(v.u64s[2]);
           },
       .grammar = "expander:d=DEGREE,n=NODES[,seed=S] (random d-regular "
                  "graph, Section 4.4; e.g. expander:d=8,n=100000,seed=7)"});

  // --- Implicit generator families (KaGen-style, O(1) memory) ---

  const std::vector<KvField> rgg2d_fields = {
      u64_field("n", true), f64_field("r", true), u64_field("seed", false, 1)};
  const auto rgg2d_parse = [=](const std::string& params) {
    const auto v = parse_kv("rgg2d", params, rgg2d_fields);
    check_range(v.f64s[1] > 0.0 && v.f64s[1] < 1.0, "rgg2d", "r",
                util::format_shortest(v.f64s[1]),
                "radius must be in (0, 1)");
    check_range(v.u64s[0] >= 2, "rgg2d", "n", std::to_string(v.u64s[0]),
                "need at least 2 nodes");
    return v;
  };
  reg.register_family(
      "rgg2d",
      {.make =
           [=](const std::string& params) {
             const auto v = rgg2d_parse(params);
             return graph::AnyTopology(
                 graph::Rgg2D(v.u64s[0], v.f64s[1], v.u64s[2]));
           },
       .canonical =
           [=](const std::string& params) {
             const auto v = rgg2d_parse(params);
             return "rgg2d:n=" + std::to_string(v.u64s[0]) +
                    ",r=" + util::format_shortest(v.f64s[1]) +
                    ",seed=" + std::to_string(v.u64s[2]);
           },
       .grammar = "rgg2d:n=NODES,r=RADIUS[,seed=S] (implicit toroidal "
                  "random geometric graph, O(1) memory; "
                  "e.g. rgg2d:n=100000000,r=0.0002,seed=1)"});

  const std::vector<KvField> gnp_fields = {
      u64_field("n", true), f64_field("p", true), u64_field("seed", false, 1)};
  const auto gnp_parse = [=](const std::string& params) {
    const auto v = parse_kv("gnp", params, gnp_fields);
    check_range(v.f64s[1] > 0.0 && v.f64s[1] <= 1.0, "gnp", "p",
                util::format_shortest(v.f64s[1]),
                "edge probability must be in (0, 1]");
    check_range(v.u64s[0] >= 2, "gnp", "n", std::to_string(v.u64s[0]),
                "need at least 2 nodes");
    return v;
  };
  reg.register_family(
      "gnp",
      {.make =
           [=](const std::string& params) {
             const auto v = gnp_parse(params);
             return graph::AnyTopology(
                 graph::Gnp(v.u64s[0], v.f64s[1], v.u64s[2]));
           },
       .canonical =
           [=](const std::string& params) {
             const auto v = gnp_parse(params);
             return "gnp:n=" + std::to_string(v.u64s[0]) +
                    ",p=" + util::format_shortest(v.f64s[1]) +
                    ",seed=" + std::to_string(v.u64s[2]);
           },
       .grammar = "gnp:n=NODES,p=PROB[,seed=S] (implicit Erdős–Rényi "
                  "G(n, p), O(1) memory, O(n) neighbor queries; "
                  "e.g. gnp:n=2000,p=0.01,seed=1)"});

  const std::vector<KvField> ba_fields = {
      u64_field("n", true), u64_field("d", true), u64_field("seed", false, 1)};
  const auto ba_parse = [=](const std::string& params) {
    const auto v = parse_kv("ba", params, ba_fields);
    check_range(v.u64s[1] >= 1, "ba", "d", std::to_string(v.u64s[1]),
                "attachment degree must be >= 1");
    check_range(v.u64s[0] > v.u64s[1], "ba", "n", std::to_string(v.u64s[0]),
                "need n > d");
    return v;
  };
  reg.register_family(
      "ba",
      {.make =
           [=](const std::string& params) {
             const auto v = ba_parse(params);
             return graph::AnyTopology(
                 graph::Ba(v.u64s[0], v.u64s[1], v.u64s[2]));
           },
       .canonical =
           [=](const std::string& params) {
             const auto v = ba_parse(params);
             return "ba:n=" + std::to_string(v.u64s[0]) +
                    ",d=" + std::to_string(v.u64s[1]) +
                    ",seed=" + std::to_string(v.u64s[2]);
           },
       .grammar = "ba:n=NODES,d=ATTACH[,seed=S] (implicit Barabási–Albert "
                  "preferential attachment, O(1) memory, O(n*d) neighbor "
                  "queries; e.g. ba:n=5000,d=4,seed=1)"});

  return reg;
}

}  // namespace

const Registry& Registry::built_in() {
  static const Registry reg = make_built_in();
  return reg;
}

void Registry::register_family(const std::string& name, Family family) {
  ANTDENSE_CHECK(!name.empty() && name.find(':') == std::string::npos,
                 "family name must be non-empty and colon-free");
  ANTDENSE_CHECK(family.make != nullptr && family.canonical != nullptr,
                 "family needs both make and canonical");
  families_[name] = std::move(family);
}

bool Registry::has_family(const std::string& name) const {
  return families_.count(name) > 0;
}

const std::string& Registry::grammar(const std::string& name) const {
  const auto it = families_.find(name);
  ANTDENSE_CHECK(it != families_.end(),
                 "unknown topology family '" + name + "'");
  return it->second.grammar;
}

std::vector<std::string> Registry::family_names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    out.push_back(name);
  }
  return out;
}

const Registry::Family& Registry::family_for(const std::string& spec,
                                             std::string* params) const {
  const std::size_t colon = spec.find(':');
  ANTDENSE_CHECK(colon != std::string::npos && colon > 0,
                 "topology spec '" + spec +
                     "' must look like family:params (e.g. torus2d:64x64)");
  const std::string family = spec.substr(0, colon);
  const auto it = families_.find(family);
  if (it == families_.end()) {
    std::string known;
    for (const auto& [name, f] : families_) {
      known += (known.empty() ? "" : ", ") + name;
    }
    throw std::invalid_argument("unknown topology family '" + family +
                                "' (known: " + known + ")");
  }
  *params = spec.substr(colon + 1);
  return it->second;
}

graph::AnyTopology Registry::make(const std::string& spec) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.make(params);
}

std::string Registry::canonical(const std::string& spec) const {
  std::string params;
  const Family& family = family_for(spec, &params);
  return family.canonical(params);
}

}  // namespace antdense::scenario
