// The imperative half of the runtime scenario API: Experiment validates
// a ScenarioSpec, builds its substrate through the Registry, resolves
// the round budget (explicit rounds, or Theorem-1 planning via
// core::plan_rounds), and runs the requested workload through the
// existing engine drivers — run_density_walk / trial_runner for density,
// estimate_property_frequency for property, run_trajectory for anytime
// profiles, and the generic BallDensityObserver for local density.
//
// The result is one uniform ScenarioResult for all four workloads:
// pooled per-agent estimates, summary statistics, optional checkpointed
// series, and a stable JSON serialization (schema
// "antdense.scenario.v1") that antdense_run emits and CI
// schema-validates.  Determinism: a ScenarioResult is bit-identical for
// a fixed spec, for any thread count — in both engine modes.  The
// spec's `engine` field selects the walk execution model (the
// historical single stream, or the sharded per-stream model of
// sim/sharded_walk.hpp); the two modes are distinct experiments with
// distinct identities, so `threads` remains a pure resource knob.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace antdense::scenario {

/// Moment summary of the pooled estimates, plus the paper's headline
/// accuracy metric: the fraction of estimates within (1 ± eps) of truth.
struct ScenarioSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;          // sample standard deviation
  double standard_error = 0.0;  // of the mean
  double min = 0.0;
  double max = 0.0;
  double within_eps = 0.0;
};

struct ScenarioResult {
  ScenarioSpec spec;  // fully resolved: rounds is never 0 here
  std::string topology_name;
  std::uint64_t num_nodes = 0;
  /// The workload's ground truth: density d = (agents-1)/A for density /
  /// trajectory / local-density, the property frequency f_P for property.
  double true_value = 0.0;
  /// Pooled estimates: per agent per trial (density), per-agent
  /// frequencies (property), final-checkpoint values (trajectory /
  /// local-density).
  std::vector<double> estimates;
  ScenarioSummary summary;
  /// Snapshot rounds and per-trace series for trajectory / local-density
  /// (series[trace][i] pairs with checkpoints[i]); empty otherwise.
  std::vector<std::uint32_t> checkpoints;
  std::vector<std::vector<double>> series;
  double elapsed_seconds = 0.0;
  /// Wall-clock nanoseconds for the run — finer-grained twin of
  /// elapsed_seconds, surfaced as the optional `elapsed_ns` result key.
  /// Timing only: never part of the spec's identity_json.
  std::uint64_t elapsed_ns = 0;

  util::JsonValue to_json() const;
};

/// Optional progress tap for Experiment::run.  `on_progress(done, total)`
/// reports completed work units out of a fixed total — rounds for the
/// single-walk workloads (density trials==1, trajectory, local-density),
/// trials for the fan-out workloads (density trials>1, property).  Calls
/// may arrive from worker threads (trial fan-outs) but never concurrently
/// with themselves for round-level taps (end_round is serial in all three
/// engines).  The hooks observe execution without touching any RNG
/// stream, so results stay bit-identical with or without them.
struct ProgressHooks {
  std::function<void(std::uint64_t done, std::uint64_t total)> on_progress;
  /// Report every `round_stride` rounds (and always at the final round);
  /// 0 picks max(1, total/64).  Ignored for trial-grained workloads.
  std::uint32_t round_stride = 0;
};

class Experiment {
 public:
  /// Validates the spec, builds the topology, and resolves the round
  /// budget; throws std::invalid_argument on any inconsistency so
  /// drivers fail before burning cycles.
  explicit Experiment(ScenarioSpec spec);
  Experiment(ScenarioSpec spec, const Registry& registry);

  /// The resolved spec (rounds filled in when the input said 0).
  const ScenarioSpec& spec() const { return spec_; }
  const graph::AnyTopology& topology() const { return topo_; }

  ScenarioResult run() const;
  ScenarioResult run(const ProgressHooks& hooks) const;

 private:
  ScenarioSpec spec_;
  graph::AnyTopology topo_;
};

}  // namespace antdense::scenario
