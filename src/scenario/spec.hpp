// The declarative half of the runtime scenario API: one ScenarioSpec
// describes one experiment — which substrate (a topology spec string
// parsed by scenario::Registry), which workload, the Section 6.1
// perturbation knobs, trials/threads/seed, and either an explicit round
// count or (eps, delta) for Theorem-1 planning via core::plan_rounds.
//
// Specs are plain data: build them in code, from command-line flags
// (from_args; pair it with Args::require_known(key_names()) so typo'd
// flags throw, as antdense_run does), or from a JSON file
// (from_json_file — unknown keys always throw there), and hand them to
// scenario::Experiment to run.  The flag and JSON key vocabularies are
// identical, so a --spec file and a flag set are interchangeable and
// flags can overlay a file.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace antdense::scenario {

class Registry;

/// What to measure over the walk.  All four run through the shared
/// WalkEngine observers (sim/walk_engine.hpp).
enum class Workload {
  kDensity,       // Algorithm 1: per-agent density estimates
  kProperty,      // Section 5.2: property-frequency estimates
  kTrajectory,    // anytime running estimates at checkpoints
  kLocalDensity,  // ground-truth local density at checkpoints
};

/// How the walk itself executes.  This is part of the experiment's
/// *identity*, not a resource knob: the engines consume different
/// (equally valid) random streams, so their results differ bitwise.
/// Within any one engine, results are bit-identical for any `threads`.
enum class EngineMode {
  kSingleStream,  // the historical run_walk stream; threads only fan
                  // out Monte Carlo trials
  kSharded,       // sim/sharded_walk.hpp: per-shard streams, threads
                  // parallelize within one walk too
  kVector,        // sim/vector_walk.hpp: wide-lane stream, vectorized
                  // stepping; threads fan out trials as with single
};

std::string engine_mode_name(EngineMode mode);
/// Parses "single" / "sharded" / "vector"; throws std::invalid_argument
/// otherwise.
EngineMode parse_engine_mode(const std::string& name);

std::string workload_name(Workload w);
/// All four workload names in enum order, for discovery flags
/// (antdense_run --list-workloads) and campaign axis validation.
const std::vector<std::string>& workload_names();
/// One-line descriptions aligned with workload_names() — kept beside
/// the names so listing UIs cannot drift out of sync with the enum.
const std::vector<std::string>& workload_descriptions();
/// Parses "density" / "property" / "trajectory" / "local-density";
/// throws std::invalid_argument on anything else.
Workload parse_workload(const std::string& name);

struct ScenarioSpec {
  // --- substrate and workload ---------------------------------------
  std::string topology = "torus2d:64x64";  // Registry spec string
  Workload workload = Workload::kDensity;

  // --- walk shape ----------------------------------------------------
  std::uint32_t agents = 410;
  /// Explicit round count; 0 means "plan from (eps, delta) and the
  /// substrate via core::plan_rounds" when the Experiment resolves.
  std::uint32_t rounds = 0;
  double eps = 0.2;
  double delta = 0.1;

  // --- Section 6.1 perturbations (all off by default) ---------------
  double lazy_probability = 0.0;
  double detection_miss_probability = 0.0;
  double spurious_collision_probability = 0.0;

  // --- execution -----------------------------------------------------
  /// Monte Carlo repeats, pooled.  Density / property only; trajectory
  /// and local-density record one walk (Experiment rejects trials > 1).
  std::uint32_t trials = 1;
  unsigned threads = 0;      // 0 = one per core
  std::uint64_t seed = 42;
  /// Walk execution model (see EngineMode).  Identity-bearing: part of
  /// to_json/identity_json, unlike `threads`.
  EngineMode engine = EngineMode::kSingleStream;

  // --- workload-specific knobs --------------------------------------
  double property_fraction = 0.25;  // property: fraction of P-agents
  std::uint32_t tracked = 4;        // trajectory/local-density traces
  std::uint32_t checkpoints = 8;    // snapshot count
  std::uint32_t radius = 2;         // local-density L1/graph ball radius

  /// Range checks everything except the topology string (the Registry
  /// owns that) — throws std::invalid_argument.
  void validate() const;

  /// The checkpoint rounds this spec asks for: `checkpoints` values,
  /// evenly spaced, strictly increasing, ending at `total_rounds`.
  std::vector<std::uint32_t> checkpoint_rounds(
      std::uint32_t total_rounds) const;

  /// Every flag / JSON key the spec vocabulary defines, for strict
  /// argument checking (util::Args::require_known).
  static std::vector<std::string> key_names();

  /// Overlays recognized flags onto `base` (strictness is the caller's
  /// job so drivers can accept extra flags like --out).
  static ScenarioSpec from_args(const util::Args& args, ScenarioSpec base);
  static ScenarioSpec from_args(const util::Args& args);

  /// Builds a spec from a flat JSON object / file using the same keys as
  /// from_args.  Unknown keys throw, matching strict flag handling.
  static ScenarioSpec from_json(const util::JsonValue& doc,
                                ScenarioSpec base);
  static ScenarioSpec from_json(const util::JsonValue& doc);
  static ScenarioSpec from_json_file(const std::string& path,
                                     ScenarioSpec base);
  static ScenarioSpec from_json_file(const std::string& path);

  util::JsonValue to_json() const;

  /// The spec's *experiment identity*: to_json() with the topology
  /// canonicalized through `registry` and the `threads` key dropped —
  /// two specs that describe the same experiment serialize identically
  /// here no matter how they were built (flags, JSON in any key order,
  /// or code) or how many workers will run them.  Emitted-field order is
  /// fixed by to_json(), so dump(0) is a canonical byte string.
  util::JsonValue identity_json(const Registry& registry) const;

  /// 16-hex-char FNV-1a hash of identity_json().dump(0): the campaign
  /// journal's cache key.
  std::string identity_hash(const Registry& registry) const;
};

}  // namespace antdense::scenario
