// The declarative half of the runtime scenario API: one ScenarioSpec
// describes one experiment — which substrate (a topology spec string
// parsed by scenario::Registry), which workload, the Section 6.1
// perturbation knobs, trials/threads/seed, and either an explicit round
// count or (eps, delta) for Theorem-1 planning via core::plan_rounds.
//
// Specs are plain data: build them in code, from command-line flags
// (from_args; pair it with Args::require_known(key_names()) so typo'd
// flags throw, as antdense_run does), or from a JSON file
// (from_json_file — unknown keys always throw there), and hand them to
// scenario::Experiment to run.  The flag and JSON key vocabularies are
// identical, so a --spec file and a flag set are interchangeable and
// flags can overlay a file.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace antdense::scenario {

class Registry;

/// What to measure over the walk.  All four run through the shared
/// WalkEngine observers (sim/walk_engine.hpp).
enum class Workload {
  kDensity,       // Algorithm 1: per-agent density estimates
  kProperty,      // Section 5.2: property-frequency estimates
  kTrajectory,    // anytime running estimates at checkpoints
  kLocalDensity,  // ground-truth local density at checkpoints
};

/// How the walk itself executes.  This is part of the experiment's
/// *identity*, not a resource knob: the engines consume different
/// (equally valid) random streams, so their results differ bitwise.
/// Within any one engine, results are bit-identical for any `threads`.
enum class EngineMode {
  kSingleStream,  // the historical run_walk stream; threads only fan
                  // out Monte Carlo trials
  kSharded,       // sim/sharded_walk.hpp: per-shard streams, threads
                  // parallelize within one walk too
  kVector,        // sim/vector_walk.hpp: wide-lane stream, vectorized
                  // stepping; threads fan out trials as with single
};

std::string engine_mode_name(EngineMode mode);
/// Parses "single" / "sharded" / "vector"; throws std::invalid_argument
/// otherwise.
EngineMode parse_engine_mode(const std::string& name);

/// The structured spelling of the Section 6.1 sensing perturbations
/// (plus the dropout generalization) — one sub-object instead of loose
/// top-level knobs.  JSON accepts both forms: the versioned object
///   "sensing": {"version": 1, "miss": P, "spurious": P, "dropout": P}
/// and the historical flat keys ("miss", "spurious", and the new
/// "dropout"), which remain first-class aliases so existing spec files,
/// campaign axes, and flags keep working.  Emission is
/// identity-stable: to_json() spells a dropout-free spec with the
/// historical flat keys byte for byte, and switches to the versioned
/// object only when dropout is set (a shape that predates no artifact).
struct SensingSpec {
  static constexpr std::uint32_t kVersion = 1;

  double detection_miss = 0.0;  // each partner goes undetected w.p. p
  double spurious = 0.0;        // phantom collision recorded w.p. p
  double dropout = 0.0;         // whole observation lost w.p. p

  bool any() const {
    return detection_miss > 0.0 || spurious > 0.0 || dropout > 0.0;
  }
};

std::string workload_name(Workload w);
/// All four workload names in enum order, for discovery flags
/// (antdense_run --list-workloads) and campaign axis validation.
const std::vector<std::string>& workload_names();
/// One-line descriptions aligned with workload_names() — kept beside
/// the names so listing UIs cannot drift out of sync with the enum.
const std::vector<std::string>& workload_descriptions();
/// Parses "density" / "property" / "trajectory" / "local-density";
/// throws std::invalid_argument on anything else.
Workload parse_workload(const std::string& name);

struct ScenarioSpec {
  // --- substrate and workload ---------------------------------------
  std::string topology = "torus2d:64x64";  // Registry spec string
  Workload workload = Workload::kDensity;

  // --- walk shape ----------------------------------------------------
  std::uint32_t agents = 410;
  /// Explicit round count; 0 means "plan from (eps, delta) and the
  /// substrate via core::plan_rounds" when the Experiment resolves.
  std::uint32_t rounds = 0;
  double eps = 0.2;
  double delta = 0.1;

  // --- perturbations (all off by default) ---------------------------
  /// Movement knob (Section 6.1): the agent stays put w.p. p per round.
  double lazy_probability = 0.0;
  /// Observation knobs, grouped (see SensingSpec for the JSON forms).
  SensingSpec sensing;
  /// World-dynamics model spec ("model:k=v,..." parsed by
  /// scenario::DynamicsRegistry — churn / drift / fade), or "" for the
  /// historical static world.  Identity-bearing when present; density
  /// workload, single/sharded engines only.
  std::string dynamics;

  // --- execution -----------------------------------------------------
  /// Monte Carlo repeats, pooled.  Density / property only; trajectory
  /// and local-density record one walk (Experiment rejects trials > 1).
  std::uint32_t trials = 1;
  unsigned threads = 0;      // 0 = one per core
  std::uint64_t seed = 42;
  /// Walk execution model (see EngineMode).  Identity-bearing: part of
  /// to_json/identity_json, unlike `threads`.
  EngineMode engine = EngineMode::kSingleStream;

  // --- workload-specific knobs --------------------------------------
  double property_fraction = 0.25;  // property: fraction of P-agents
  std::uint32_t tracked = 4;        // trajectory/local-density traces
  std::uint32_t checkpoints = 8;    // snapshot count
  std::uint32_t radius = 2;         // local-density L1/graph ball radius

  /// Range checks everything except the topology string (the Registry
  /// owns that) — throws std::invalid_argument.
  void validate() const;

  /// The checkpoint rounds this spec asks for: `checkpoints` values,
  /// evenly spaced, strictly increasing, ending at `total_rounds`.
  std::vector<std::uint32_t> checkpoint_rounds(
      std::uint32_t total_rounds) const;

  /// Every flag / JSON key the spec vocabulary defines, for strict
  /// argument checking (util::Args::require_known).
  static std::vector<std::string> key_names();

  /// Overlays recognized flags onto `base` (strictness is the caller's
  /// job so drivers can accept extra flags like --out).
  static ScenarioSpec from_args(const util::Args& args, ScenarioSpec base);
  static ScenarioSpec from_args(const util::Args& args);

  /// Builds a spec from a flat JSON object / file using the same keys as
  /// from_args.  Unknown keys throw, matching strict flag handling.
  static ScenarioSpec from_json(const util::JsonValue& doc,
                                ScenarioSpec base);
  static ScenarioSpec from_json(const util::JsonValue& doc);
  static ScenarioSpec from_json_file(const std::string& path,
                                     ScenarioSpec base);
  static ScenarioSpec from_json_file(const std::string& path);

  util::JsonValue to_json() const;

  /// The spec's *experiment identity*: to_json() with the topology
  /// canonicalized through `registry` (and `dynamics`, when present,
  /// through DynamicsRegistry::built_in()) and the `threads` key
  /// dropped — two specs that describe the same experiment serialize
  /// identically here no matter how they were built (flags, JSON in any
  /// key order, or code) or how many workers will run them.
  /// Emitted-field order is fixed by to_json(), so dump(0) is a
  /// canonical byte string.  Identity rules for the new keys: "dynamics"
  /// is emitted only when non-empty and "dropout" only inside the
  /// versioned sensing object, so every pre-dynamics spec keeps its
  /// historical identity_hash (pinned in tests) and cached campaign /
  /// serve journals stay warm.
  util::JsonValue identity_json(const Registry& registry) const;

  /// 16-hex-char FNV-1a hash of identity_json().dump(0): the campaign
  /// journal's cache key.
  std::string identity_hash(const Registry& registry) const;
};

}  // namespace antdense::scenario
