#include "scenario/spec.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>

#include "scenario/dynamics_registry.hpp"
#include "scenario/registry.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace antdense::scenario {

namespace {

constexpr const char* kWorkloadNames[] = {"density", "property", "trajectory",
                                          "local-density"};
/// Index-aligned with kWorkloadNames; extend both together.
constexpr const char* kWorkloadDescriptions[] = {
    "Algorithm 1: per-agent density estimates",
    "Section 5.2: property-frequency estimates",
    "anytime running estimates at checkpoints",
    "ground-truth local density at checkpoints"};
static_assert(std::size(kWorkloadNames) == std::size(kWorkloadDescriptions),
              "every workload needs a description");

double probability(const std::string& what, double v, bool exclusive_top) {
  ANTDENSE_CHECK(v >= 0.0 && (exclusive_top ? v < 1.0 : v <= 1.0),
                 what + " must be a probability");
  return v;
}

/// Checked narrowing for the 32-bit spec fields: out-of-range flag or
/// JSON values throw instead of silently wrapping to a different
/// experiment.
std::uint32_t narrow_u32(std::uint64_t value, const std::string& what) {
  ANTDENSE_CHECK(value <= std::numeric_limits<std::uint32_t>::max(),
                 "scenario spec: " + what + " value " +
                     std::to_string(value) + " exceeds the 32-bit range");
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::string engine_mode_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kSingleStream:
      return "single";
    case EngineMode::kSharded:
      return "sharded";
    case EngineMode::kVector:
      return "vector";
  }
  throw std::logic_error("unreachable engine mode");
}

EngineMode parse_engine_mode(const std::string& name) {
  if (name == "single") {
    return EngineMode::kSingleStream;
  }
  if (name == "sharded") {
    return EngineMode::kSharded;
  }
  if (name == "vector") {
    return EngineMode::kVector;
  }
  throw std::invalid_argument("unknown engine mode '" + name +
                              "' (expected single, sharded, or vector)");
}

std::string workload_name(Workload w) {
  return kWorkloadNames[static_cast<int>(w)];
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names(std::begin(kWorkloadNames),
                                              std::end(kWorkloadNames));
  return names;
}

const std::vector<std::string>& workload_descriptions() {
  static const std::vector<std::string> descriptions(
      std::begin(kWorkloadDescriptions), std::end(kWorkloadDescriptions));
  return descriptions;
}

Workload parse_workload(const std::string& name) {
  for (int i = 0; i < 4; ++i) {
    if (name == kWorkloadNames[i]) {
      return static_cast<Workload>(i);
    }
  }
  throw std::invalid_argument(
      "unknown workload '" + name +
      "' (expected density, property, trajectory, or local-density)");
}

void ScenarioSpec::validate() const {
  ANTDENSE_CHECK(agents >= 2, "scenario needs at least two agents");
  if (rounds == 0) {
    ANTDENSE_CHECK(eps > 0.0, "planning rounds needs eps > 0");
    ANTDENSE_CHECK(delta > 0.0 && delta < 1.0,
                   "planning rounds needs delta in (0,1)");
  }
  probability("lazy_probability", lazy_probability, true);
  probability("sensing.miss", sensing.detection_miss, false);
  probability("sensing.spurious", sensing.spurious, false);
  probability("sensing.dropout", sensing.dropout, false);
  // Fail fast at spec-validation time (the campaign planner and the
  // serve daemon validate every spec before running): the wide-lane
  // engine has no mutation phase.
  ANTDENSE_CHECK(dynamics.empty() || engine != EngineMode::kVector,
                 "engine=vector does not support dynamic scenarios "
                 "(dynamics='" + dynamics +
                     "'); use engine=single or engine=sharded");
  ANTDENSE_CHECK(trials >= 1, "need at least one trial");
  // Specs round-trip through JSON, whose numbers are doubles: a seed at
  // or above 2^53 would be silently rounded in the emitted artifact and
  // document a different experiment than the one that ran.
  ANTDENSE_CHECK(seed < (std::uint64_t{1} << 53),
                 "seed must be below 2^53 so spec files round-trip exactly");
  probability("property_fraction", property_fraction, false);
  ANTDENSE_CHECK(tracked >= 1, "need at least one tracked agent");
  ANTDENSE_CHECK(checkpoints >= 1, "need at least one checkpoint");
}

std::vector<std::uint32_t> ScenarioSpec::checkpoint_rounds(
    std::uint32_t total_rounds) const {
  ANTDENSE_CHECK(total_rounds >= 1, "need at least one round");
  std::vector<std::uint32_t> out;
  const std::uint32_t k = std::min(checkpoints, total_rounds);
  out.reserve(k);
  for (std::uint32_t i = 1; i <= k; ++i) {
    const auto r = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(total_rounds) * i) / k);
    if (out.empty() || r > out.back()) {
      out.push_back(r);
    }
  }
  // Integer spacing guarantees the last entry is exactly total_rounds.
  return out;
}

std::vector<std::string> ScenarioSpec::key_names() {
  return {"topology", "workload", "agents",   "rounds",
          "eps",      "delta",    "lazy",     "miss",
          "spurious", "dropout",  "dynamics", "trials",
          "threads",  "seed",     "engine",   "property-fraction",
          "tracked",  "checkpoints",          "radius"};
}

ScenarioSpec ScenarioSpec::from_args(const util::Args& args,
                                     ScenarioSpec base) {
  ScenarioSpec s = std::move(base);
  s.topology = args.get_string("topology", s.topology);
  if (args.has("workload")) {
    s.workload = parse_workload(args.get_string("workload", ""));
  }
  s.agents = narrow_u32(args.get_uint("agents", s.agents), "agents");
  s.rounds = narrow_u32(args.get_uint("rounds", s.rounds), "rounds");
  s.eps = args.get_double("eps", s.eps);
  s.delta = args.get_double("delta", s.delta);
  s.lazy_probability = args.get_double("lazy", s.lazy_probability);
  s.sensing.detection_miss =
      args.get_double("miss", s.sensing.detection_miss);
  s.sensing.spurious = args.get_double("spurious", s.sensing.spurious);
  s.sensing.dropout = args.get_double("dropout", s.sensing.dropout);
  s.dynamics = args.get_string("dynamics", s.dynamics);
  s.trials = narrow_u32(args.get_uint("trials", s.trials), "trials");
  s.threads = narrow_u32(args.get_uint("threads", s.threads), "threads");
  s.seed = args.get_uint("seed", s.seed);
  if (args.has("engine")) {
    s.engine = parse_engine_mode(args.get_string("engine", ""));
  }
  s.property_fraction =
      args.get_double("property-fraction", s.property_fraction);
  s.tracked = narrow_u32(args.get_uint("tracked", s.tracked), "tracked");
  s.checkpoints =
      narrow_u32(args.get_uint("checkpoints", s.checkpoints), "checkpoints");
  s.radius = narrow_u32(args.get_uint("radius", s.radius), "radius");
  return s;
}

namespace {

/// Parses the versioned "sensing" sub-object (the structured spelling;
/// see SensingSpec).  Strict like the top level: unknown keys and
/// unsupported versions throw.
SensingSpec parse_sensing_object(const util::JsonValue& obj,
                                 SensingSpec base) {
  SensingSpec out = base;
  for (const auto& [key, value] : obj.entries()) {
    if (key == "version") {
      ANTDENSE_CHECK(value.as_uint() == SensingSpec::kVersion,
                     "unsupported sensing object version " +
                         std::to_string(value.as_uint()) +
                         " (this build understands version " +
                         std::to_string(SensingSpec::kVersion) + ")");
    } else if (key == "miss") {
      out.detection_miss = value.as_double();
    } else if (key == "spurious") {
      out.spurious = value.as_double();
    } else if (key == "dropout") {
      out.dropout = value.as_double();
    } else {
      throw std::invalid_argument(
          "unknown sensing spec key '" + key +
          "' (expected version, miss, spurious, or dropout)");
    }
  }
  return out;
}

}  // namespace

ScenarioSpec ScenarioSpec::from_json(const util::JsonValue& doc,
                                     ScenarioSpec base) {
  ScenarioSpec s = std::move(base);
  // JSON additionally accepts the structured "sensing" object, which
  // has no flag spelling (flags use the flat aliases).
  std::vector<std::string> known = key_names();
  known.push_back("sensing");
  for (const auto& [key, value] : doc.entries()) {
    ANTDENSE_CHECK(std::find(known.begin(), known.end(), key) != known.end(),
                   "unknown scenario spec key '" + key + "'");
    if (key == "topology") {
      s.topology = value.as_string();
    } else if (key == "workload") {
      s.workload = parse_workload(value.as_string());
    } else if (key == "agents") {
      s.agents = narrow_u32(value.as_uint(), "agents");
    } else if (key == "rounds") {
      s.rounds = narrow_u32(value.as_uint(), "rounds");
    } else if (key == "eps") {
      s.eps = value.as_double();
    } else if (key == "delta") {
      s.delta = value.as_double();
    } else if (key == "lazy") {
      s.lazy_probability = value.as_double();
    } else if (key == "miss") {
      s.sensing.detection_miss = value.as_double();
    } else if (key == "spurious") {
      s.sensing.spurious = value.as_double();
    } else if (key == "dropout") {
      s.sensing.dropout = value.as_double();
    } else if (key == "sensing") {
      // Later keys win in document order, matching flat-key overlays.
      s.sensing = parse_sensing_object(value, s.sensing);
    } else if (key == "dynamics") {
      s.dynamics = value.as_string();
    } else if (key == "trials") {
      s.trials = narrow_u32(value.as_uint(), "trials");
    } else if (key == "threads") {
      s.threads = narrow_u32(value.as_uint(), "threads");
    } else if (key == "seed") {
      s.seed = value.as_uint();
    } else if (key == "engine") {
      s.engine = parse_engine_mode(value.as_string());
    } else if (key == "property-fraction") {
      s.property_fraction = value.as_double();
    } else if (key == "tracked") {
      s.tracked = narrow_u32(value.as_uint(), "tracked");
    } else if (key == "checkpoints") {
      s.checkpoints = narrow_u32(value.as_uint(), "checkpoints");
    } else if (key == "radius") {
      s.radius = narrow_u32(value.as_uint(), "radius");
    }
  }
  return s;
}

ScenarioSpec ScenarioSpec::from_json_file(const std::string& path,
                                          ScenarioSpec base) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open scenario spec file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(util::JsonValue::parse(text.str()), std::move(base));
}

ScenarioSpec ScenarioSpec::from_args(const util::Args& args) {
  return from_args(args, ScenarioSpec{});
}

ScenarioSpec ScenarioSpec::from_json(const util::JsonValue& doc) {
  return from_json(doc, ScenarioSpec{});
}

ScenarioSpec ScenarioSpec::from_json_file(const std::string& path) {
  return from_json_file(path, ScenarioSpec{});
}

util::JsonValue ScenarioSpec::to_json() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("topology", topology);
  doc.set("workload", workload_name(workload));
  doc.set("agents", agents);
  doc.set("rounds", rounds);
  doc.set("eps", eps);
  doc.set("delta", delta);
  doc.set("lazy", lazy_probability);
  if (sensing.dropout == 0.0) {
    // The historical flat spelling: dropout-free specs serialize byte
    // for byte as before this field family existed, keeping every
    // pinned identity_hash and cached artifact valid.
    doc.set("miss", sensing.detection_miss);
    doc.set("spurious", sensing.spurious);
  } else {
    util::JsonValue s = util::JsonValue::object();
    s.set("version",
          static_cast<std::uint64_t>(SensingSpec::kVersion));
    s.set("miss", sensing.detection_miss);
    s.set("spurious", sensing.spurious);
    s.set("dropout", sensing.dropout);
    doc.set("sensing", s);
  }
  doc.set("trials", trials);
  doc.set("threads", static_cast<std::uint64_t>(threads));
  doc.set("seed", seed);
  doc.set("engine", engine_mode_name(engine));
  doc.set("property-fraction", property_fraction);
  doc.set("tracked", tracked);
  doc.set("checkpoints", checkpoints);
  doc.set("radius", radius);
  if (!dynamics.empty()) {
    doc.set("dynamics", dynamics);
  }
  return doc;
}

util::JsonValue ScenarioSpec::identity_json(const Registry& registry) const {
  util::JsonValue doc = to_json();
  doc.set("topology", registry.canonical(topology));
  if (!dynamics.empty()) {
    doc.set("dynamics", DynamicsRegistry::built_in().canonical(dynamics));
  }
  util::JsonValue identity = util::JsonValue::object();
  // Rebuild without "threads": worker count changes how fast an
  // experiment runs, never what it computes, so it must not split the
  // result cache.
  for (const auto& [key, value] : doc.entries()) {
    if (key != "threads") {
      identity.set(key, value);
    }
  }
  return identity;
}

std::string ScenarioSpec::identity_hash(const Registry& registry) const {
  return util::hex64(util::fnv1a64(identity_json(registry).dump(0)));
}

}  // namespace antdense::scenario
