// Runtime world-dynamics construction from spec strings — the
// perturbation-API sibling of scenario::Registry.
//
// A dynamics spec is "model:k=v,k=v" — one string selects (and
// parameterizes) a sim::WorldDynamics perturbation model at runtime, so
// dynamic scenarios sweep like any other campaign axis:
//
//   churn:p_edge=0.001,p_fail=0.0005     edge churn + node failure on a
//                                        time-varying topology overlay
//   drift:p_death=0.01,p_birth=0.01      agent birth/death (density
//                                        under population drift)
//   fade:p0=0.1,step=0.02                per-agent time-varying
//                                        detection-miss probability
//
// The grammar mirrors the topology registry exactly: strict key=value
// parsing (unknown keys, duplicates-last-wins, typed values), canonical
// re-emission with all defaults made explicit (identity_json embeds the
// canonical spelling, so "churn:p_fail=0,p_edge=0" and
// "churn:p_edge=0,p_fail=0" hash identically), and diagnostics that
// name the model and the offending key=value.  Model factories bind to
// the scenario's substrate and agent count, which only the Experiment
// knows — hence make() takes both.
//
// When the library is configured with ANTDENSE_DYNAMICS=OFF, built_in()
// is empty: every dynamics spec fails with "unknown dynamics model",
// keeping the rejection at spec-parse time rather than deep in an
// engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"
#include "sim/dynamics.hpp"

namespace antdense::scenario {

class DynamicsRegistry {
 public:
  struct Family {
    /// Builds the model from the text after "model:", bound to the
    /// scenario's substrate and agent-slot count.  The returned model
    /// must not outlive `topo`.
    std::function<std::unique_ptr<sim::WorldDynamics>(
        const std::string& params, const graph::AnyTopology& topo,
        std::uint32_t agents)>
        make;
    /// Parses the params and re-emits the canonical "model:..." spec
    /// with every default made explicit.
    std::function<std::string(const std::string& params)> canonical;
    /// Grammar line plus an example for `antdense_run --list-dynamics`.
    std::string grammar;
  };

  /// The registry holding the built-in models (churn, drift, fade) —
  /// empty when compiled with ANTDENSE_DYNAMICS=OFF.
  static const DynamicsRegistry& built_in();

  /// Registers (or replaces) a model family under `name`.
  void register_family(const std::string& name, Family family);

  bool has_family(const std::string& name) const;
  std::vector<std::string> family_names() const;
  /// The registered grammar line for `name` (empty when the family did
  /// not provide one); throws std::invalid_argument on unknown names.
  const std::string& grammar(const std::string& name) const;

  /// Parses "model:params" and builds the model against `topo` /
  /// `agents`.  Throws std::invalid_argument on an unknown model or
  /// malformed params.
  std::unique_ptr<sim::WorldDynamics> make(const std::string& spec,
                                           const graph::AnyTopology& topo,
                                           std::uint32_t agents) const;

  /// Parses and re-serializes the spec into its canonical spelling
  /// (idempotent; same error behavior as make).
  std::string canonical(const std::string& spec) const;

 private:
  const Family& family_for(const std::string& spec,
                           std::string* params) const;

  std::map<std::string, Family> families_;
};

}  // namespace antdense::scenario
