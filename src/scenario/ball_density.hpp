// Topology-generic local density: the scenario layer's counterpart of
// sim::LocalDensityObserver (which is Torus2D-specific).  The ball
// around an agent is enumerated by breadth-first expansion through
// AnyTopology::append_neighbors, so "agents within graph distance r"
// works on every substrate the Registry can build; on the 2-D torus the
// graph-distance ball *is* the wrap-aware L1 ball, and the two observers
// agree exactly (tests/test_scenario.cpp pins this).
//
// Cost: one BFS per agent per checkpoint (O(agents x ball size)) — the
// walk's hot loop is untouched; balls are only expanded at snapshots.
//
// Shard-safe: every density row is preallocated (checkpoints x agents)
// and after_round writes only the view's agent slice, so the sharded
// engine can run one hook per shard concurrently; BFS scratch and the
// per-node memo are hook-local.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/any_topology.hpp"
#include "sim/walk_engine.hpp"

namespace antdense::scenario {

/// WalkEngine observer recording, at each checkpoint, every agent's
/// local density: (other agents within graph distance `radius`) /
/// (nodes within graph distance `radius`).
class BallDensityObserver {
 public:
  BallDensityObserver(const graph::AnyTopology& topo, std::uint32_t radius,
                      std::vector<std::uint32_t> checkpoints,
                      std::uint32_t num_agents);

  template <typename View>
  void after_round(const View& v, std::span<const std::uint64_t> positions) {
    record(v.round, v.begin_agent, v.end_agent, positions,
           [&v](std::uint64_t key) { return v.counter.occupancy(key); });
  }

  const std::vector<std::uint32_t>& checkpoints() const {
    return checkpoints_;
  }
  /// densities()[i][a] = agent a's local density at checkpoint i.
  const std::vector<std::vector<double>>& densities() const {
    return densities_;
  }
  std::vector<std::vector<double>> take_densities() {
    return std::move(densities_);
  }

 private:
  /// Fills densities_[checkpoint_of(round)][begin..end) — a no-op for
  /// non-checkpoint rounds.  `occupancy` reads the round's collision
  /// counter (type-erased so both engine counters work; balls are only
  /// expanded at checkpoints, so the indirection is off the hot loop).
  void record(std::uint32_t round, std::uint32_t begin_agent,
              std::uint32_t end_agent,
              std::span<const std::uint64_t> positions,
              const std::function<std::uint32_t(std::uint64_t)>& occupancy);

  const graph::AnyTopology* topo_;
  std::uint32_t radius_;
  std::vector<std::uint32_t> checkpoints_;
  std::vector<std::vector<double>> densities_;
};

}  // namespace antdense::scenario
