#include "scenario/ball_density.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.hpp"

namespace antdense::scenario {

BallDensityObserver::BallDensityObserver(
    const graph::AnyTopology& topo, std::uint32_t radius,
    std::vector<std::uint32_t> checkpoints, std::uint32_t num_agents)
    : topo_(&topo), radius_(radius), checkpoints_(std::move(checkpoints)) {
  sim::detail::validate_checkpoints(checkpoints_);
  ANTDENSE_CHECK(num_agents >= 1, "need at least one agent");
  densities_.assign(checkpoints_.size(),
                    std::vector<double>(num_agents, 0.0));
}

void BallDensityObserver::record(
    std::uint32_t round, std::uint32_t begin_agent, std::uint32_t end_agent,
    std::span<const std::uint64_t> positions,
    const std::function<std::uint32_t(std::uint64_t)>& occupancy) {
  const auto it =
      std::lower_bound(checkpoints_.begin(), checkpoints_.end(), round);
  if (it == checkpoints_.end() || *it != round) {
    return;
  }
  std::vector<double>& row =
      densities_[static_cast<std::size_t>(it - checkpoints_.begin())];
  ANTDENSE_ASSERT(positions.size() == row.size(),
                  "observer sized for a different agent count");

  // Hook-local BFS scratch: nodes are deduplicated by key, which is
  // unique per node for every Topology.  Co-located agents see the same
  // ball, so density is memoized per occupied node (per hook call — one
  // shard's slice under the sharded engine).
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> next;
  std::unordered_map<std::uint64_t, double> by_start_key;
  for (std::uint32_t a = begin_agent; a < end_agent; ++a) {
    const std::uint64_t start = positions[a];
    const auto memo = by_start_key.find(topo_->key(start));
    if (memo != by_start_key.end()) {
      row[a] = memo->second;
      continue;
    }
    visited.clear();
    frontier.clear();
    frontier.push_back(start);
    visited.insert(topo_->key(start));
    std::uint64_t occupants = occupancy(topo_->key(start));
    for (std::uint32_t depth = 0; depth < radius_; ++depth) {
      // Saturated: the ball already covers the graph (e.g. the complete
      // graph at radius >= 1), so further expansion finds nothing new.
      if (frontier.empty() || visited.size() == topo_->num_nodes()) {
        break;
      }
      next.clear();
      for (const std::uint64_t u : frontier) {
        const std::size_t before = next.size();
        topo_->append_neighbors(u, next);
        // Keep only first-visited nodes in the next frontier.
        std::size_t kept = before;
        for (std::size_t i = before; i < next.size(); ++i) {
          const std::uint64_t k = topo_->key(next[i]);
          if (visited.insert(k).second) {
            occupants += occupancy(k);
            next[kept++] = next[i];
          }
        }
        next.resize(kept);
      }
      frontier.swap(next);
    }
    // `occupants` counts the agent itself exactly once.
    const double density = static_cast<double>(occupants - 1) /
                           static_cast<double>(visited.size());
    by_start_key.emplace(topo_->key(start), density);
    row[a] = density;
  }
}

}  // namespace antdense::scenario
