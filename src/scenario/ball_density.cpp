#include "scenario/ball_density.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.hpp"

namespace antdense::scenario {

BallDensityObserver::BallDensityObserver(
    const graph::AnyTopology& topo, std::uint32_t radius,
    std::vector<std::uint32_t> checkpoints)
    : topo_(&topo), radius_(radius), checkpoints_(std::move(checkpoints)) {
  sim::detail::validate_checkpoints(checkpoints_);
}

void BallDensityObserver::after_round(
    const sim::RoundView& v, std::span<const std::uint64_t> positions) {
  if (next_checkpoint_ >= checkpoints_.size() ||
      v.round != checkpoints_[next_checkpoint_]) {
    return;
  }
  ++next_checkpoint_;

  std::vector<double> row;
  row.reserve(positions.size());
  // Reused BFS scratch: nodes are deduplicated by key, which is unique
  // per node for every Topology.  Co-located agents see the same ball,
  // so density is memoized per occupied node.
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> next;
  std::unordered_map<std::uint64_t, double> by_start_key;
  for (const std::uint64_t start : positions) {
    const auto memo = by_start_key.find(topo_->key(start));
    if (memo != by_start_key.end()) {
      row.push_back(memo->second);
      continue;
    }
    visited.clear();
    frontier.clear();
    frontier.push_back(start);
    visited.insert(topo_->key(start));
    std::uint64_t occupants = v.counter.occupancy(topo_->key(start));
    for (std::uint32_t depth = 0; depth < radius_; ++depth) {
      // Saturated: the ball already covers the graph (e.g. the complete
      // graph at radius >= 1), so further expansion finds nothing new.
      if (frontier.empty() || visited.size() == topo_->num_nodes()) {
        break;
      }
      next.clear();
      for (const std::uint64_t u : frontier) {
        const std::size_t before = next.size();
        topo_->append_neighbors(u, next);
        // Keep only first-visited nodes in the next frontier.
        std::size_t kept = before;
        for (std::size_t i = before; i < next.size(); ++i) {
          const std::uint64_t k = topo_->key(next[i]);
          if (visited.insert(k).second) {
            occupants += v.counter.occupancy(k);
            next[kept++] = next[i];
          }
        }
        next.resize(kept);
      }
      frontier.swap(next);
    }
    // `occupants` counts the agent itself exactly once.
    const double density = static_cast<double>(occupants - 1) /
                           static_cast<double>(visited.size());
    by_start_key.emplace(topo_->key(start), density);
    row.push_back(density);
  }
  densities_.push_back(std::move(row));
}

}  // namespace antdense::scenario
