// First return and first meeting times.
//
// Kac's formula: on any regular graph the expected first-return time to
// a node equals A (the inverse stationary mass) — a sharp, closed-form
// cross-check of the whole walking engine.  First-meeting times of two
// walkers complement the re-collision curves: the re-collision bound
// controls how collisions *cluster*, the meeting time controls how long
// an agent waits between distinct encounter episodes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/parallel.hpp"

namespace antdense::walk {

struct FirstTimeStats {
  double mean = 0.0;
  double censored_fraction = 0.0;  // trials that never hit within the cap
  std::vector<double> samples;     // uncensored samples only
};

/// First return time to the start node (walk launched from a uniform
/// start), capped at `max_steps`.  Censored trials are excluded from the
/// mean and reported separately.
template <graph::Topology T>
FirstTimeStats measure_first_return(const T& topo, std::uint32_t max_steps,
                                    std::uint64_t trials, std::uint64_t seed,
                                    unsigned threads = 0) {
  std::vector<double> results(trials, -1.0);
  constexpr std::uint64_t kBlock = 512;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xF157u));
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          const auto origin = topo.random_node(gen);
          const std::uint64_t origin_key = topo.key(origin);
          auto u = origin;
          for (std::uint32_t m = 1; m <= max_steps; ++m) {
            u = topo.random_neighbor(u, gen);
            if (topo.key(u) == origin_key) {
              results[trial] = static_cast<double>(m);
              break;
            }
          }
        }
      },
      threads);

  FirstTimeStats out;
  std::uint64_t censored = 0;
  double total = 0.0;
  for (double r : results) {
    if (r < 0.0) {
      ++censored;
    } else {
      total += r;
      out.samples.push_back(r);
    }
  }
  out.censored_fraction =
      static_cast<double>(censored) / static_cast<double>(trials);
  out.mean = out.samples.empty()
                 ? 0.0
                 : total / static_cast<double>(out.samples.size());
  return out;
}

/// First meeting time of two walkers launched from independent uniform
/// starts, capped at `max_steps`.
template <graph::Topology T>
FirstTimeStats measure_first_meeting(const T& topo, std::uint32_t max_steps,
                                     std::uint64_t trials, std::uint64_t seed,
                                     unsigned threads = 0) {
  std::vector<double> results(trials, -1.0);
  constexpr std::uint64_t kBlock = 512;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xF2EEu));
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          auto a = topo.random_node(gen);
          auto b = topo.random_node(gen);
          if (topo.key(a) == topo.key(b)) {
            results[trial] = 0.0;
            continue;
          }
          for (std::uint32_t m = 1; m <= max_steps; ++m) {
            a = topo.random_neighbor(a, gen);
            b = topo.random_neighbor(b, gen);
            if (topo.key(a) == topo.key(b)) {
              results[trial] = static_cast<double>(m);
              break;
            }
          }
        }
      },
      threads);

  FirstTimeStats out;
  std::uint64_t censored = 0;
  double total = 0.0;
  for (double r : results) {
    if (r < 0.0) {
      ++censored;
    } else {
      total += r;
      out.samples.push_back(r);
    }
  }
  out.censored_fraction =
      static_cast<double>(censored) / static_cast<double>(trials);
  out.mean = out.samples.empty()
                 ? 0.0
                 : total / static_cast<double>(out.samples.size());
  return out;
}

}  // namespace antdense::walk
