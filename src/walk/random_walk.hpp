// Single-walk utilities: stepping, path recording.  The lemma-level
// experiments (re-collision, equalization, displacement) build on these.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::walk {

/// Advances a walker `steps` times and returns its final node.
template <graph::Topology T>
typename T::node_type walk_steps(const T& topo, typename T::node_type start,
                                 std::uint32_t steps,
                                 rng::Xoshiro256pp& gen) {
  typename T::node_type u = start;
  for (std::uint32_t s = 0; s < steps; ++s) {
    u = topo.random_neighbor(u, gen);
  }
  return u;
}

/// Records the full path: result[0] = start, result[m] = position after m
/// steps.  Used by tests that need the trajectory.
template <graph::Topology T>
std::vector<typename T::node_type> walk_path(const T& topo,
                                             typename T::node_type start,
                                             std::uint32_t steps,
                                             rng::Xoshiro256pp& gen) {
  std::vector<typename T::node_type> path;
  path.reserve(steps + 1);
  path.push_back(start);
  typename T::node_type u = start;
  for (std::uint32_t s = 0; s < steps; ++s) {
    u = topo.random_neighbor(u, gen);
    path.push_back(u);
  }
  return path;
}

}  // namespace antdense::walk
