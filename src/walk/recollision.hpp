// Empirical re-collision probability curves — the measurable content of
// Lemma 4 (2-D torus), Lemma 20 (ring), Lemma 22 (k-dim torus), Lemma 23
// (expander) and Lemma 25 (hypercube).
//
// Protocol: place two walkers on the same uniformly random node (a
// collision at round 0), walk both synchronously, and record for every
// m <= m_max whether they occupy the same node at round m.  The estimate
// of P[C | collision at 0] at each m comes from many independent trials.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/parallel.hpp"

namespace antdense::walk {

struct RecollisionCurve {
  /// probability[m] = empirical P[walkers coincide at round m];
  /// probability[0] == 1 by construction.
  std::vector<double> probability;
  std::uint64_t trials = 0;

  /// Raw hit counts, for exact binomial confidence intervals.
  std::vector<std::uint64_t> hits;
};

/// Measures the re-collision curve with `trials` independent pairs.
/// Deterministic in `seed` for any thread count.
template <graph::Topology T>
RecollisionCurve measure_recollision_curve(const T& topo, std::uint32_t m_max,
                                           std::uint64_t trials,
                                           std::uint64_t seed,
                                           unsigned threads = 0) {
  constexpr std::uint64_t kBlock = 4096;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  std::vector<std::vector<std::uint64_t>> block_hits(
      num_blocks, std::vector<std::uint64_t>(m_max + 1, 0));

  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xC0DEu));
        auto& hits = block_hits[block];
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          typename T::node_type a = topo.random_node(gen);
          typename T::node_type b = a;
          ++hits[0];
          for (std::uint32_t m = 1; m <= m_max; ++m) {
            a = topo.random_neighbor(a, gen);
            b = topo.random_neighbor(b, gen);
            if (topo.key(a) == topo.key(b)) {
              ++hits[m];
            }
          }
        }
      },
      threads);

  RecollisionCurve out;
  out.trials = trials;
  out.hits.assign(m_max + 1, 0);
  for (const auto& hits : block_hits) {
    for (std::uint32_t m = 0; m <= m_max; ++m) {
      out.hits[m] += hits[m];
    }
  }
  out.probability.reserve(m_max + 1);
  for (std::uint32_t m = 0; m <= m_max; ++m) {
    out.probability.push_back(static_cast<double>(out.hits[m]) /
                              static_cast<double>(trials));
  }
  return out;
}

/// Samples the pair collision count over rounds 1..t conditioned on a
/// collision at round 0 (both walkers start on the same node) — the
/// quantity whose k-th moments Claim 14 bounds by k! w^k log^k(2t).
/// Returns one count per trial.
template <graph::Topology T>
std::vector<double> pair_collision_counts_given_first(const T& topo,
                                                      std::uint32_t t,
                                                      std::uint64_t trials,
                                                      std::uint64_t seed,
                                                      unsigned threads = 0) {
  std::vector<double> counts(trials, 0.0);
  constexpr std::uint64_t kBlock = 1024;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xC011u));
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          typename T::node_type a = topo.random_node(gen);
          typename T::node_type b = a;
          std::uint64_t c = 0;
          for (std::uint32_t m = 1; m <= t; ++m) {
            a = topo.random_neighbor(a, gen);
            b = topo.random_neighbor(b, gen);
            if (topo.key(a) == topo.key(b)) {
              ++c;
            }
          }
          counts[trial] = static_cast<double>(c);
        }
      },
      threads);
  return counts;
}

}  // namespace antdense::walk
