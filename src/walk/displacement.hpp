// End-position distribution of a single m-step walk — Lemma 9's
// max-probability bound O(1/(m+1) + 1/A) and the per-axis Claims 6/7.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "walk/random_walk.hpp"

namespace antdense::walk {

struct DisplacementStats {
  double max_position_probability = 0.0;  // max_v P[walk ends at v]
  double origin_probability = 0.0;        // P[walk ends at its origin]
  std::uint64_t distinct_positions = 0;
  std::uint64_t trials = 0;
};

/// Runs `trials` m-step walks from a fixed origin and tabulates the
/// empirical end-position distribution.
template <graph::Topology T>
DisplacementStats measure_displacement(const T& topo,
                                       typename T::node_type origin,
                                       std::uint32_t m, std::uint64_t trials,
                                       std::uint64_t seed) {
  rng::Xoshiro256pp gen(rng::derive_seed(seed, m, 0xD15Fu));
  std::unordered_map<std::uint64_t, std::uint64_t> ends;
  ends.reserve(static_cast<std::size_t>(trials) * 2);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto end = walk_steps(topo, origin, m, gen);
    ++ends[topo.key(end)];
  }
  DisplacementStats out;
  out.trials = trials;
  out.distinct_positions = ends.size();
  std::uint64_t max_count = 0;
  for (const auto& [key, count] : ends) {
    if (count > max_count) {
      max_count = count;
    }
  }
  out.max_position_probability =
      static_cast<double>(max_count) / static_cast<double>(trials);
  const auto it = ends.find(topo.key(origin));
  out.origin_probability =
      it == ends.end()
          ? 0.0
          : static_cast<double>(it->second) / static_cast<double>(trials);
  return out;
}

}  // namespace antdense::walk
