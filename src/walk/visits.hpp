// Node-visit statistics for a single walk — Corollary 15.
//
// A t-step walk from a uniformly random start visits a *fixed* node j
// with probability O((t/A) log 2t), and conditioned on visiting at all,
// the expected number of visits is Θ(log 2t).  These are the quantities
// the sensor-network application (Section 6.3.1) cares about: repeat
// visits are the only gap between token sampling and independent
// sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/parallel.hpp"

namespace antdense::walk {

struct VisitStats {
  double p_visit = 0.0;             // P[c_j >= 1]
  double mean_visits_given_any = 0.0;  // E[c_j | c_j >= 1]
  double mean_visits = 0.0;            // E[c_j] (should be ~t/A)
  std::vector<double> counts;          // per-trial visit counts (c_j)
};

/// Measures visit statistics of a fixed target node over `trials`
/// independent t-step walks with uniform starting nodes.
template <graph::Topology T>
VisitStats measure_visits(const T& topo, typename T::node_type target,
                          std::uint32_t t, std::uint64_t trials,
                          std::uint64_t seed, unsigned threads = 0) {
  std::vector<double> counts(trials, 0.0);
  constexpr std::uint64_t kBlock = 1024;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  const std::uint64_t target_key = topo.key(target);
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0x1717u));
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          typename T::node_type u = topo.random_node(gen);
          std::uint64_t c = topo.key(u) == target_key ? 1 : 0;
          for (std::uint32_t m = 1; m <= t; ++m) {
            u = topo.random_neighbor(u, gen);
            if (topo.key(u) == target_key) {
              ++c;
            }
          }
          counts[trial] = static_cast<double>(c);
        }
      },
      threads);

  VisitStats out;
  std::uint64_t visited = 0;
  double total = 0.0;
  for (double c : counts) {
    total += c;
    if (c >= 1.0) {
      ++visited;
    }
  }
  out.p_visit = static_cast<double>(visited) / static_cast<double>(trials);
  out.mean_visits = total / static_cast<double>(trials);
  out.mean_visits_given_any =
      visited == 0 ? 0.0 : total / static_cast<double>(visited);
  out.counts = std::move(counts);
  return out;
}

}  // namespace antdense::walk
