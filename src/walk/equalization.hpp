// Equalization (return-to-origin) measurements — Corollary 10 (the
// probability that a walk is back at its origin after m steps is
// Θ(1/(m+1)) + O(1/A) on the 2-D torus, 0 for odd m) and Corollary 16
// (moments of the equalization count over t steps grow as
// k! w^k log^k(2t)).
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/parallel.hpp"

namespace antdense::walk {

struct EqualizationCurve {
  /// probability[m] = empirical P[walk is at its origin after m steps].
  std::vector<double> probability;
  std::vector<std::uint64_t> hits;
  std::uint64_t trials = 0;
};

/// Measures the equalization probability at every m <= m_max.
template <graph::Topology T>
EqualizationCurve measure_equalization_curve(const T& topo,
                                             std::uint32_t m_max,
                                             std::uint64_t trials,
                                             std::uint64_t seed,
                                             unsigned threads = 0) {
  constexpr std::uint64_t kBlock = 4096;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  std::vector<std::vector<std::uint64_t>> block_hits(
      num_blocks, std::vector<std::uint64_t>(m_max + 1, 0));

  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xE0AAu));
        auto& hits = block_hits[block];
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          const typename T::node_type origin = topo.random_node(gen);
          const std::uint64_t origin_key = topo.key(origin);
          typename T::node_type u = origin;
          ++hits[0];
          for (std::uint32_t m = 1; m <= m_max; ++m) {
            u = topo.random_neighbor(u, gen);
            if (topo.key(u) == origin_key) {
              ++hits[m];
            }
          }
        }
      },
      threads);

  EqualizationCurve out;
  out.trials = trials;
  out.hits.assign(m_max + 1, 0);
  for (const auto& hits : block_hits) {
    for (std::uint32_t m = 0; m <= m_max; ++m) {
      out.hits[m] += hits[m];
    }
  }
  out.probability.reserve(m_max + 1);
  for (std::uint32_t m = 0; m <= m_max; ++m) {
    out.probability.push_back(static_cast<double>(out.hits[m]) /
                              static_cast<double>(trials));
  }
  return out;
}

/// Samples the number of equalizations (returns to origin) of a t-step
/// walk; one count per trial (the Corollary 16 random variable).
template <graph::Topology T>
std::vector<double> equalization_counts(const T& topo, std::uint32_t t,
                                        std::uint64_t trials,
                                        std::uint64_t seed,
                                        unsigned threads = 0) {
  std::vector<double> counts(trials, 0.0);
  constexpr std::uint64_t kBlock = 1024;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0xE0BBu));
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          const typename T::node_type origin = topo.random_node(gen);
          const std::uint64_t origin_key = topo.key(origin);
          typename T::node_type u = origin;
          std::uint64_t c = 0;
          for (std::uint32_t m = 1; m <= t; ++m) {
            u = topo.random_neighbor(u, gen);
            if (topo.key(u) == origin_key) {
              ++c;
            }
          }
          counts[trial] = static_cast<double>(c);
        }
      },
      threads);
  return counts;
}

}  // namespace antdense::walk
