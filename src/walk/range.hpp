// Walk range: the number of distinct nodes a t-step walk visits.
//
// On the 2-D torus the range grows as Θ(t / log t) (Dvoretzky–Erdős) —
// the flip side of Corollary 15's Θ(log t) repeat-visit law, and the
// quantity that determines how many distinct sensors/locations a token
// actually samples (Section 6.3.1).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/topology.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/parallel.hpp"

namespace antdense::walk {

struct RangeStats {
  double mean_range = 0.0;        // E[#distinct nodes in t steps]
  double mean_range_fraction = 0.0;  // mean range / (t + 1)
  std::vector<double> samples;
};

/// Measures the range of t-step walks from uniform starts (the start
/// node counts as visited).
template <graph::Topology T>
RangeStats measure_walk_range(const T& topo, std::uint32_t t,
                              std::uint64_t trials, std::uint64_t seed,
                              unsigned threads = 0) {
  std::vector<double> samples(trials, 0.0);
  constexpr std::uint64_t kBlock = 256;
  const std::uint64_t num_blocks = (trials + kBlock - 1) / kBlock;
  util::parallel_for(
      num_blocks,
      [&](std::size_t block) {
        rng::Xoshiro256pp gen(rng::derive_seed(seed, block, 0x4A46u));
        std::unordered_set<std::uint64_t> visited;
        visited.reserve(static_cast<std::size_t>(t) * 2);
        const std::uint64_t begin = block * kBlock;
        const std::uint64_t end =
            begin + kBlock < trials ? begin + kBlock : trials;
        for (std::uint64_t trial = begin; trial < end; ++trial) {
          visited.clear();
          auto u = topo.random_node(gen);
          visited.insert(topo.key(u));
          for (std::uint32_t s = 0; s < t; ++s) {
            u = topo.random_neighbor(u, gen);
            visited.insert(topo.key(u));
          }
          samples[trial] = static_cast<double>(visited.size());
        }
      },
      threads);

  RangeStats out;
  double total = 0.0;
  for (double s : samples) {
    total += s;
  }
  out.mean_range = total / static_cast<double>(trials);
  out.mean_range_fraction = out.mean_range / (t + 1.0);
  out.samples = std::move(samples);
  return out;
}

}  // namespace antdense::walk
