#include "sensor/field.hpp"

#include <cmath>
#include <numbers>

#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::sensor {

using graph::Torus2D;

SensorField::SensorField(const Torus2D& torus, std::vector<double> values)
    : torus_(torus), values_(std::move(values)) {
  ANTDENSE_CHECK(values_.size() == torus.num_nodes(),
                 "field must have one value per node");
  double acc = 0.0;
  for (double v : values_) {
    acc += v;
  }
  mean_ = acc / static_cast<double>(values_.size());
}

SensorField SensorField::bernoulli(const Torus2D& torus, double p,
                                   std::uint64_t seed) {
  ANTDENSE_CHECK(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xF1E1Du));
  std::vector<double> values(torus.num_nodes());
  for (double& v : values) {
    v = rng::bernoulli(gen, p) ? 1.0 : 0.0;
  }
  return SensorField(torus, std::move(values));
}

SensorField SensorField::uniform(const Torus2D& torus, double lo, double hi,
                                 std::uint64_t seed) {
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xF1E2Du));
  std::vector<double> values(torus.num_nodes());
  for (double& v : values) {
    v = rng::uniform_real(gen, lo, hi);
  }
  return SensorField(torus, std::move(values));
}

SensorField SensorField::gradient(const Torus2D& torus) {
  std::vector<double> values(torus.num_nodes());
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::uint32_t y = 0; y < torus.height(); ++y) {
    for (std::uint32_t x = 0; x < torus.width(); ++x) {
      const double phase_x = two_pi * x / torus.width();
      const double phase_y = two_pi * y / torus.height();
      values[torus.key(Torus2D::pack(x, y))] =
          1.0 + 0.5 * std::sin(phase_x) + 0.5 * std::cos(phase_y);
    }
  }
  return SensorField(torus, std::move(values));
}

}  // namespace antdense::sensor
