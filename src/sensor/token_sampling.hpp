// Random-walk sensor sampling (Section 6.3.1).
//
// A query token walks the sensor grid, averaging the values it observes
// — *without* tracking which sensors it already visited.  The paper's
// visit moment bounds (Corollary 15) predict that the repeat-visit
// penalty is only logarithmic on the grid, so the naive token should be
// close to:
//   - the dedup variant (remembers visited sensors — the costly version
//     the paper argues is unnecessary), and
//   - independent sampling (the idealized reference).
#pragma once

#include <cstdint>

#include "sensor/field.hpp"

namespace antdense::sensor {

struct TokenSamplingResult {
  double walk_estimate = 0.0;         // mean over all t observations
  double dedup_estimate = 0.0;        // mean over first visits only
  double independent_estimate = 0.0;  // mean of t i.i.d. node samples
  std::uint32_t unique_sensors = 0;   // distinct sensors the token saw
  std::uint32_t steps = 0;
};

/// One token walk of `steps` steps from a uniformly random start, plus
/// the dedup and independent-sampling references computed on the same
/// field.  Deterministic in `seed`.
TokenSamplingResult run_token_sampling(const SensorField& field,
                                       std::uint32_t steps,
                                       std::uint64_t seed);

}  // namespace antdense::sensor
