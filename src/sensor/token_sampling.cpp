#include "sensor/token_sampling.hpp"

#include <unordered_set>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::sensor {

TokenSamplingResult run_token_sampling(const SensorField& field,
                                       std::uint32_t steps,
                                       std::uint64_t seed) {
  ANTDENSE_CHECK(steps >= 1, "need at least one step");
  const graph::Torus2D& torus = field.torus();
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x70C3u));

  TokenSamplingResult out;
  out.steps = steps;

  // Token walk: observe after each step (t observations).
  auto u = torus.random_node(gen);
  std::unordered_set<std::uint64_t> visited;
  visited.reserve(steps * 2);
  double walk_sum = 0.0;
  double dedup_sum = 0.0;
  for (std::uint32_t s = 0; s < steps; ++s) {
    u = torus.random_neighbor(u, gen);
    const double v = field.value(u);
    walk_sum += v;
    if (visited.insert(torus.key(u)).second) {
      dedup_sum += v;
    }
  }
  out.walk_estimate = walk_sum / steps;
  out.unique_sensors = static_cast<std::uint32_t>(visited.size());
  out.dedup_estimate = dedup_sum / static_cast<double>(visited.size());

  // Independent sampling reference: t i.i.d. uniform sensors.
  double indep_sum = 0.0;
  for (std::uint32_t s = 0; s < steps; ++s) {
    indep_sum += field.value(torus.random_node(gen));
  }
  out.independent_estimate = indep_sum / steps;
  return out;
}

}  // namespace antdense::sensor
