// Synthetic sensor fields over the 2-D torus (Section 6.3.1's setting:
// a grid communication network of sensors, each holding a measurement).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/torus2d.hpp"

namespace antdense::sensor {

/// A scalar value per torus node.
class SensorField {
 public:
  SensorField(const graph::Torus2D& torus, std::vector<double> values);

  double value(graph::Torus2D::node_type node) const {
    return values_[torus_.key(node)];
  }

  double mean() const { return mean_; }
  const graph::Torus2D& torus() const { return torus_; }

  /// i.i.d. Bernoulli(p) field — "fraction of sensors that recorded the
  /// condition" (the paper's density special case: indicator values).
  static SensorField bernoulli(const graph::Torus2D& torus, double p,
                               std::uint64_t seed);

  /// i.i.d. uniform values in [lo, hi) — general data aggregation.
  static SensorField uniform(const graph::Torus2D& torus, double lo,
                             double hi, std::uint64_t seed);

  /// Smooth deterministic gradient (sinusoidal in both axes) — spatially
  /// *correlated* values, the regime where repeat visits hurt most.
  static SensorField gradient(const graph::Torus2D& torus);

 private:
  graph::Torus2D torus_;
  std::vector<double> values_;
  double mean_ = 0.0;
};

}  // namespace antdense::sensor
