// The [KLSC14] (Katzir, Liberty, Somekh, Cosma) baseline that Section
// 5.1.5 compares against: run R walks to stationarity, *halt*, and
// estimate size from the one-shot collision statistics of the final
// positions (a degree-corrected birthday-paradox estimator):
//
//     Ã = (Σ_i deg(x_i)) · (Σ_i 1/deg(x_i)) / (2 · #colliding pairs).
//
// Every query budget goes into burn-in (R·M queries); the paper's
// algorithm instead amortizes burn-in over t post-burn-in counting
// rounds, which wins when mixing is slow.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace antdense::netsize {

struct KatzirConfig {
  std::uint32_t num_walks = 0;
  std::uint32_t burn_in = 0;
  graph::Graph::vertex seed_vertex = 0;
  /// Idealized mode: sample final positions directly from the stationary
  /// distribution (costs 0 queries; isolates estimator quality from
  /// burn-in quality).
  bool start_stationary = false;
};

struct KatzirResult {
  double size_estimate = 0.0;  // +inf when no collisions observed
  std::uint64_t colliding_pairs = 0;
  std::uint64_t link_queries = 0;
  bool saw_collision = false;
};

KatzirResult katzir_estimate(const graph::Graph& g, const KatzirConfig& cfg,
                             std::uint64_t seed);

}  // namespace antdense::netsize
