// Algorithm 3 — average degree estimation by inverse-degree sampling.
//
// With walks in the stationary distribution, E[1/deg(w)] = |V|/2|E| =
// 1/avg_deg, so the sample mean of inverse degrees estimates 1/avg_deg.
// Theorem 31: n = Θ((1/ε²δ) · avg_deg/min_deg) samples suffice.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace antdense::netsize {

struct DegreeEstimationResult {
  double inverse_degree_mean = 0.0;    // D = (1/n) sum 1/deg(w_j)
  double average_degree_estimate = 0.0;  // 1/D
  std::uint32_t samples = 0;
};

/// Algorithm 3 over explicit positions (e.g. walker locations after
/// burn-in).  Returns the average-degree estimate computed from their
/// degrees.  This is the value Algorithm 2 consumes when it is not given
/// the exact average degree.
double estimate_average_degree_from_positions(
    const graph::Graph& g, const std::vector<graph::Graph::vertex>& positions);

/// Full Algorithm 3: draws `num_samples` vertices from the exact
/// stationary distribution (idealized mode) or via burn-in walks from
/// `seed_vertex`, then averages inverse degrees.
DegreeEstimationResult estimate_average_degree(
    const graph::Graph& g, std::uint32_t num_samples, bool start_stationary,
    std::uint32_t burn_in, graph::Graph::vertex seed_vertex,
    std::uint64_t seed);

}  // namespace antdense::netsize
