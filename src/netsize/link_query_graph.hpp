// The Section 5.1 access model: the graph can only be explored by
// neighborhood ("link") queries, and link queries are the cost unit the
// paper's comparison with [KLSC14] is measured in.
//
// Cost convention (matching Section 5.1.5's n(M+t) accounting): each
// random-walk *step* costs one query — stepping to a vertex fetches its
// neighbor list, so reading the current vertex's degree is free once you
// are standing on it.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::netsize {

class LinkQueryGraph {
 public:
  using vertex = graph::Graph::vertex;

  explicit LinkQueryGraph(const graph::Graph& g) : graph_(&g) {
    ANTDENSE_CHECK(g.num_vertices() > 0, "empty graph");
  }

  /// Degree of the vertex the walker is standing on — free (the neighbor
  /// list was fetched by the step that got us here).
  std::uint32_t degree(vertex v) const { return graph_->degree(v); }

  /// One random-walk step: costs one link query.
  template <rng::BitGenerator64 G>
  vertex random_neighbor(vertex v, G& gen) {
    ++queries_;
    const std::uint32_t d = graph_->degree(v);
    ANTDENSE_CHECK(d > 0, "walk reached an isolated vertex");
    return graph_->neighbor(
        v, static_cast<std::uint32_t>(rng::uniform_below(gen, d)));
  }

  std::uint64_t query_count() const { return queries_; }
  void reset_query_count() { queries_ = 0; }

  const graph::Graph& graph() const { return *graph_; }

 private:
  const graph::Graph* graph_;
  std::uint64_t queries_ = 0;
};

/// Degree-proportional (stationary-distribution) vertex sampling for the
/// idealized analyses: a uniformly random adjacency slot's owner is a
/// degree-proportional vertex.  O(log V) per sample after O(V) setup.
class StationarySampler {
 public:
  explicit StationarySampler(const graph::Graph& g);

  template <rng::BitGenerator64 G>
  graph::Graph::vertex sample(G& gen) const {
    const std::uint64_t slot = rng::uniform_below(gen, total_slots_);
    // Find the owner: the largest v with prefix_[v] <= slot.
    std::uint32_t lo = 0;
    std::uint32_t hi = static_cast<std::uint32_t>(prefix_.size()) - 1;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo + 1) / 2;
      if (prefix_[mid] <= slot) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

 private:
  std::vector<std::uint64_t> prefix_;  // prefix_[v] = sum of degrees < v
  std::uint64_t total_slots_ = 0;
};

}  // namespace antdense::netsize
