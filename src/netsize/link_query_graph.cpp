#include "netsize/link_query_graph.hpp"

namespace antdense::netsize {

StationarySampler::StationarySampler(const graph::Graph& g) {
  const std::uint32_t n = g.num_vertices();
  ANTDENSE_CHECK(n > 0, "empty graph");
  prefix_.resize(n);
  std::uint64_t acc = 0;
  for (graph::Graph::vertex v = 0; v < n; ++v) {
    prefix_[v] = acc;
    acc += g.degree(v);
  }
  total_slots_ = acc;
  ANTDENSE_CHECK(total_slots_ > 0, "graph has no edges");
}

}  // namespace antdense::netsize
