#include "netsize/size_estimator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "netsize/degree_estimator.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::netsize {

using graph::Graph;

void SizeEstimationConfig::validate() const {
  ANTDENSE_CHECK(num_walks >= 2, "Algorithm 2 needs at least two walks");
  ANTDENSE_CHECK(rounds >= 1, "Algorithm 2 needs at least one round");
}

SizeEstimationResult estimate_network_size(const Graph& g,
                                           const SizeEstimationConfig& cfg,
                                           std::uint64_t seed) {
  cfg.validate();
  ANTDENSE_CHECK(cfg.seed_vertex < g.num_vertices(),
                 "seed vertex out of range");

  LinkQueryGraph access(g);
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x512Eu));
  const std::uint32_t n = cfg.num_walks;

  // --- Placement: exact stationary sample or crawl-style burn-in. ---
  std::vector<Graph::vertex> walkers(n);
  if (cfg.start_stationary) {
    const StationarySampler sampler(g);
    for (auto& w : walkers) {
      w = sampler.sample(gen);
    }
  } else {
    for (auto& w : walkers) {
      w = cfg.seed_vertex;
      for (std::uint32_t s = 0; s < cfg.burn_in; ++s) {
        w = access.random_neighbor(w, gen);
      }
    }
  }

  // --- Average degree: caller-provided or Algorithm 3 on the starts. ---
  double avg_degree = cfg.average_degree;
  if (avg_degree <= 0.0) {
    avg_degree = estimate_average_degree_from_positions(g, walkers);
  }

  // --- Algorithm 2's main loop. ---
  std::vector<double> weighted_counts(n, 0.0);
  std::unordered_map<Graph::vertex, std::uint32_t> occupancy;
  occupancy.reserve(static_cast<std::size_t>(n) * 2);
  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    occupancy.clear();
    for (auto& w : walkers) {
      w = access.random_neighbor(w, gen);
      ++occupancy[w];
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t occ = occupancy[walkers[j]];
      if (occ > 1) {
        weighted_counts[j] += static_cast<double>(occ - 1) /
                              static_cast<double>(g.degree(walkers[j]));
      }
    }
  }

  double total = 0.0;
  for (double c : weighted_counts) {
    total += c;
  }

  SizeEstimationResult result;
  result.average_degree_used = avg_degree;
  result.link_queries = access.query_count();
  result.saw_collision = total > 0.0;
  result.collision_statistic =
      avg_degree * total /
      (static_cast<double>(n) * static_cast<double>(n - 1) *
       static_cast<double>(cfg.rounds));
  result.size_estimate =
      result.saw_collision ? 1.0 / result.collision_statistic
                           : std::numeric_limits<double>::infinity();
  return result;
}

SizeEstimationResult estimate_network_size_median(
    const Graph& g, const SizeEstimationConfig& cfg,
    std::uint32_t repetitions, std::uint64_t seed) {
  ANTDENSE_CHECK(repetitions >= 1, "need at least one repetition");
  std::vector<SizeEstimationResult> runs;
  runs.reserve(repetitions);
  for (std::uint32_t r = 0; r < repetitions; ++r) {
    runs.push_back(estimate_network_size(g, cfg, rng::derive_seed(seed, r)));
  }
  std::vector<double> sizes;
  std::uint64_t queries = 0;
  for (const auto& run : runs) {
    sizes.push_back(run.size_estimate);
    queries += run.link_queries;
  }
  std::sort(sizes.begin(), sizes.end());
  SizeEstimationResult out = runs[runs.size() / 2];
  out.size_estimate = sizes[sizes.size() / 2];
  out.link_queries = queries;
  out.saw_collision =
      out.size_estimate != std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace antdense::netsize
