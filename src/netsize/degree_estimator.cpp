#include "netsize/degree_estimator.hpp"

#include "netsize/link_query_graph.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::netsize {

using graph::Graph;

double estimate_average_degree_from_positions(
    const Graph& g, const std::vector<Graph::vertex>& positions) {
  ANTDENSE_CHECK(!positions.empty(), "need at least one position");
  double inv_sum = 0.0;
  for (Graph::vertex v : positions) {
    const std::uint32_t d = g.degree(v);
    ANTDENSE_CHECK(d > 0, "isolated vertex in sample");
    inv_sum += 1.0 / static_cast<double>(d);
  }
  const double mean_inv = inv_sum / static_cast<double>(positions.size());
  return 1.0 / mean_inv;
}

DegreeEstimationResult estimate_average_degree(const Graph& g,
                                               std::uint32_t num_samples,
                                               bool start_stationary,
                                               std::uint32_t burn_in,
                                               Graph::vertex seed_vertex,
                                               std::uint64_t seed) {
  ANTDENSE_CHECK(num_samples >= 1, "need at least one sample");
  ANTDENSE_CHECK(seed_vertex < g.num_vertices(), "seed vertex out of range");
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0xDE6u));
  std::vector<Graph::vertex> positions(num_samples);
  if (start_stationary) {
    const StationarySampler sampler(g);
    for (auto& p : positions) {
      p = sampler.sample(gen);
    }
  } else {
    LinkQueryGraph access(g);
    for (auto& p : positions) {
      p = seed_vertex;
      for (std::uint32_t s = 0; s < burn_in; ++s) {
        p = access.random_neighbor(p, gen);
      }
    }
  }
  DegreeEstimationResult out;
  out.samples = num_samples;
  out.average_degree_estimate =
      estimate_average_degree_from_positions(g, positions);
  out.inverse_degree_mean = 1.0 / out.average_degree_estimate;
  return out;
}

}  // namespace antdense::netsize
