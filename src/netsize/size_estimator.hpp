// Algorithm 2 — random-walk-based network size estimation (Section 5.1).
//
// n walks run for t rounds after burn-in; in each round every walker adds
// count(w_j)/deg(w_j) to its collision tally (collisions at high-degree
// vertices are down-weighted because the stationary distribution visits
// them more).  The degree-weighted collision rate
//     C = avg_deg * sum_j c_j / (n(n-1)t)
// has expectation 1/|V| (Lemma 28), so Ã = 1/C estimates the network
// size.  Theorem 27: n²t = Θ((B(t)·avg_deg + 1)|V| / (ε²δ)) suffices.
//
// Paper: Musco, Su & Lynch (PODC 2016, arXiv:1603.02981); full
// concept-to-header map in docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "netsize/link_query_graph.hpp"

namespace antdense::netsize {

struct SizeEstimationConfig {
  std::uint32_t num_walks = 0;
  std::uint32_t rounds = 0;  // the t of Algorithm 2
  /// Burn-in steps before counting; ignored when start_stationary.
  std::uint32_t burn_in = 0;
  /// All walks start at this vertex when burning in (the paper's "seed
  /// vertex" crawl model).
  graph::Graph::vertex seed_vertex = 0;
  /// Idealized mode: start walks i.i.d. from the exact stationary
  /// distribution (Theorem 27's hypothesis) instead of burn-in.
  bool start_stationary = false;
  /// Average degree input to Algorithm 2; <= 0 means "estimate it with
  /// Algorithm 3 from the walk starting positions".
  double average_degree = 0.0;

  void validate() const;
};

struct SizeEstimationResult {
  double size_estimate = 0.0;       // Ã = 1/C; +inf when no collisions
  double collision_statistic = 0.0;  // C
  double average_degree_used = 0.0;
  std::uint64_t link_queries = 0;
  bool saw_collision = false;
};

/// Runs Algorithm 2 (optionally preceded by Algorithm 3 for the degree
/// input).  Deterministic in `seed`.
SizeEstimationResult estimate_network_size(const graph::Graph& g,
                                           const SizeEstimationConfig& cfg,
                                           std::uint64_t seed);

/// Median-of-k amplification: the paper's remark that running log(1/δ)
/// independent estimates at confidence 2/3 and returning the median
/// boosts confidence to 1-δ with only logarithmic overhead.
SizeEstimationResult estimate_network_size_median(
    const graph::Graph& g, const SizeEstimationConfig& cfg,
    std::uint32_t repetitions, std::uint64_t seed);

}  // namespace antdense::netsize
