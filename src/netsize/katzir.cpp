#include "netsize/katzir.hpp"

#include <limits>
#include <unordered_map>
#include <vector>

#include "netsize/link_query_graph.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "util/check.hpp"

namespace antdense::netsize {

using graph::Graph;

KatzirResult katzir_estimate(const Graph& g, const KatzirConfig& cfg,
                             std::uint64_t seed) {
  ANTDENSE_CHECK(cfg.num_walks >= 2, "Katzir estimator needs >= 2 walks");
  ANTDENSE_CHECK(cfg.seed_vertex < g.num_vertices(),
                 "seed vertex out of range");

  LinkQueryGraph access(g);
  rng::Xoshiro256pp gen(rng::derive_seed(seed, 0x4A72u));
  std::vector<Graph::vertex> finals(cfg.num_walks);
  if (cfg.start_stationary) {
    const StationarySampler sampler(g);
    for (auto& v : finals) {
      v = sampler.sample(gen);
    }
  } else {
    for (auto& v : finals) {
      v = cfg.seed_vertex;
      for (std::uint32_t s = 0; s < cfg.burn_in; ++s) {
        v = access.random_neighbor(v, gen);
      }
    }
  }

  double sum_deg = 0.0;
  double sum_inv_deg = 0.0;
  std::unordered_map<Graph::vertex, std::uint64_t> occupancy;
  occupancy.reserve(static_cast<std::size_t>(cfg.num_walks) * 2);
  for (Graph::vertex v : finals) {
    const double d = g.degree(v);
    sum_deg += d;
    sum_inv_deg += 1.0 / d;
    ++occupancy[v];
  }
  std::uint64_t pairs = 0;
  for (const auto& [v, count] : occupancy) {
    pairs += count * (count - 1) / 2;
  }

  KatzirResult out;
  out.colliding_pairs = pairs;
  out.link_queries = access.query_count();
  out.saw_collision = pairs > 0;
  out.size_estimate =
      pairs > 0 ? sum_deg * sum_inv_deg / (2.0 * static_cast<double>(pairs))
                : std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace antdense::netsize
