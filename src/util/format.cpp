#include "util/format.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace antdense::util {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string format_auto(double value, int precision) {
  if (value == 0.0) {
    return "0";
  }
  const double mag = std::fabs(value);
  if (mag >= 1e7 || mag < 1e-4) {
    return format_sci(value, precision);
  }
  if (mag >= 100.0 && value == std::floor(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  return format_fixed(value, precision);
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int from_right = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --from_right;
    if (from_right > 0 && from_right % 3 == 0) {
      out.push_back(',');
    }
  }
  return out;
}

std::string format_shortest(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    return format_sci(value, 17);  // unreachable for finite doubles
  }
  return std::string(buf, ptr);
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace antdense::util
