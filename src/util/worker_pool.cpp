#include "util/worker_pool.hpp"

#include "util/check.hpp"

namespace antdense::util {

WorkerPool::WorkerPool(unsigned num_threads) : num_threads_(num_threads) {
  ANTDENSE_CHECK(num_threads >= 1, "worker pool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (unsigned w = 0; w + 1 < num_threads; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  // jthread joins on destruction.
}

void WorkerPool::work(std::uint64_t generation) {
  // Snapshot under the caller's lock-release: fn_/num_tasks_ are stable
  // for the whole generation (run() only mutates them under the mutex
  // before bumping generation_ and after the done barrier).
  const std::function<void(std::size_t)>* fn;
  std::size_t num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (generation != generation_) {
      return;  // stale wakeup; this generation is already over
    }
    fn = fn_;
    num_tasks = num_tasks_;
  }
  while (true) {
    const std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks) {
      return;
    }
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
      // Abandon the rest of this run so the barrier resolves promptly.
      next_task_.store(num_tasks, std::memory_order_relaxed);
      return;
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      generation = generation_;
      seen_generation = generation;
    }
    work(generation);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void WorkerPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) {
    return;
  }
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    workers_active_ = static_cast<unsigned>(workers_.size());
    generation = ++generation_;
  }
  start_cv_.notify_all();
  work(generation);  // the caller is one of the pool's threads
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace antdense::util
