// Thin loopback TCP socket wrapper — the transport under the serve
// layer (src/serve/).  Deliberately minimal and POSIX-only: the daemon
// speaks a length-prefixed framed protocol to local clients (the
// "millions of users" story terminates at a loopback reverse proxy in
// any real deployment), so all the repo needs is blocking connect /
// accept / send_all / recv_all plus an interruptible accept for clean
// shutdown.  No third-party dependency, matching the repo's bake-our-own
// policy for JSON (util/json.hpp).
//
// Error model: constructors and connect_loopback throw
// std::runtime_error (with errno text) when the OS refuses; I/O methods
// return false on peer disconnect instead of throwing, because a client
// hanging up mid-frame is normal traffic for a server, not a program
// error.  Writes use MSG_NOSIGNAL so a vanished peer can never deliver
// SIGPIPE to the daemon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace antdense::util {

/// A connected stream socket (move-only fd owner).
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of a connected fd (accept's result).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  static Socket connect_loopback(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `size` bytes; false when the peer is gone (EPIPE /
  /// ECONNRESET), throws std::runtime_error on any other OS error.
  bool send_all(const void* data, std::size_t size);

  /// Reads exactly `size` bytes; false on EOF or reset before the last
  /// byte (a truncated frame), throws on any other OS error.
  bool recv_all(void* data, std::size_t size);

  /// Half-close both directions (unblocks a peer or a thread blocked in
  /// recv on this socket); safe on an already-closed socket.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening socket bound to 127.0.0.1 (port 0 = OS-assigned; the
/// actual port is readable afterwards, which is how tests and the CI
/// smoke job avoid port collisions).
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks until a connection arrives (returning it) or `wake_fd`
  /// becomes readable / the listener is closed (returning an invalid
  /// Socket).  Pass wake_fd = -1 to wait on the listener alone.
  Socket accept_interruptible(int wake_fd);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A self-pipe: one readable fd, one writable fd.  The write end is
/// async-signal-safe and thread-safe to poke (used to wake accept loops
/// and signal waiters); the read end is what pollers watch.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  /// Writes one byte (best effort; a full pipe already wakes the poller).
  void poke();
  /// Drains pending bytes so the pipe can signal again.
  void drain();

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace antdense::util
