// Wall-clock timer for bench reporting.
#pragma once

#include <chrono>
#include <cstdint>

namespace antdense::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

  /// Integer nanoseconds elapsed — for machine-read timing fields.
  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace antdense::util
