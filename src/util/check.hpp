// Precondition and invariant checking for the antdense library.
//
// Public API entry points validate their arguments with ANTDENSE_CHECK and
// throw std::invalid_argument on violation (Core Guidelines I.5/I.6: state
// and check preconditions).  Internal invariants that indicate a library
// bug use ANTDENSE_ASSERT, which throws std::logic_error so that tests can
// observe the failure deterministically on every build type.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace antdense::util {

[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& message) {
  std::ostringstream os;
  os << "antdense: precondition failed: (" << expr << ") at " << file << ':'
     << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file,
                                           int line,
                                           const std::string& message) {
  std::ostringstream os;
  os << "antdense: internal invariant violated: (" << expr << ") at " << file
     << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw std::logic_error(os.str());
}

}  // namespace antdense::util

// Validates a caller-supplied precondition; throws std::invalid_argument.
#define ANTDENSE_CHECK(cond, message)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::antdense::util::throw_invalid_argument(#cond, __FILE__,         \
                                               __LINE__, (message));    \
    }                                                                   \
  } while (false)

// Validates an internal invariant; throws std::logic_error.
#define ANTDENSE_ASSERT(cond, message)                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::antdense::util::throw_logic_error(#cond, __FILE__, __LINE__,    \
                                          (message));                   \
    }                                                                   \
  } while (false)
