// Persistent worker pool for phase-structured parallelism.
//
// parallel_for (util/parallel.hpp) spawns and joins threads per call —
// fine for coarse work like Monte Carlo trials, hopeless for the
// sharded walk engine, which needs two synchronized parallel phases
// *per round* (step/count, then observe) across thousands of rounds.
// WorkerPool keeps its std::jthread workers alive across run() calls so
// a phase costs a condition-variable wake instead of a thread spawn.
//
// Each run(num_tasks, fn) invokes fn(i) for every i in [0, num_tasks)
// exactly once, handing indices out through an atomic counter (shards
// can have uneven cost), and returns only after every task has
// finished — run() is a full barrier, which is what makes the engine's
// "no shard observes round r until every shard has counted round r"
// invariant hold.  The calling thread participates in the work, so a
// pool constructed with N threads runs N-wide using N-1 workers.
//
// The first exception thrown by any task is rethrown from run() after
// the barrier; remaining indices of that run are abandoned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace antdense::util {

class WorkerPool {
 public:
  /// Creates a pool that runs `num_threads` wide (>= 1; the calling
  /// thread counts as one, so num_threads - 1 workers are spawned).
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, num_tasks), full barrier on return.
  /// fn must be safe to call concurrently for distinct indices.  Not
  /// reentrant: fn must not call run() on the same pool.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work(std::uint64_t generation);

  const unsigned num_threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped by run() to release workers
  std::size_t num_tasks_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  unsigned workers_active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  std::vector<std::jthread> workers_;
};

}  // namespace antdense::util
