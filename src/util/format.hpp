// Small numeric formatting helpers used by the table/CSV emitters and by
// bench output.  (libstdc++ 12 does not ship std::format, so these are
// implemented with snprintf.)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace antdense::util {

/// Formats a double with `precision` digits after the decimal point.
std::string format_fixed(double value, int precision = 4);

/// Formats a double in scientific notation with `precision` digits.
std::string format_sci(double value, int precision = 3);

/// Formats a double compactly: fixed for mid-range magnitudes, scientific
/// for very large/small values.  Intended for table cells.
std::string format_auto(double value, int precision = 4);

/// Formats an integer with thousands separators ("1,234,567").
std::string format_count(std::uint64_t value);

/// Formats a ratio as a percentage string with `precision` digits.
std::string format_percent(double fraction, int precision = 2);

/// Formats a double as its shortest exact round-trip decimal (via
/// std::to_chars), e.g. 0.1 -> "0.1", 0.5 -> "0.5", 1e-06 -> "1e-06".
/// Used by the scenario registry so canonical spec strings are the
/// stable identity of a topology.
std::string format_shortest(double value);

}  // namespace antdense::util
