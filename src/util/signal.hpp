// Graceful SIGINT / SIGTERM handling for the long-running drivers
// (antdense_sweep, antdense_serve).
//
// The handler does the only two async-signal-safe things that matter:
// it sets a flag and pokes a self-pipe.  Cooperative machinery then
// observes the flag at safe points — the campaign scheduler polls it
// through RunOptions::should_stop (so an interrupted sweep finishes the
// experiments already in flight, flushes its journal tail, and exits
// with code 3), and the serve daemon's accept loop polls the pipe fd to
// leave its blocking poll and shut down cleanly.  Contrast with SIGKILL
// semantics, where the journal's torn-tail truncation is the only
// safety net.
//
// Process-global by nature (signal dispositions are): install once from
// main().  termination_signal() additionally records *which* signal
// fired, so drivers can report it.
#pragma once

namespace antdense::util {

/// Installs the SIGINT and SIGTERM handlers (idempotent).  Subsequent
/// deliveries of either signal set the termination flag instead of
/// killing the process; a second delivery while the flag is already set
/// restores default disposition and re-raises, so a stuck process can
/// still be interrupted the hard way.
void install_termination_handlers();

/// True once SIGINT or SIGTERM has been delivered.
bool termination_requested();

/// The signal number that tripped the flag (0 when none yet).
int termination_signal();

/// The self-pipe read fd pollers can watch to learn about termination
/// without busy-waiting; -1 before install_termination_handlers().
int termination_wake_fd();

/// Blocks until termination_requested() becomes true.
void wait_for_termination();

/// Test support: clears the flag (the handlers stay installed).
void reset_termination_flag_for_testing();

}  // namespace antdense::util
