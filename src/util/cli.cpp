#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace antdense::util {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() >= 3 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" form: consume the next token if it is not a flag.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "true";
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::vector<std::string> Args::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      out.push_back(key);  // flags_ is a sorted map, so out is sorted
    }
  }
  return out;
}

std::vector<std::string> Args::unknown(
    std::initializer_list<const char*> known) const {
  return unknown(std::vector<std::string>(known.begin(), known.end()));
}

void Args::require_known(const std::vector<std::string>& known) const {
  if (!positional_.empty()) {
    // A flag missing its leading dashes lands here; reject it rather
    // than silently falling back to defaults.
    std::string message = "unexpected argument";
    if (positional_.size() > 1) {
      message += 's';
    }
    for (const std::string& p : positional_) {
      message += " '" + p + "'";
    }
    throw std::invalid_argument(message + " (flags are --key=value)");
  }
  const std::vector<std::string> bad = unknown(known);
  if (bad.empty()) {
    return;
  }
  std::string message = "unknown flag";
  if (bad.size() > 1) {
    message += 's';
  }
  for (const std::string& key : bad) {
    message += " --" + key;
  }
  message += "; known flags:";
  for (const std::string& key : known) {
    message += " --" + key;
  }
  throw std::invalid_argument(message);
}

void Args::require_known(std::initializer_list<const char*> known) const {
  require_known(std::vector<std::string>(known.begin(), known.end()));
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  ANTDENSE_CHECK(!it->second.empty(), "empty value for flag --" + key);
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Args::get_uint(const std::string& key,
                             std::uint64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  ANTDENSE_CHECK(!it->second.empty(), "empty value for flag --" + key);
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  ANTDENSE_CHECK(!it->second.empty(), "empty value for flag --" + key);
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace antdense::util
