// Minimal command-line flag parser for bench and example binaries.
//
// Supported syntax: --key=value, --key value, and bare --flag (boolean
// true).  Unknown positional arguments are collected separately.  The
// parser is intentionally tiny: benches need reproducible parameter
// overrides, nothing more.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace antdense::util {

class Args {
 public:
  Args() = default;
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed flags, for echoing experiment configuration.
  const std::map<std::string, std::string>& flags() const { return flags_; }

  /// Strict mode: the flags that were passed but are not in `known`,
  /// sorted — so drivers can reject typo'd flags instead of silently
  /// using fallbacks.
  std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;
  std::vector<std::string> unknown(
      std::initializer_list<const char*> known) const;

  /// Throws std::invalid_argument naming every unknown flag (and listing
  /// the known ones) when any flag outside `known` was passed, or when a
  /// positional token was passed (strict drivers take flags only, so a
  /// flag missing its leading dashes must not be silently dropped).
  void require_known(const std::vector<std::string>& known) const;
  void require_known(std::initializer_list<const char*> known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace antdense::util
