#include "util/parallel.hpp"

#include <algorithm>

namespace antdense::util {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t num_tasks,
                  const std::function<void(std::size_t)>& fn,
                  unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  if (num_tasks == 0) {
    return;
  }
  num_threads =
      std::min<std::size_t>(num_threads, num_tasks);
  if (num_threads == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Drain remaining work so all threads exit promptly.
        next.store(num_tasks, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    threads.emplace_back(worker);
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for_stoppable(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::stop_token)>& fn,
    unsigned num_threads, const std::function<bool()>& should_stop) {
  if (num_threads == 0) {
    num_threads = default_thread_count();
  }
  if (num_tasks == 0) {
    return;
  }
  num_threads = std::min<std::size_t>(num_threads, num_tasks);

  std::stop_source stop;
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&](std::stop_token token) {
    while (!token.stop_requested()) {
      if (should_stop && should_stop()) {
        stop.request_stop();
        return;
      }
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) {
        return;
      }
      try {
        fn(i, token);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        stop.request_stop();
        return;
      }
    }
  };

  if (num_threads == 1) {
    // Same path single-threaded, so behavior (including the stop token
    // the task can poll) is identical for any worker count.
    worker(stop.get_token());
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(num_threads);
    for (unsigned w = 0; w < num_threads; ++w) {
      threads.emplace_back([&] { worker(stop.get_token()); });
    }
    threads.clear();  // join
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace antdense::util
