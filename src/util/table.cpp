#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"
#include "util/format.hpp"

namespace antdense::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ANTDENSE_CHECK(!headers_.empty(), "table must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ANTDENSE_CHECK(cells.size() == headers_.size(),
                 "row cell count must match column count");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& text) {
  cells_.push_back(text);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const char* text) {
  cells_.emplace_back(text);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value) {
  cells_.push_back(format_auto(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint32_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void Table::RowBuilder::commit() { table_.add_row(std::move(cells_)); }

namespace {

std::size_t display_width(const std::string& s) { return s.size(); }

std::string pad_to(const std::string& s, std::size_t width) {
  std::string out = s;
  while (display_width(out) < width) {
    out.push_back(' ');
  }
  return out;
}

std::string csv_escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void Table::print_markdown(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = display_width(headers_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad_to(headers_[c], widths[c]) << " |";
  }
  os << '\n' << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << std::string(widths[c], '-') << " |";
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << pad_to(row[c], widths[c]) << " |";
    }
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n## " << title << "\n\n";
}

void print_note(std::ostream& os, const std::string& key,
                const std::string& value) {
  os << "- " << key << ": " << value << '\n';
}

}  // namespace antdense::util
