#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace antdense::util {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::invalid_argument("json: " + what + " at offset " +
                              std::to_string(pos));
}

/// Containers may nest at most this deep.  The parser recurses once per
/// level, so a pathological document like ten thousand '[' would
/// otherwise turn into a stack overflow instead of an exception; no
/// artifact this repo emits comes anywhere near 64 levels.
constexpr int kMaxNestingDepth = 64;

std::string format_number(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("json: cannot serialize non-finite number");
  }
  // Integral values inside the double-exact range print as integers so
  // counts stay counts; everything else gets enough digits to round-trip.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) < kExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Recursive-descent parser over the raw text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document", pos_);
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input (truncated document?)", pos_);
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    const NestingGuard guard(this);
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    const NestingGuard guard(this);
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string", pos_);
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape", pos_);
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          out += parse_unicode_escape();
          break;
        default:
          fail("unknown escape", pos_ - 1);
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape", pos_);
    }
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape", pos_ - 1);
      }
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      fail("surrogate-pair escapes are not supported", pos_ - 6);
    }
    // Encode the BMP code point as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!matches_number_grammar(token)) {
      fail("malformed number '" + token + "'", start);
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + token + "'", start);
    }
    return JsonValue(v);
  }

  /// RFC 8259 number grammar: -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)?
  /// — strtod alone would also accept "01", "-.5", or "1.".
  static bool matches_number_grammar(const std::string& token) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t j) {
      return j < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[j])) != 0;
    };
    if (i < token.size() && token[i] == '-') {
      ++i;
    }
    if (!digit(i)) {
      return false;
    }
    if (token[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else {
      while (digit(i)) {
        ++i;
      }
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!digit(i)) {
        return false;
      }
      while (digit(i)) {
        ++i;
      }
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
        ++i;
      }
      if (!digit(i)) {
        return false;
      }
      while (digit(i)) {
        ++i;
      }
    }
    return i == token.size();
  }

  /// Counts open containers; parse_object/parse_array hold one for
  /// their whole body so the limit bounds the recursion depth itself.
  struct NestingGuard {
    explicit NestingGuard(Parser* parser) : parser(parser) {
      if (++parser->depth_ > kMaxNestingDepth) {
        fail("nesting depth exceeds the limit of " +
                 std::to_string(kMaxNestingDepth),
             parser->pos_ - 1);
      }
    }
    ~NestingGuard() { --parser->depth_; }
    Parser* parser;
  };

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) {
    throw std::invalid_argument("json: value is not a bool");
  }
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("json: value is not a number");
  }
  return num_;
}

std::uint64_t JsonValue::as_uint() const {
  const double v = as_double();
  // Doubles represent integers exactly only below 2^53; anything larger
  // (or non-finite) would silently round or invoke UB in the cast.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (!std::isfinite(v) || v < 0.0 || v != std::floor(v) || v >= kExact) {
    throw std::invalid_argument(
        "json: value is not an exactly-representable non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::invalid_argument("json: value is not a string");
  }
  return str_;
}

const JsonValue::Array& JsonValue::items() const {
  if (kind_ != Kind::kArray) {
    throw std::invalid_argument("json: value is not an array");
  }
  return array_;
}

const JsonValue::Object& JsonValue::entries() const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("json: value is not an object");
  }
  return object_;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kArray;
  }
  if (kind_ != Kind::kArray) {
    throw std::invalid_argument("json: push_back on a non-array");
  }
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kObject;
  }
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("json: set on a non-object");
  }
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

bool JsonValue::erase(const std::string& key) {
  if (kind_ != Kind::kObject) {
    return false;
  }
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) *
                                         (static_cast<std::size_t>(depth) + 1)
                                   : 0,
                        ' ');
  const std::string close_pad(
      indent > 0 ? static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth)
                 : 0,
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += format_number(num_);
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) {
          out += ',';
        }
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(object_[i].first);
        out += '"';
        out += kv_sep;
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) {
          out += ',';
        }
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace antdense::util
