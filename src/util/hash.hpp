// Content hashing for experiment identity.
//
// FNV-1a (64-bit) over canonical serialized bytes: tiny, dependency-free,
// and stable across platforms and runs — exactly what a result cache
// keyed on "which experiment is this" needs.  Not cryptographic; the
// campaign journal uses it to detect "already ran this spec", where an
// adversarial collision is not part of the threat model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace antdense::util {

/// 64-bit FNV-1a over the bytes of `data`.
constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

/// Fixed-width lowercase hex spelling (16 chars), the journal's id format.
inline std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace antdense::util
