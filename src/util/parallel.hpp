// Deterministic parallel trial runner.
//
// Benches run many independent Monte Carlo trials.  Each trial derives its
// randomness from its trial *index*, never from the executing thread, so
// results are bit-identical for any thread count (including 1).  Work is
// handed out via an atomic counter — trials have uneven cost, so static
// partitioning would waste a core.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace antdense::util {

/// Returns a sensible default worker count for this machine (>= 1).
unsigned default_thread_count();

/// Invokes fn(i) for every i in [0, num_tasks), distributing indices over
/// `num_threads` workers.  fn must be safe to call concurrently for
/// distinct indices.  The first exception thrown by any task is rethrown
/// on the calling thread after all workers join.
void parallel_for(std::size_t num_tasks,
                  const std::function<void(std::size_t)>& fn,
                  unsigned num_threads = 0);

/// Cancellable work queue over a std::jthread pool — the campaign
/// scheduler's substrate.  Same index hand-out as parallel_for, but fn
/// also receives the pool's stop_token: after the first exception (or an
/// external stop request) no further indices are handed out and
/// long-running tasks can poll the token to bail early.  Tasks that
/// already started still finish (a campaign journals each completed
/// experiment, so a partial pass must leave only whole records behind).
/// The first exception is rethrown after all workers join.
///
/// `should_stop`, when set, is polled by each worker before it claims
/// another index; the first true return trips the pool's stop flag —
/// the hook that lets a signal handler's flag (util/signal.hpp) or a
/// server shutdown cancel a queue without aborting in-flight tasks.
/// Workers may call the predicate concurrently, so keep it a flag read.
void parallel_for_stoppable(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::stop_token)>& fn,
    unsigned num_threads = 0,
    const std::function<bool()>& should_stop = {});

}  // namespace antdense::util
