// Deterministic parallel trial runner.
//
// Benches run many independent Monte Carlo trials.  Each trial derives its
// randomness from its trial *index*, never from the executing thread, so
// results are bit-identical for any thread count (including 1).  Work is
// handed out via an atomic counter — trials have uneven cost, so static
// partitioning would waste a core.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace antdense::util {

/// Returns a sensible default worker count for this machine (>= 1).
unsigned default_thread_count();

/// Invokes fn(i) for every i in [0, num_tasks), distributing indices over
/// `num_threads` workers.  fn must be safe to call concurrently for
/// distinct indices.  The first exception thrown by any task is rethrown
/// on the calling thread after all workers join.
void parallel_for(std::size_t num_tasks,
                  const std::function<void(std::size_t)>& fn,
                  unsigned num_threads = 0);

}  // namespace antdense::util
