#include "util/signal.hpp"

#include <csignal>
#include <poll.h>
#include <unistd.h>

#include <atomic>

namespace antdense::util {

namespace {

// The pipe fds live in plain ints (not a WakePipe) because the handler
// must touch nothing that could allocate or lock; they are created once
// and never closed (they die with the process).
std::atomic<int> g_signal{0};
int g_pipe_read = -1;
int g_pipe_write = -1;
volatile std::sig_atomic_t g_flag = 0;

extern "C" void termination_handler(int signum) {
  if (g_flag != 0) {
    // Second Ctrl-C: the user means it.  Restore default and re-raise.
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_flag = 1;
  g_signal.store(signum, std::memory_order_relaxed);
  if (g_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_pipe_write, &byte, 1);
  }
}

}  // namespace

void install_termination_handlers() {
  if (g_pipe_read < 0) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      g_pipe_read = fds[0];
      g_pipe_write = fds[1];
    }
  }
  struct sigaction action {};
  action.sa_handler = termination_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps unrelated blocking syscalls (file reads, accept on
  // other threads) from failing with EINTR; poll() is exempt from
  // restarting by POSIX, so wait_for_termination still wakes.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool termination_requested() { return g_flag != 0; }

int termination_signal() {
  return g_signal.load(std::memory_order_relaxed);
}

int termination_wake_fd() { return g_pipe_read; }

void wait_for_termination() {
  while (!termination_requested()) {
    if (g_pipe_read < 0) {
      // No pipe (install failed?): degrade to a coarse sleep-poll.
      ::usleep(50 * 1000);
      continue;
    }
    pollfd fd;
    fd.fd = g_pipe_read;
    fd.events = POLLIN;
    ::poll(&fd, 1, 500);  // finite timeout guards a missed wakeup race
  }
}

void reset_termination_flag_for_testing() {
  g_flag = 0;
  g_signal.store(0, std::memory_order_relaxed);
  if (g_pipe_read >= 0) {
    char buf[64];
    pollfd fd;
    fd.fd = g_pipe_read;
    fd.events = POLLIN;
    while (::poll(&fd, 1, 0) > 0 && (fd.revents & POLLIN) != 0 &&
           ::read(g_pipe_read, buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace antdense::util
