// Markdown table emitter used by every bench binary so that experiment
// output is uniform and diffable against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace antdense::util {

/// A simple column-oriented table.  Cells are stored as strings; numeric
/// convenience overloads format through format_auto.  Rows must have
/// exactly as many cells as there are columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Starts a new row.  Must be followed by exactly num_columns() cell()
  /// calls (or use add_row with a full vector).
  void add_row(std::vector<std::string> cells);

  /// Row builder: accumulates heterogeneous cells and validates length.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& text);
    RowBuilder& cell(const char* text);
    RowBuilder& cell(double value);
    RowBuilder& cell(std::uint64_t value);
    RowBuilder& cell(std::uint32_t value);
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(int value);
    /// Commits the row to the table.  Throws if cell count mismatches.
    void commit();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  /// Renders as a GitHub-flavored Markdown table.
  void print_markdown(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a bench section header ("## title") followed by a blank line.
void print_section(std::ostream& os, const std::string& title);

/// Prints a one-line "key: value" note used for experiment parameters.
void print_note(std::ostream& os, const std::string& key,
                const std::string& value);

}  // namespace antdense::util
