#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace antdense::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  // Frames are written whole and latency-sensitive; never wait for more.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

bool Socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return false;  // peer hung up: normal for a server, not an error
      }
      throw_errno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::recv_all(void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd_, p, size, 0);
    if (n == 0) {
      return false;  // EOF mid-read: a truncated frame or clean hangup
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        return false;
      }
      throw_errno("recv");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

ListenSocket::~ListenSocket() { close(); }

Socket ListenSocket::accept_interruptible(int wake_fd) {
  while (fd_ >= 0) {
    pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fd;
    fds[1].events = POLLIN;
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("poll");
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP)) != 0) {
      return Socket();  // woken for shutdown
    }
    if ((fds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return Socket();  // listener closed under us
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          continue;  // the connection died in the backlog; keep serving
        }
        return Socket();
      }
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(conn);
    }
  }
  return Socket();
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) {
    throw_errno("pipe");
  }
  // Non-blocking read end so drain() can empty the pipe without hanging;
  // the write end stays blocking-but-best-effort (see poke()).
  const int flags = ::fcntl(fds_[0], F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fds_[0], F_SETFL, flags | O_NONBLOCK);
  }
}

WakePipe::~WakePipe() {
  if (fds_[0] >= 0) {
    ::close(fds_[0]);
  }
  if (fds_[1] >= 0) {
    ::close(fds_[1]);
  }
}

void WakePipe::poke() {
  const char byte = 1;
  // Best effort by design: if the pipe is full, the poller is already
  // guaranteed to wake.  write(2) is async-signal-safe, so poke() may be
  // called from a signal handler.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &byte, 1);
}

void WakePipe::drain() {
  char buf[256];
  while (::read(fds_[0], buf, sizeof buf) > 0) {
  }
}

}  // namespace antdense::util
