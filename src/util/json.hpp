// Minimal JSON value tree — writer and strict parser — shared by the
// bench artifact writer (bench/bench_json) and the scenario layer's
// ScenarioResult serialization / --spec file loading.  No external
// dependency: the repo bakes its own tiny implementation so CI artifacts
// and spec files round-trip through one code path.
//
// Scope (deliberate): UTF-8 text, doubles for all numbers (integral
// values in |v| < 2^53 print without a fractional part, which covers
// every agent/round/node count the repo emits), ordered objects so
// emitted documents are stable and diffable.  parse() accepts strict
// JSON (RFC 8259) minus surrogate-pair escapes and throws
// std::invalid_argument with position info on malformed input;
// containers may nest at most 64 deep (pathological nesting raises the
// same exception instead of overflowing the parser's recursion) and a
// truncated document says so rather than failing cryptically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace antdense::util {

/// Escapes a string for embedding in a JSON document (quotes excluded).
std::string json_escape(const std::string& s);

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(std::int64_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::uint32_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::int32_t v)
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  /// Requires a non-negative integral number below 2^53 (the
  /// double-exact range); throws otherwise.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& items() const;      // array elements
  const Object& entries() const;   // object key/value pairs, in order

  /// Appends to an array (converts a null to an empty array first).
  JsonValue& push_back(JsonValue v);
  /// Sets a key on an object (converts a null to an empty object first);
  /// an existing key is overwritten in place.
  JsonValue& set(const std::string& key, JsonValue v);
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Removes a key from an object (order of the others is preserved);
  /// returns whether it was present.  No-op false on non-objects — the
  /// serve layer strips optional keys (timings) without caring whether a
  /// given document carried them.
  bool erase(const std::string& key);

  /// Serializes the value.  indent > 0 pretty-prints with that many
  /// spaces per level; indent == 0 emits compact single-line JSON.
  /// Throws std::invalid_argument on non-finite numbers (never emits
  /// NaN/Inf).
  std::string dump(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error).  Throws std::invalid_argument with a byte offset.
  static JsonValue parse(const std::string& text);

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace antdense::util
