#include "stats/concentration.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace antdense::stats {

double empirical_tail(const std::vector<double>& samples, double center,
                      double eps) {
  ANTDENSE_CHECK(!samples.empty(), "empirical_tail requires samples");
  const double threshold = eps * std::fabs(center);
  std::size_t outside = 0;
  for (double x : samples) {
    if (std::fabs(x - center) >= threshold) {
      ++outside;
    }
  }
  return static_cast<double>(outside) / static_cast<double>(samples.size());
}

double epsilon_at_confidence(const std::vector<double>& samples,
                             double center, double confidence) {
  ANTDENSE_CHECK(!samples.empty(), "epsilon_at_confidence requires samples");
  ANTDENSE_CHECK(confidence > 0.0 && confidence <= 1.0,
                 "confidence must be in (0,1]");
  ANTDENSE_CHECK(center != 0.0, "center must be nonzero");
  std::vector<double> rel;
  rel.reserve(samples.size());
  for (double x : samples) {
    rel.push_back(std::fabs(x - center) / std::fabs(center));
  }
  std::sort(rel.begin(), rel.end());
  // The smallest eps covering ceil(confidence * n) samples.
  const auto n = rel.size();
  auto need = static_cast<std::size_t>(
      std::ceil(confidence * static_cast<double>(n)));
  need = std::min(std::max<std::size_t>(need, 1), n);
  return rel[need - 1];
}

double chernoff_tail(double mu, double eps) {
  ANTDENSE_CHECK(mu >= 0.0, "mean must be non-negative");
  ANTDENSE_CHECK(eps > 0.0, "eps must be positive");
  return std::min(1.0, 2.0 * std::exp(-eps * eps * mu / 3.0));
}

double chebyshev_tail(double mean, double variance, double eps) {
  ANTDENSE_CHECK(eps > 0.0, "eps must be positive");
  ANTDENSE_CHECK(variance >= 0.0, "variance must be non-negative");
  const double threshold = eps * std::fabs(mean);
  if (threshold == 0.0) {
    return 1.0;
  }
  return std::min(1.0, variance / (threshold * threshold));
}

double sub_exponential_tail(double sigma_sq, double b, double delta) {
  ANTDENSE_CHECK(sigma_sq >= 0.0, "sigma^2 must be non-negative");
  ANTDENSE_CHECK(b >= 0.0, "b must be non-negative");
  ANTDENSE_CHECK(delta >= 0.0, "delta must be non-negative");
  const double denom = 2.0 * (sigma_sq + b * delta);
  if (denom == 0.0) {
    return delta == 0.0 ? 1.0 : 0.0;
  }
  return std::min(1.0, 2.0 * std::exp(-delta * delta / denom));
}

}  // namespace antdense::stats
