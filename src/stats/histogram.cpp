#include "stats/histogram.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace antdense::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  ANTDENSE_CHECK(hi > lo, "histogram range must be non-empty");
  ANTDENSE_CHECK(num_bins >= 1, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::add(double x) { add_count(x, 1); }

void Histogram::add_count(double x, std::uint64_t count) {
  total_ += count;
  if (x < lo_) {
    underflow_ += count;
    return;
  }
  if (x >= hi_) {
    overflow_ += count;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {  // guard against FP edge at x == hi_-eps
    bin = counts_.size() - 1;
  }
  counts_[bin] += count;
}

double Histogram::bin_lower(std::size_t bin) const {
  ANTDENSE_CHECK(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin) + width_;
}

double Histogram::bin_fraction(std::size_t bin) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(bin_count(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") ";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (b > 0) os << ' ';
    os << counts_[b];
  }
  os << " (under=" << underflow_ << " over=" << overflow_ << ")";
  return os.str();
}

LogHistogram::LogHistogram(std::size_t max_buckets)
    : counts_(max_buckets, 0) {
  ANTDENSE_CHECK(max_buckets >= 2, "log histogram needs >= 2 buckets");
}

namespace {

// Bucket 0 holds value 0; bucket b>=1 holds [2^(b-1), 2^b - 1].
std::size_t bucket_of(std::uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return static_cast<std::size_t>(std::bit_width(value));
}

}  // namespace

void LogHistogram::add(std::uint64_t value) {
  std::size_t b = bucket_of(value);
  if (b >= counts_.size()) {
    b = counts_.size() - 1;
  }
  ++counts_[b];
  ++total_;
}

std::uint64_t LogHistogram::bucket_lower(std::size_t b) const {
  ANTDENSE_CHECK(b < counts_.size(), "bucket out of range");
  if (b == 0) {
    return 0;
  }
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t LogHistogram::bucket_upper(std::size_t b) const {
  ANTDENSE_CHECK(b < counts_.size(), "bucket out of range");
  if (b == 0) {
    return 0;
  }
  return (std::uint64_t{1} << b) - 1;
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  os << "loghist ";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    os << '[' << bucket_lower(b) << '-' << bucket_upper(b) << "]:"
       << counts_[b] << ' ';
  }
  return os.str();
}

}  // namespace antdense::stats
