// Fixed-bin and logarithmic histograms for distribution inspection
// (collision count distributions, visit counts, displacement spread).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace antdense::stats {

/// Linear histogram over [lo, hi) with uniform bin width.  Values outside
/// the range are counted in underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x);
  void add_count(double x, std::uint64_t count);

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Fraction of all observations landing in `bin` (0 when empty).
  double bin_fraction(std::size_t bin) const;

  /// Compact single-line rendering, e.g. for test diagnostics.
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram of non-negative integers with power-of-two bin edges:
/// {0}, {1}, [2,3], [4,7], [8,15], ...  Used for heavy-tailed counts
/// (per-partner collision counts are log-series-like on the torus).
class LogHistogram {
 public:
  explicit LogHistogram(std::size_t max_buckets = 40);

  void add(std::uint64_t value);

  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t b) const { return counts_.at(b); }
  /// Inclusive value range [lower, upper] covered by bucket b.
  std::uint64_t bucket_lower(std::size_t b) const;
  std::uint64_t bucket_upper(std::size_t b) const;
  std::uint64_t total() const { return total_; }

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace antdense::stats
