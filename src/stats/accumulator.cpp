#include "stats/accumulator.hpp"

#include <cmath>

namespace antdense::stats {

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double Accumulator::standard_error() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sample_stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace antdense::stats
