#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"
#include "stats/quantile.hpp"
#include "util/check.hpp"

namespace antdense::stats {

Interval bootstrap_ci(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level, std::uint32_t resamples, std::uint64_t seed) {
  ANTDENSE_CHECK(!samples.empty(), "bootstrap requires samples");
  ANTDENSE_CHECK(level > 0.0 && level < 1.0, "level must be in (0,1)");
  ANTDENSE_CHECK(resamples >= 10, "too few bootstrap resamples");

  rng::Xoshiro256pp gen(seed);
  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(samples.size());
  for (std::uint32_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = samples[rng::uniform_below(gen, samples.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - level) / 2.0;
  Interval out;
  out.lower = quantile_sorted(stats, alpha);
  out.upper = quantile_sorted(stats, 1.0 - alpha);
  out.point = statistic(samples);
  return out;
}

Interval bootstrap_mean_ci(const std::vector<double>& samples, double level,
                           std::uint32_t resamples, std::uint64_t seed) {
  return bootstrap_ci(
      samples,
      [](const std::vector<double>& xs) {
        double s = 0.0;
        for (double x : xs) s += x;
        return s / static_cast<double>(xs.size());
      },
      level, resamples, seed);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double level) {
  ANTDENSE_CHECK(trials > 0, "wilson interval requires trials > 0");
  ANTDENSE_CHECK(successes <= trials, "successes cannot exceed trials");
  ANTDENSE_CHECK(level > 0.0 && level < 1.0, "level must be in (0,1)");
  // z for the two-sided level via inverse-normal approximation
  // (Acklam-style rational approximation is overkill; the benches only
  // use conventional levels, so interpolate from the standard table).
  double z = 1.959964;  // default 95%
  if (level >= 0.995) {
    z = 2.807034;
  } else if (level >= 0.99) {
    z = 2.575829;
  } else if (level >= 0.98) {
    z = 2.326348;
  } else if (level >= 0.95) {
    z = 1.959964;
  } else if (level >= 0.90) {
    z = 1.644854;
  } else {
    z = 1.281552;  // 80%
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval out;
  out.lower = std::max(0.0, center - half);
  out.upper = std::min(1.0, center + half);
  out.point = p;
  return out;
}

}  // namespace antdense::stats
