#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace antdense::stats {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  ANTDENSE_CHECK(!sorted.empty(), "quantile requires samples");
  ANTDENSE_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double>& qs) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    out.push_back(quantile_sorted(samples, q));
  }
  return out;
}

double median(std::vector<double> samples) {
  return quantile(std::move(samples), 0.5);
}

}  // namespace antdense::stats
