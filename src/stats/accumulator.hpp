// Streaming mean/variance accumulator (Welford's algorithm) plus min/max.
// Numerically stable for the large trial counts the benches use.
#pragma once

#include <cstdint>
#include <limits>

namespace antdense::stats {

class Accumulator {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }

  /// Population variance (divides by n).
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Sample variance (divides by n-1); 0 when fewer than two samples.
  double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const;
  double sample_stddev() const;

  /// Standard error of the mean: sample_stddev / sqrt(n).
  double standard_error() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace antdense::stats
