// Percentile bootstrap confidence intervals.  Used by benches to attach
// uncertainty to measured quantities (re-collision probabilities, error
// quantiles) so paper-vs-measured comparisons in EXPERIMENTS.md are
// honest about Monte Carlo noise.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace antdense::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;

  bool contains(double v) const { return v >= lower && v <= upper; }
  double width() const { return upper - lower; }
};

/// Percentile bootstrap CI for an arbitrary statistic of the sample.
/// `statistic` maps a resampled vector to a scalar.  `level` is the
/// two-sided confidence level (e.g. 0.95).
Interval bootstrap_ci(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level = 0.95, std::uint32_t resamples = 1000,
    std::uint64_t seed = 0xB007);

/// Bootstrap CI specialized for the mean.
Interval bootstrap_mean_ci(const std::vector<double>& samples,
                           double level = 0.95,
                           std::uint32_t resamples = 1000,
                           std::uint64_t seed = 0xB007);

/// Wilson score interval for a binomial proportion (successes/trials);
/// preferred over the normal approximation for small probabilities, which
/// is exactly the regime of re-collision tails.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double level = 0.95);

}  // namespace antdense::stats
