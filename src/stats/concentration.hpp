// Empirical concentration measurement plus the closed-form reference
// tails the paper compares against (Chernoff for independent sampling,
// Chebyshev for the variance-only ring analysis, and the sub-exponential
// Bernstein-style tail of Lemma 18).
#pragma once

#include <vector>

namespace antdense::stats {

/// Fraction of samples with |x - center| >= eps * |center|
/// (empirical two-sided relative-deviation tail).
double empirical_tail(const std::vector<double>& samples, double center,
                      double eps);

/// Smallest eps such that at least `confidence` fraction of samples lie in
/// [(1-eps)*center, (1+eps)*center].  This is the measured "ε at δ"
/// reported by the Theorem-1 benches.
double epsilon_at_confidence(const std::vector<double>& samples,
                             double center, double confidence);

/// Multiplicative Chernoff upper tail bound for a sum of independent
/// Bernoulli variables with mean mu: P[|X - mu| >= eps*mu] <=
/// 2 exp(-eps^2 mu / 3), valid for eps in (0,1).
double chernoff_tail(double mu, double eps);

/// Chebyshev bound: P[|X - mean| >= eps*mean] <= var / (eps*mean)^2.
double chebyshev_tail(double mean, double variance, double eps);

/// Sub-exponential (Bernstein) tail from Lemma 18:
/// P[|X - E X| >= delta] <= 2 exp(-delta^2 / (2(sigma^2 + b*delta))).
double sub_exponential_tail(double sigma_sq, double b, double delta);

}  // namespace antdense::stats
