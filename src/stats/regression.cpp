#include "stats/regression.hpp"

#include <cmath>

#include "util/check.hpp"

namespace antdense::stats {

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  ANTDENSE_CHECK(x.size() == y.size(), "x and y must have equal length");
  ANTDENSE_CHECK(x.size() >= 2, "fit requires at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  ANTDENSE_CHECK(denom != 0.0, "degenerate x values in linear fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

namespace {

LinearFit transformed_fit(const std::vector<double>& x,
                          const std::vector<double>& y, bool log_x) {
  std::vector<double> tx, ty;
  tx.reserve(x.size());
  ty.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0.0) continue;
    if (log_x && x[i] <= 0.0) continue;
    tx.push_back(log_x ? std::log(x[i]) : x[i]);
    ty.push_back(std::log(y[i]));
  }
  return linear_fit(tx, ty);
}

}  // namespace

LinearFit log_log_fit(const std::vector<double>& x,
                      const std::vector<double>& y) {
  ANTDENSE_CHECK(x.size() == y.size(), "x and y must have equal length");
  return transformed_fit(x, y, /*log_x=*/true);
}

LinearFit semilog_fit(const std::vector<double>& x,
                      const std::vector<double>& y) {
  ANTDENSE_CHECK(x.size() == y.size(), "x and y must have equal length");
  return transformed_fit(x, y, /*log_x=*/false);
}

}  // namespace antdense::stats
