// Exact sample quantiles.  Theorem-1-style benches report the empirical
// (1-δ)-quantile of the relative estimation error, so quantiles are a
// first-class primitive here.
#pragma once

#include <vector>

namespace antdense::stats {

/// Returns the q-quantile (q in [0,1]) of the samples using linear
/// interpolation between order statistics (type-7 estimator, the
/// R/NumPy default).  Copies and partially sorts the input.
double quantile(std::vector<double> samples, double q);

/// Quantile of already-sorted data (no copy).
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Several quantiles in one sort of the data.
std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double>& qs);

/// Median convenience wrapper.
double median(std::vector<double> samples);

}  // namespace antdense::stats
