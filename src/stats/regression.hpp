// Least-squares fitting.  The benches verify decay *exponents* (slope of
// log P vs log m should be about -1 on the 2-D torus, -1/2 on the ring,
// -k/2 on the k-dimensional torus), so log-log regression is the core
// acceptance tool for the re-collision experiments.
#pragma once

#include <vector>

namespace antdense::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fits log(y) = slope*log(x) + intercept, i.e. a power law y = C * x^slope.
/// Points with x <= 0 or y <= 0 are skipped (e.g. zero-probability bins).
LinearFit log_log_fit(const std::vector<double>& x,
                      const std::vector<double>& y);

/// Fits log(y) = slope*x + intercept, i.e. exponential decay y = C*e^(slope x).
/// Used for expander/hypercube re-collision curves (geometric decay).
LinearFit semilog_fit(const std::vector<double>& x,
                      const std::vector<double>& y);

}  // namespace antdense::stats
