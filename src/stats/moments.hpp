// Central and raw moment estimation for sample vectors.
//
// The paper's concentration analysis (Lemma 11, Corollaries 15/16) is
// driven by bounds on k-th central moments E[(X - E X)^k]; the moment
// benches estimate these empirically and compare against k! w^k log^k(2t).
#pragma once

#include <cstddef>
#include <vector>

namespace antdense::stats {

/// Two-pass estimate of the k-th central moment E[(X - mean)^k].
double central_moment(const std::vector<double>& samples, int k);

/// Raw moment E[X^k].
double raw_moment(const std::vector<double>& samples, int k);

/// All central moments from order 1 to max_k (index 0 unused, index 1 is
/// ~0 by construction).  One pass over the data per call.
std::vector<double> central_moments_up_to(const std::vector<double>& samples,
                                          int max_k);

/// Skewness (standardized third central moment); 0 for degenerate input.
double skewness(const std::vector<double>& samples);

/// Excess kurtosis (standardized fourth central moment minus 3).
double excess_kurtosis(const std::vector<double>& samples);

}  // namespace antdense::stats
