#include "stats/moments.hpp"

#include <cmath>

#include "util/check.hpp"

namespace antdense::stats {

namespace {

double mean_of(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double x : samples) {
    sum += x;
  }
  return sum / static_cast<double>(samples.size());
}

}  // namespace

double central_moment(const std::vector<double>& samples, int k) {
  ANTDENSE_CHECK(!samples.empty(), "central_moment requires samples");
  ANTDENSE_CHECK(k >= 1, "moment order must be >= 1");
  const double mu = mean_of(samples);
  double acc = 0.0;
  for (double x : samples) {
    acc += std::pow(x - mu, k);
  }
  return acc / static_cast<double>(samples.size());
}

double raw_moment(const std::vector<double>& samples, int k) {
  ANTDENSE_CHECK(!samples.empty(), "raw_moment requires samples");
  ANTDENSE_CHECK(k >= 1, "moment order must be >= 1");
  double acc = 0.0;
  for (double x : samples) {
    acc += std::pow(x, k);
  }
  return acc / static_cast<double>(samples.size());
}

std::vector<double> central_moments_up_to(const std::vector<double>& samples,
                                          int max_k) {
  ANTDENSE_CHECK(!samples.empty(), "central_moments_up_to requires samples");
  ANTDENSE_CHECK(max_k >= 1, "moment order must be >= 1");
  const double mu = mean_of(samples);
  std::vector<double> acc(static_cast<std::size_t>(max_k) + 1, 0.0);
  for (double x : samples) {
    const double d = x - mu;
    double p = 1.0;
    for (int k = 1; k <= max_k; ++k) {
      p *= d;
      acc[static_cast<std::size_t>(k)] += p;
    }
  }
  for (int k = 1; k <= max_k; ++k) {
    acc[static_cast<std::size_t>(k)] /= static_cast<double>(samples.size());
  }
  return acc;
}

double skewness(const std::vector<double>& samples) {
  const double m2 = central_moment(samples, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  const double m3 = central_moment(samples, 3);
  return m3 / std::pow(m2, 1.5);
}

double excess_kurtosis(const std::vector<double>& samples) {
  const double m2 = central_moment(samples, 2);
  if (m2 <= 0.0) {
    return 0.0;
  }
  const double m4 = central_moment(samples, 4);
  return m4 / (m2 * m2) - 3.0;
}

}  // namespace antdense::stats
