// antdense_run — the unified scenario driver: every workload on every
// topology family from one executable, no recompilation.
//
//   $ antdense_run --topology=torus2d:64x64 --workload=density
//       --agents=410 --eps=0.2 --delta=0.1 --trials=4 --out=result.json
//   $ antdense_run --spec=scenario.json --seed=7
//
// Flags are the ScenarioSpec vocabulary (see src/scenario/spec.hpp) plus:
//   --spec=FILE   load a JSON ScenarioSpec first; flags overlay it
//   --out=PATH    write the ScenarioResult JSON artifact
//   --quiet       suppress the human-readable report
//   --list-topologies   registered families + canonical spec grammar
//   --list-workloads    workload names + what each measures
//   --list-dynamics     dynamics models + canonical spec grammar
//   --help
// The list flags exist for sweep authors: campaign axes (antdense_sweep)
// take exactly these topology spec strings, workload names, and
// dynamics spec strings.
// Unknown flags are an error (util::Args strict mode), so typos fail
// loudly instead of silently running the default scenario.
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "scenario/dynamics_registry.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace antdense;

void print_usage(std::ostream& os) {
  os << "usage: antdense_run --topology=FAMILY:PARAMS --workload=WORKLOAD "
        "[flags]\n\n"
     << "workloads: density | property | trajectory | local-density\n"
     << "topology families:";
  for (const std::string& name :
       scenario::Registry::built_in().family_names()) {
    os << " " << name;
  }
  os << "\n\nscenario flags:\n"
     << "  --agents=N --rounds=T (0 plans via Theorem 1) --eps=E --delta=D\n"
     << "  --lazy=P --miss=P --spurious=P --dropout=P\n"
     << "                    (Section 6.1 sensing perturbations)\n"
     << "  --dynamics=MODEL:PARAMS  time-varying world (--list-dynamics;\n"
     << "                    density workload, engine single/sharded)\n"
     << "  --trials=K --threads=N --seed=S\n"
     << "  --engine=single|sharded|vector\n"
     << "                    (sharded: threads parallelize within one walk;\n"
     << "                     vector: wide-lane batched stepping; results\n"
     << "                     are identical for any --threads in any mode)\n"
     << "  --property-fraction=F --tracked=N --checkpoints=N --radius=R\n\n"
     << "driver flags:\n"
     << "  --spec=FILE.json  load a spec file (flags overlay it)\n"
     << "  --out=PATH.json   write the result artifact\n"
     << "  --metrics-out=F   write a telemetry snapshot after the run\n"
     << "                    (.json -> ordered JSON, else Prometheus text)\n"
     << "  --trace-out=F     write Chrome trace-event JSON phase spans\n"
     << "                    (open in chrome://tracing or Perfetto)\n"
     << "  --quiet           suppress the human-readable report\n"
     << "  --list-topologies (families + spec grammar)\n"
     << "  --list-dynamics   (models + spec grammar)\n"
     << "  --list-workloads / --help\n";
}

void print_report(const scenario::ScenarioResult& result) {
  std::cout << "scenario: " << result.spec.topology << " / "
            << scenario::workload_name(result.spec.workload) << "\n";
  std::cout << "substrate " << result.topology_name << " with "
            << result.spec.agents << " agents, " << result.spec.rounds
            << " rounds, " << result.spec.trials << " trial(s)\n";
  std::cout << "true value " << util::format_fixed(result.true_value, 6)
            << "\n\n";

  util::Table table({"metric", "value"});
  table.add_row({"estimates pooled", util::format_count(result.summary.count)});
  table.add_row({"mean", util::format_fixed(result.summary.mean, 6)});
  table.add_row({"stddev", util::format_fixed(result.summary.stddev, 6)});
  table.add_row(
      {"standard error", util::format_fixed(result.summary.standard_error, 6)});
  table.add_row({"min", util::format_fixed(result.summary.min, 6)});
  table.add_row({"max", util::format_fixed(result.summary.max, 6)});
  table.add_row({"within (1+-eps)",
                 util::format_percent(result.summary.within_eps, 1)});
  table.add_row(
      {"elapsed", util::format_fixed(result.elapsed_seconds, 3) + " s"});
  table.print_markdown(std::cout);

  if (!result.checkpoints.empty()) {
    std::cout << "\ncheckpoints at rounds:";
    for (std::uint32_t c : result.checkpoints) {
      std::cout << " " << c;
    }
    std::cout << " (" << result.series.size() << " traces recorded)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  try {
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (args.get_bool("list-topologies", false)) {
      const scenario::Registry& reg = scenario::Registry::built_in();
      for (const std::string& name : reg.family_names()) {
        const std::string& grammar = reg.grammar(name);
        std::cout << name;
        if (!grammar.empty()) {
          std::cout << "\t" << grammar;
        }
        std::cout << "\n";
      }
      return 0;
    }
    if (args.get_bool("list-dynamics", false)) {
      const scenario::DynamicsRegistry& reg =
          scenario::DynamicsRegistry::built_in();
      for (const std::string& name : reg.family_names()) {
        const std::string& grammar = reg.grammar(name);
        std::cout << name;
        if (!grammar.empty()) {
          std::cout << "\t" << grammar;
        }
        std::cout << "\n";
      }
      return 0;
    }
    if (args.get_bool("list-workloads", false)) {
      const std::vector<std::string>& names = scenario::workload_names();
      const std::vector<std::string>& what =
          scenario::workload_descriptions();
      for (std::size_t i = 0; i < names.size(); ++i) {
        std::cout << names[i] << "\t" << what[i] << "\n";
      }
      return 0;
    }

    std::vector<std::string> known = scenario::ScenarioSpec::key_names();
    known.insert(known.end(), {"spec", "out", "metrics-out", "trace-out",
                               "quiet", "help", "list-topologies",
                               "list-workloads", "list-dynamics"});
    args.require_known(known);

    scenario::ScenarioSpec spec;
    if (args.has("spec")) {
      spec = scenario::ScenarioSpec::from_json_file(
          args.get_string("spec", ""));
    }
    spec = scenario::ScenarioSpec::from_args(args, std::move(spec));

    // Telemetry sinks exist only when asked for; the ambient install is
    // a no-op otherwise and the run stays on the uninstrumented path.
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    obs::Telemetry telemetry{args.has("metrics-out") ? &metrics : nullptr,
                             args.has("trace-out") ? &trace : nullptr};
    obs::ScopedTelemetry ambient(&telemetry);

    const scenario::Experiment experiment(std::move(spec));
    const scenario::ScenarioResult result = experiment.run();

    if (args.has("metrics-out")) {
      obs::write_metrics_file(metrics, args.get_string("metrics-out", ""));
    }
    if (args.has("trace-out")) {
      obs::write_trace_file(trace, args.get_string("trace-out", ""));
    }

    if (!args.get_bool("quiet", false)) {
      print_report(result);
    }
    if (args.has("out")) {
      const std::string path = args.get_string("out", "");
      std::ofstream out_file(path);
      if (!out_file) {
        throw std::runtime_error("cannot open " + path + " for writing");
      }
      out_file << result.to_json().dump() << "\n";
      if (!out_file.good()) {
        throw std::runtime_error("write to " + path + " failed");
      }
      if (!args.get_bool("quiet", false)) {
        std::cout << "\nwrote " << path << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "antdense_run: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 1;
  }
}
