// antdense_sweep — the campaign driver: declarative parameter sweeps
// over the scenario API, run on all cores, journaled, resumable, and
// aggregated.
//
//   $ antdense_sweep expand --campaign=sweep.json --dry-run
//   $ antdense_sweep run --campaign=sweep.json --journal=sweep.jsonl
//   $ antdense_sweep resume --campaign=sweep.json --journal=sweep.jsonl
//   $ antdense_sweep aggregate --journal=sweep.jsonl
//       --group-by=family,rounds --csv=sweep.csv --json=sweep.agg.json
//
// `run` skips experiments whose identity hash is already journaled, so
// re-running after a crash or kill continues where it stopped; `resume`
// is the same operation but refuses to start from scratch (a missing
// journal is an error, catching typo'd paths).  See src/campaign/ for
// the spec format and determinism contract.
#include <chrono>
#include <condition_variable>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/journal.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/signal.hpp"
#include "util/table.hpp"

namespace {

using namespace antdense;

void print_usage(std::ostream& os) {
  os << "usage: antdense_sweep <run|resume|expand|aggregate> [flags]\n\n"
     << "run / resume flags:\n"
     << "  --campaign=FILE.json    the CampaignSpec (required)\n"
     << "  --journal=PATH.jsonl    run journal / result cache (required)\n"
     << "  --threads=N             scheduler workers (default: the\n"
     << "                          campaign's \"threads\"; 0 there = one\n"
     << "                          worker per core)\n"
     << "  --inner-threads=N       threads per experiment (within-\n"
     << "                          experiment parallelism; the scheduler\n"
     << "                          clamps workers x inner to the core\n"
     << "                          count, with a message on stderr)\n"
     << "  --max-experiments=K     stop after K new experiments\n"
     << "  --quiet                 suppress per-experiment progress\n"
     << "  --progress-interval=MS  stderr progress line cadence\n"
     << "                          (completed/total, experiments/sec, ETA;\n"
     << "                          default 1000, 0 disables)\n"
     << "  --metrics-out=F         write a telemetry snapshot after the\n"
     << "                          run (.json -> JSON, else Prometheus)\n"
     << "  --trace-out=F           write Chrome trace-event JSON spans\n"
     << "  (resume additionally requires the journal to exist)\n\n"
     << "expand flags:\n"
     << "  --campaign=FILE.json --dry-run [--limit=N]\n"
     << "  prints the expanded experiment table without running "
        "anything\n\n"
     << "aggregate flags:\n"
     << "  --journal=PATH.jsonl    journal to aggregate (required)\n"
     << "  --group-by=K1,K2,...    group keys (default "
        "family,workload,rounds)\n"
     << "  --csv=PATH --json=PATH  write artifacts (default: CSV to "
        "stdout)\n";
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  out << text;
  if (!out.good()) {
    throw std::runtime_error("write to " + path + " failed");
  }
}

campaign::CampaignSpec load_campaign(const util::Args& args) {
  if (!args.has("campaign")) {
    throw std::invalid_argument("--campaign=FILE.json is required");
  }
  return campaign::CampaignSpec::from_json_file(
      args.get_string("campaign", ""));
}

std::string require_journal(const util::Args& args) {
  if (!args.has("journal")) {
    throw std::invalid_argument("--journal=PATH.jsonl is required");
  }
  return args.get_string("journal", "");
}

/// Periodic stderr progress line driven by the scheduler's metrics
/// gauges: no callback plumbing, no extra synchronization with the
/// worker pool — the reporter just reads the registry like any other
/// metrics consumer would.  RAII so an exception inside run_campaign
/// still joins the thread.
class ProgressReporter {
 public:
  ProgressReporter(obs::MetricsRegistry& metrics, std::uint64_t interval_ms)
      : completed_(metrics.gauge("antdense_campaign_completed", {},
                                 "Experiments completed this invocation")),
        scheduled_(metrics.gauge("antdense_campaign_scheduled", {},
                                 "Experiments scheduled this invocation")) {
    thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
  }

  ~ProgressReporter() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop(std::uint64_t interval_ms) {
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return stop_; })) {
      const std::int64_t done = completed_.value();
      const std::int64_t total = scheduled_.value();
      if (total <= 0) {
        continue;  // scheduler still planning (or nothing to do)
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double rate =
          elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      std::string eta = "?";
      if (rate > 0.0 && done <= total) {
        eta = util::format_fixed(static_cast<double>(total - done) / rate, 0) +
              "s";
      }
      std::cerr << "antdense_sweep: progress " << done << "/" << total << " ("
                << util::format_fixed(rate, 2) << " exp/s, ETA " << eta
                << ")\n";
    }
  }

  obs::Gauge& completed_;
  obs::Gauge& scheduled_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

int cmd_run(const util::Args& args, bool resume) {
  args.require_known({"campaign", "journal", "threads", "inner-threads",
                      "max-experiments", "quiet", "progress-interval",
                      "metrics-out", "trace-out", "help"});
  const campaign::CampaignSpec spec = load_campaign(args);
  const std::string journal_path = require_journal(args);
  if (resume && !std::ifstream(journal_path)) {
    throw std::invalid_argument("resume: journal " + journal_path +
                                " does not exist (use `run` to start a "
                                "campaign)");
  }

  // SIGINT/SIGTERM interrupt cleanly: the flag trips the scheduler's
  // should_stop, in-flight experiments finish and journal, and the run
  // exits 3 with everything else counted as remaining — resumable
  // exactly like a --max-experiments cap.
  util::install_termination_handlers();

  campaign::RunOptions options;
  options.should_stop = [] { return util::termination_requested(); };
  options.threads =
      static_cast<unsigned>(args.get_uint("threads", spec.threads));
  options.inner_threads =
      static_cast<unsigned>(args.get_uint("inner-threads", 1));
  options.max_experiments = args.get_uint("max-experiments", 0);
  options.on_diagnostic = [](const std::string& message) {
    std::cerr << "antdense_sweep: " << message << "\n";
  };
  const bool quiet = args.get_bool("quiet", false);
  if (!quiet) {
    options.on_complete = [](const campaign::PlannedExperiment& p,
                             std::size_t done, std::size_t scheduled) {
      std::cout << "[" << done << "/" << scheduled << "] " << p.id << " "
                << p.spec.topology << " "
                << scenario::workload_name(p.spec.workload) << "\n";
    };
  }

  // Metrics exist when exporting OR when the progress reporter needs
  // the scheduler's gauges; the trace ring only when exporting it.
  const std::uint64_t progress_ms = args.get_uint("progress-interval", 1000);
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  options.telemetry.metrics =
      (args.has("metrics-out") || progress_ms > 0) ? &metrics : nullptr;
  options.telemetry.trace = args.has("trace-out") ? &trace : nullptr;

  campaign::RunReport report;
  {
    std::unique_ptr<ProgressReporter> reporter;
    if (progress_ms > 0) {
      reporter = std::make_unique<ProgressReporter>(metrics, progress_ms);
    }
    report = campaign::run_campaign(spec, journal_path, options);
  }
  if (args.has("metrics-out")) {
    obs::write_metrics_file(metrics, args.get_string("metrics-out", ""));
  }
  if (args.has("trace-out")) {
    obs::write_trace_file(trace, args.get_string("trace-out", ""));
  }
  if (!quiet) {
    std::cout << "\n";
  }
  std::cout << "campaign '" << spec.name << "': " << report.planned
            << " experiments, " << report.cached << " cached, "
            << report.executed << " executed, " << report.remaining
            << " remaining in "
            << util::format_fixed(report.elapsed_seconds, 2) << " s\n";
  if (util::termination_requested()) {
    std::cerr << "antdense_sweep: interrupted by signal "
              << util::termination_signal()
              << "; journal flushed — rerun the same command to resume\n";
  }
  return report.remaining == 0 ? 0 : 3;  // 3 = interrupted (--max or signal)
}

int cmd_expand(const util::Args& args) {
  // --dry-run is accepted for the canonical spelling, but expand never
  // executes anything either way.
  args.require_known({"campaign", "dry-run", "limit", "help"});
  const campaign::CampaignSpec spec = load_campaign(args);
  const std::vector<campaign::PlannedExperiment> planned = spec.expand();
  const std::uint64_t limit = args.get_uint("limit", 0);

  util::Table table(
      {"#", "id", "seed", "topology", "workload", "agents", "rounds"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < planned.size(); ++i) {
    if (limit != 0 && shown == limit) {
      break;
    }
    const campaign::PlannedExperiment& p = planned[i];
    table.add_row({std::to_string(i), p.id, std::to_string(p.seed),
                   p.spec.topology,
                   scenario::workload_name(p.spec.workload),
                   std::to_string(p.spec.agents),
                   p.spec.rounds == 0 ? "planned"
                                      : std::to_string(p.spec.rounds)});
    ++shown;
  }
  table.print_markdown(std::cout);
  std::cout << "\ncampaign '" << spec.name << "' expands to "
            << planned.size() << " experiment(s)";
  if (shown < planned.size()) {
    std::cout << " (" << shown << " shown)";
  }
  std::cout << "\n";
  return 0;
}

int cmd_aggregate(const util::Args& args) {
  args.require_known({"journal", "group-by", "csv", "json", "help"});
  const std::string journal_path = require_journal(args);
  const std::vector<util::JsonValue> records =
      campaign::Journal::load(journal_path);
  if (records.empty()) {
    throw std::invalid_argument("journal " + journal_path +
                                " holds no records");
  }
  const std::vector<std::string> group_by = split_commas(
      args.get_string("group-by", "family,workload,rounds"));
  const campaign::Aggregate agg = campaign::aggregate(records, group_by);

  bool wrote = false;
  if (args.has("csv")) {
    write_file(args.get_string("csv", ""), agg.to_csv());
    std::cout << "wrote " << args.get_string("csv", "") << "\n";
    wrote = true;
  }
  if (args.has("json")) {
    write_file(args.get_string("json", ""), agg.to_json().dump() + "\n");
    std::cout << "wrote " << args.get_string("json", "") << "\n";
    wrote = true;
  }
  if (!wrote) {
    std::cout << agg.to_csv();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2 || std::string(argv[1]) == "--help" ||
        std::string(argv[1]) == "help") {
      print_usage(std::cout);
      return argc < 2 ? 1 : 0;
    }
    const std::string command = argv[1];
    // argv[1] is the subcommand; Args skips argv[0], so shift by one.
    const util::Args args(argc - 1, argv + 1);
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (command == "run") {
      return cmd_run(args, /*resume=*/false);
    }
    if (command == "resume") {
      return cmd_run(args, /*resume=*/true);
    }
    if (command == "expand") {
      return cmd_expand(args);
    }
    if (command == "aggregate") {
      return cmd_aggregate(args);
    }
    throw std::invalid_argument("unknown command '" + command +
                                "' (expected run, resume, expand, or "
                                "aggregate)");
  } catch (const std::exception& e) {
    std::cerr << "antdense_sweep: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 1;
  }
}
