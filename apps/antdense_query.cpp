// antdense_query — command-line client for the antdense_serve daemon.
//
//   $ antdense_query run --port=7411 --spec=spec.json --out=result.json
//   $ antdense_query run --port=7411 --spec=spec.json --canonical
//   $ antdense_query sweep --port=7411 --campaign=sweep.json
//   $ antdense_query cache-stats --port=7411
//   $ antdense_query server-info --port=7411
//   $ antdense_query shutdown --port=7411
//
// `run` writes the scenario result document.  By default the daemon's
// per-request fields (cache_hit, elapsed_ns) are merged in; --canonical
// writes the cached canonical bytes untouched instead, which is what
// the CI smoke job byte-compares across cold/warm/restarted requests.
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "serve/client.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace antdense;

void print_usage(std::ostream& os) {
  os << "usage: antdense_query "
        "<run|sweep|cache-stats|server-info|metrics|shutdown>"
        " [flags]\n\n"
     << "common flags:\n"
     << "  --port=N            the daemon's port on 127.0.0.1 (required)\n\n"
     << "run flags:\n"
     << "  --spec=FILE.json    ScenarioSpec to run or fetch (required)\n"
     << "  --progress          print progress frames to stderr\n"
     << "  --out=PATH          write the result document there instead of\n"
     << "                      stdout\n"
     << "  --canonical         write the canonical cached bytes (no\n"
     << "                      cache_hit/elapsed_ns merge; for\n"
     << "                      byte-comparison)\n\n"
     << "sweep flags:\n"
     << "  --campaign=FILE.json  CampaignSpec to sweep (required)\n"
     << "  --progress --out=PATH as for run\n\n"
     << "metrics flags:\n"
     << "  --json              print the registry's JSON snapshot instead\n"
     << "                      of Prometheus text exposition\n";
}

util::JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return util::JsonValue::parse(text.str());
}

void write_output(const util::Args& args, const std::string& text) {
  if (args.has("out")) {
    const std::string path = args.get_string("out", "");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot open " + path + " for writing");
    }
    out << text;
    if (!out.good()) {
      throw std::runtime_error("write to " + path + " failed");
    }
    std::cerr << "antdense_query: wrote " << path << "\n";
  } else {
    std::cout << text;
  }
}

std::uint16_t require_port(const util::Args& args) {
  if (!args.has("port")) {
    throw std::invalid_argument("--port=N is required");
  }
  return static_cast<std::uint16_t>(args.get_uint("port", 0));
}

serve::Client::ProgressFn progress_printer(const util::Args& args) {
  if (!args.get_bool("progress", false)) {
    return {};
  }
  return [](std::uint64_t done, std::uint64_t total) {
    std::cerr << "antdense_query: progress " << done << "/" << total << "\n";
  };
}

/// An "error" response becomes exit code 1 with its message on stderr.
bool check_error(const util::JsonValue& response) {
  const util::JsonValue* type = response.find("type");
  if (type != nullptr && type->is_string() && type->as_string() == "error") {
    const util::JsonValue* message = response.find("message");
    std::cerr << "antdense_query: server error: "
              << (message != nullptr && message->is_string()
                      ? message->as_string()
                      : std::string("(no message)"))
              << "\n";
    return true;
  }
  return false;
}

int cmd_run(const util::Args& args) {
  args.require_known(
      {"port", "spec", "progress", "out", "canonical", "help"});
  if (!args.has("spec")) {
    throw std::invalid_argument("--spec=FILE.json is required");
  }
  const util::JsonValue spec = load_json_file(args.get_string("spec", ""));
  serve::Client client(require_port(args));
  const util::JsonValue response =
      client.run(spec, args.get_bool("progress", false),
                 progress_printer(args));
  if (check_error(response)) {
    return 1;
  }
  const util::JsonValue* result = response.find("result");
  if (result == nullptr) {
    throw std::runtime_error("malformed response: no result document");
  }
  const util::JsonValue* id = response.find("id");
  const util::JsonValue* cache_hit = response.find("cache_hit");
  const util::JsonValue* elapsed = response.find("elapsed_ns");
  std::cerr << "antdense_query: id="
            << (id != nullptr ? id->as_string() : std::string("?"))
            << " cache_hit="
            << (cache_hit != nullptr && cache_hit->as_bool() ? "true"
                                                             : "false")
            << " elapsed_ns="
            << (elapsed != nullptr ? elapsed->as_uint() : 0) << "\n";
  if (args.get_bool("canonical", false)) {
    write_output(args, result->dump(0) + "\n");
  } else {
    util::JsonValue merged = *result;
    if (elapsed != nullptr) {
      merged.set("elapsed_ns", *elapsed);
    }
    if (cache_hit != nullptr) {
      merged.set("cache_hit", *cache_hit);
    }
    write_output(args, merged.dump() + "\n");
  }
  return 0;
}

int cmd_sweep(const util::Args& args) {
  args.require_known({"port", "campaign", "progress", "out", "help"});
  if (!args.has("campaign")) {
    throw std::invalid_argument("--campaign=FILE.json is required");
  }
  const util::JsonValue campaign =
      load_json_file(args.get_string("campaign", ""));
  serve::Client client(require_port(args));
  const util::JsonValue response =
      client.sweep(campaign, args.get_bool("progress", false),
                   progress_printer(args));
  if (check_error(response)) {
    return 1;
  }
  write_output(args, response.dump() + "\n");
  return 0;
}

int cmd_simple(const util::Args& args, const std::string& type) {
  args.require_known({"port", "help"});
  serve::Client client(require_port(args));
  util::JsonValue response;
  if (type == "cache_stats") {
    response = client.cache_stats();
  } else if (type == "server_info") {
    response = client.server_info();
  } else {
    response = client.shutdown();
  }
  if (check_error(response)) {
    return 1;
  }
  std::cout << response.dump() << "\n";
  return 0;
}

int cmd_metrics(const util::Args& args) {
  args.require_known({"port", "json", "help"});
  serve::Client client(require_port(args));
  const util::JsonValue response = client.metrics();
  if (check_error(response)) {
    return 1;
  }
  if (args.get_bool("json", false)) {
    const util::JsonValue* metrics = response.find("metrics");
    if (metrics == nullptr) {
      throw std::runtime_error("malformed response: no metrics object");
    }
    std::cout << metrics->dump() << "\n";
  } else {
    const util::JsonValue* text = response.find("prometheus");
    if (text == nullptr || !text->is_string()) {
      throw std::runtime_error("malformed response: no prometheus text");
    }
    std::cout << text->as_string();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2 || std::string(argv[1]) == "--help" ||
        std::string(argv[1]) == "help") {
      print_usage(std::cout);
      return argc < 2 ? 1 : 0;
    }
    const std::string command = argv[1];
    const util::Args args(argc - 1, argv + 1);
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (command == "run") {
      return cmd_run(args);
    }
    if (command == "sweep") {
      return cmd_sweep(args);
    }
    if (command == "cache-stats") {
      return cmd_simple(args, "cache_stats");
    }
    if (command == "server-info") {
      return cmd_simple(args, "server_info");
    }
    if (command == "metrics") {
      return cmd_metrics(args);
    }
    if (command == "shutdown") {
      return cmd_simple(args, "shutdown");
    }
    throw std::invalid_argument("unknown command '" + command +
                                "' (expected run, sweep, cache-stats, "
                                "server-info, metrics, or shutdown)");
  } catch (const std::exception& e) {
    std::cerr << "antdense_query: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 1;
  }
}
