// antdense_serve — the long-running experiment daemon: accepts
// ScenarioSpec / CampaignSpec requests over a loopback framed-JSON
// protocol (serve/protocol.hpp) and answers from a two-tier
// content-addressed result cache (in-memory LRU over a campaign-format
// journal), executing misses on the repo's engines with single-flight
// dedup.  antdense_query is the matching client.
//
//   $ antdense_serve --journal=cache.jsonl --port=7411
//   antdense_serve: listening on 127.0.0.1:7411 ...
//   $ antdense_query run --port=7411 --spec=spec.json
//
// Shutdown: SIGINT/SIGTERM or a {"type": "shutdown"} request; both
// drain cleanly (the journal is flushed per record, so even SIGKILL
// only costs the in-flight experiments).  A restart on the same
// --journal warm-starts the cache from disk.
#include <exception>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"

namespace {

using namespace antdense;

void print_usage(std::ostream& os) {
  os << "usage: antdense_serve [flags]\n\n"
     << "  --port=N            listen port on 127.0.0.1 (default 0 = a\n"
     << "                      free port, printed on startup)\n"
     << "  --journal=PATH      cache journal (JSONL, campaign format);\n"
     << "                      omitted = in-memory cache only, nothing\n"
     << "                      survives a restart\n"
     << "  --cache-bytes=N     in-memory cache budget in bytes\n"
     << "                      (default 67108864 = 64 MiB)\n"
     << "  --threads=N         worker threads per executed experiment\n"
     << "                      (default 0 = one per core)\n"
     << "  --progress-stride=N report round progress every N rounds\n"
     << "                      (default 0 = auto, ~64 frames per run)\n"
     << "  --progress-interval-ms=N\n"
     << "                      minimum milliseconds between progress\n"
     << "                      frames per request (default 100; 0 =\n"
     << "                      unthrottled; the final frame always sends)\n"
     << "  --quiet             suppress the startup/shutdown banner\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    args.require_known({"port", "journal", "cache-bytes", "threads",
                        "progress-stride", "progress-interval-ms", "quiet",
                        "help"});

    serve::ServerOptions options;
    options.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
    options.journal_path = args.get_string("journal", "");
    options.cache_bytes = args.get_uint("cache-bytes", 64ull << 20);
    options.threads = static_cast<unsigned>(args.get_uint("threads", 0));
    options.progress_stride =
        static_cast<std::uint32_t>(args.get_uint("progress-stride", 0));
    options.progress_interval_ms = static_cast<std::uint32_t>(
        args.get_uint("progress-interval-ms", options.progress_interval_ms));
    const bool quiet = args.get_bool("quiet", false);

    util::install_termination_handlers();

    serve::Server server(options);
    server.start();
    if (!quiet) {
      std::cout << "antdense_serve: listening on 127.0.0.1:" << server.port()
                << (options.journal_path.empty()
                        ? std::string(" (in-memory cache)")
                        : " (journal " + options.journal_path + ", " +
                              std::to_string(server.cache().stats().warm_loaded) +
                              " warm result(s))")
                << std::endl;  // flushed: scripts scrape the port from here
    }

    server.wait(util::termination_wake_fd());
    if (!quiet) {
      if (util::termination_requested()) {
        std::cout << "antdense_serve: signal " << util::termination_signal()
                  << " received, shutting down" << std::endl;
      } else {
        std::cout << "antdense_serve: shutdown requested, shutting down"
                  << std::endl;
      }
    }
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "antdense_serve: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 1;
  }
}
