#include "graph/ring.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(Ring, BasicProperties) {
  const Ring r(12);
  EXPECT_EQ(r.num_nodes(), 12u);
  EXPECT_EQ(r.degree(), 2u);
}

TEST(Ring, RejectsTooSmall) {
  EXPECT_THROW(Ring(2), std::invalid_argument);
}

TEST(Ring, NeighborsWrap) {
  const Ring r(5);
  rng::Xoshiro256pp gen(1);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.random_neighbor(0, gen);
    EXPECT_TRUE(v == 1 || v == 4) << v;
    const auto w = r.random_neighbor(4, gen);
    EXPECT_TRUE(w == 3 || w == 0) << w;
  }
}

TEST(Ring, NeighborDirectionFair) {
  const Ring r(100);
  rng::Xoshiro256pp gen(2);
  int forward = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.random_neighbor(50, gen) == 51) {
      ++forward;
    }
  }
  EXPECT_NEAR(static_cast<double>(forward) / kDraws, 0.5, 0.01);
}

TEST(Ring, DistanceWrapAware) {
  const Ring r(10);
  EXPECT_EQ(r.distance(0, 9), 1u);
  EXPECT_EQ(r.distance(0, 5), 5u);
  EXPECT_EQ(r.distance(3, 3), 0u);
  EXPECT_EQ(r.distance(2, 8), 4u);
}

TEST(Ring, KeyIsIdentity) {
  const Ring r(7);
  for (std::uint64_t v = 0; v < 7; ++v) {
    EXPECT_EQ(r.key(v), v);
  }
}

TEST(Ring, ForEachNeighborYieldsBoth) {
  const Ring r(6);
  std::map<std::uint64_t, int> seen;
  r.for_each_neighbor(0, [&](Ring::node_type v) { ++seen[v]; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.count(1), 1u);
  EXPECT_EQ(seen.count(5), 1u);
}

TEST(Ring, RandomNodeInRange) {
  const Ring r(9);
  rng::Xoshiro256pp gen(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(r.random_node(gen), 9u);
  }
}

}  // namespace
}  // namespace antdense::graph
