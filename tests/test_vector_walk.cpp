// The vector engine's contract suite (sim/vector_walk.hpp):
//   - sequential equivalence: graph::vector_step (word kernels, batched
//     Lemire, bulk fallback) == per-agent random_neighbor draws from an
//     equal-seeded WideStream, on every explicit family and through the
//     type-erased AnyTopology handle;
//   - dense/hash counter equality: which occupancy counter a walk used
//     is unobservable in its results;
//   - golden pins: the vector engine's own streams at fixed seeds (the
//     analogue of the single/sharded goldens — engine=vector is a third
//     identity, not a re-golden of the scalar engines);
//   - statistical equivalence with the scalar engines on all nine
//     topology families: pooled means within 3 combined standard
//     errors, and the Theorem-1 (eps, delta) envelope on the planned
//     round count;
//   - scenario facade: engine=vector runs every workload and is
//     thread-count invariant (threads only fan out trials).
#include "sim/vector_walk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/density_estimator.hpp"
#include "graph/any_topology.hpp"
#include "graph/ba.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/gnp.hpp"
#include "graph/hypercube.hpp"
#include "graph/rgg2d.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "graph/vector_step.hpp"
#include "scenario/experiment.hpp"
#include "sim/dense_counter.hpp"
#include "sim/trial_runner.hpp"
#include "stats/accumulator.hpp"

namespace antdense::sim {
namespace {

constexpr std::uint64_t kSeed = 0x7E012;  // fixed: regression, not stats

// --- The dense counter ------------------------------------------------

TEST(DenseCounter, MatchesHashCounterOnRandomKeys) {
  constexpr std::uint64_t kKeys = 64;
  DenseCollisionCounter dense(kKeys);
  CollisionCounter hash(200);
  rng::Xoshiro256pp gen(kSeed);
  for (int round = 0; round < 20; ++round) {
    dense.begin_round();
    hash.begin_round();
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t key = rng::uniform_below(gen, kKeys);
      ASSERT_EQ(dense.add(key), hash.add(key));
    }
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_EQ(dense.occupancy(key), hash.occupancy(key)) << "key " << key;
    }
  }
}

TEST(DenseCounter, StaleEpochReadsAsEmpty) {
  DenseCollisionCounter counter(8);
  counter.begin_round();
  counter.add(3);
  counter.add(3);
  EXPECT_EQ(counter.occupancy(3), 2u);
  counter.begin_round();
  EXPECT_EQ(counter.occupancy(3), 0u);
}

TEST(DenseCounter, SelectionPolicy) {
  EXPECT_TRUE(use_dense_counter(1));
  EXPECT_TRUE(use_dense_counter(std::uint64_t{1} << 24));
  EXPECT_FALSE(use_dense_counter((std::uint64_t{1} << 24) + 1));
  EXPECT_FALSE(use_dense_counter(0));
}

TEST(VectorEngine, CounterChoiceIsUnobservable) {
  // Same walk through the dense counter (default on this substrate) and
  // the hash counter (forced): identical counts.
  const graph::Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 60;
  cfg.rounds = 100;
  const DensityResult dense = run_density_walk_vector(torus, cfg, kSeed);
  const DensityResult hash = run_density_walk_vector(
      torus, cfg, kSeed, VectorExec{.force_hash_counter = true});
  EXPECT_EQ(dense.collision_counts, hash.collision_counts);
}

// --- Sequential equivalence of vector_step ----------------------------

template <graph::Topology T>
void expect_vector_step_sequential_equivalent(const T& topo,
                                              std::uint32_t agents,
                                              std::uint32_t rounds) {
  using node = typename T::node_type;
  rng::WideStream stream_vec(kSeed);
  rng::WideStream stream_seq(kSeed);
  std::vector<node> pos_vec(agents);
  for (auto& p : pos_vec) {
    p = topo.random_node(stream_vec);
  }
  std::vector<node> pos_seq(agents);
  for (auto& p : pos_seq) {
    p = topo.random_node(stream_seq);
  }
  ASSERT_EQ(pos_vec, pos_seq);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    graph::vector_step(topo, std::span<node>(pos_vec), stream_vec);
    for (auto& p : pos_seq) {
      p = topo.random_neighbor(p, stream_seq);
    }
    ASSERT_EQ(pos_vec, pos_seq) << topo.name() << " round " << r;
  }
  // Same words consumed overall.
  EXPECT_EQ(stream_vec(), stream_seq()) << topo.name();
}

TEST(VectorStep, SequentialEquivalenceAllExplicitFamilies) {
  // 300 agents straddles the 256-word block boundary, so partial blocks
  // and full blocks are both exercised.
  expect_vector_step_sequential_equivalent(graph::Ring(997), 300, 12);
  expect_vector_step_sequential_equivalent(graph::Torus2D(48, 32), 300, 12);
  expect_vector_step_sequential_equivalent(graph::TorusKD(3, 7), 300, 12);
  expect_vector_step_sequential_equivalent(graph::Hypercube(11), 300, 12);
  expect_vector_step_sequential_equivalent(graph::CompleteGraph(512), 300,
                                           12);
  const graph::Graph expander = graph::make_random_regular_graph(128, 8, 7);
  expect_vector_step_sequential_equivalent(
      graph::ExplicitTopology(expander, "expander"), 300, 12);
}

TEST(VectorStep, ErasedMatchesConcrete) {
  // Through graph::AnyTopology the same walks must be bit-identical:
  // the wide virtuals forward to the same vector_step contract.
  DensityConfig cfg;
  cfg.num_agents = 80;
  cfg.rounds = 60;
  const graph::Torus2D torus(32, 32);
  const graph::Ring ring(1000);
  const graph::TorusKD kd(3, 7);
  EXPECT_EQ(run_density_walk_vector(torus, cfg, kSeed).collision_counts,
            run_density_walk_vector(graph::AnyTopology(torus), cfg, kSeed)
                .collision_counts);
  EXPECT_EQ(run_density_walk_vector(ring, cfg, kSeed).collision_counts,
            run_density_walk_vector(graph::AnyTopology(ring), cfg, kSeed)
                .collision_counts);
  EXPECT_EQ(run_density_walk_vector(kd, cfg, kSeed).collision_counts,
            run_density_walk_vector(graph::AnyTopology(kd), cfg, kSeed)
                .collision_counts);
}

TEST(VectorEngine, LazyWalkMatchesScalarConsumption) {
  // The lazy path draws stay/step interleaved from the wide stream; it
  // must be deterministic and well-formed on both engines' view types.
  const graph::Torus2D torus(24, 24);
  DensityConfig cfg;
  cfg.num_agents = 50;
  cfg.rounds = 80;
  cfg.lazy_probability = 0.3;
  const DensityResult a = run_density_walk_vector(torus, cfg, kSeed);
  const DensityResult b = run_density_walk_vector(torus, cfg, kSeed);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
  EXPECT_EQ(a.collision_counts.size(), 50u);
}

// --- Golden pins ------------------------------------------------------

TEST(VectorEngine, GoldenDensityWalk) {
  // engine=vector's own golden stream: torus2d 16x16, 50 agents, 80
  // rounds, seed 900.  Re-goldening this means the vector identity
  // changed (lane count, tags, draw order) — never do it casually.
  const graph::Torus2D torus(16, 16);
  DensityConfig cfg;
  cfg.num_agents = 50;
  cfg.rounds = 80;
  const DensityResult r = run_density_walk_vector(torus, cfg, 900);
  ASSERT_EQ(r.collision_counts.size(), 50u);
  const std::uint64_t golden_first8[8] = {22, 10, 33, 25, 16, 13, 13, 17};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.collision_counts[i], golden_first8[i]) << "agent " << i;
  }
  std::uint64_t sum = 0;
  for (const std::uint64_t c : r.collision_counts) {
    sum += c;
  }
  EXPECT_EQ(sum, 828u);
}

// --- Statistical equivalence across engines, all nine families --------

struct FamilyCase {
  std::string label;
  graph::AnyTopology topo;
};

std::vector<FamilyCase> nine_families() {
  std::vector<FamilyCase> cases;
  cases.push_back({"torus2d", graph::AnyTopology(graph::Torus2D(16, 16))});
  cases.push_back({"ring", graph::AnyTopology(graph::Ring(256))});
  cases.push_back({"toruskd", graph::AnyTopology(graph::TorusKD(3, 6))});
  cases.push_back({"hypercube", graph::AnyTopology(graph::Hypercube(8))});
  cases.push_back(
      {"complete", graph::AnyTopology(graph::CompleteGraph(256))});
  auto expander = std::make_shared<graph::Graph>(
      graph::make_random_regular_graph(256, 8, 7));
  cases.push_back(
      {"expander",
       graph::AnyTopology::with_payload(
           graph::ExplicitTopology(*expander, "expander"), expander)});
  cases.push_back(
      {"rgg2d", graph::AnyTopology(graph::Rgg2D(1024, 0.06, 7))});
  cases.push_back({"gnp", graph::AnyTopology(graph::Gnp(400, 0.03, 7))});
  cases.push_back({"ba", graph::AnyTopology(graph::Ba(400, 4, 7))});
  return cases;
}

// Per-trial means of a flat trials-x-agents estimate pool.  Estimates
// WITHIN one trial are correlated (agents share collision events), so
// the iid standard error over the pooled vector understates the true
// spread; trial means are genuinely independent samples.
std::vector<double> trial_means(const std::vector<double>& flat,
                                std::uint32_t agents) {
  std::vector<double> means;
  for (std::size_t start = 0; start + agents <= flat.size();
       start += agents) {
    double sum = 0.0;
    for (std::uint32_t a = 0; a < agents; ++a) {
      sum += flat[start + a];
    }
    means.push_back(sum / agents);
  }
  return means;
}

TEST(VectorStatistics, MatchesSingleEngineOnAllNineFamilies) {
  // Cross-engine equivalence: the vector and single engines sample the
  // same distribution, so their per-trial mean estimates agree within 4
  // combined standard errors on every family — including the irregular
  // implicit ones, where comparing engine-to-engine sidesteps the
  // degree-bias modeling an absolute envelope would need.  4 SE, same
  // as the sharded suite's unbiasedness envelope: this is a fixed-seed
  // regression run once per CI job across nine families, so the bound
  // must hold the whole family sweep, not one draw.
  DensityConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 60;
  constexpr std::uint32_t kTrials = 32;
  for (const FamilyCase& fam : nine_families()) {
    SCOPED_TRACE(fam.label);
    stats::Accumulator vec;
    for (const double m :
         trial_means(collect_all_agent_estimates_vector(fam.topo, cfg, kSeed,
                                                        kTrials, 2),
                     cfg.num_agents)) {
      vec.add(m);
    }
    stats::Accumulator single;
    for (const double m :
         trial_means(collect_all_agent_estimates(fam.topo, cfg, kSeed,
                                                 kTrials, 2),
                     cfg.num_agents)) {
      single.add(m);
    }
    ASSERT_EQ(vec.count(), kTrials);
    ASSERT_EQ(single.count(), kTrials);
    const double se = std::sqrt(vec.standard_error() * vec.standard_error() +
                                single.standard_error() *
                                    single.standard_error());
    EXPECT_NEAR(vec.mean(), single.mean(), 4.0 * se + 1e-12)
        << fam.label << ": vector " << vec.mean() << " vs single "
        << single.mean();
  }
}

TEST(VectorStatistics, UnbiasedWithinEnvelopeOnRegularFamilies) {
  // Absolute Theorem-1 unbiasedness (E[c/t] = d) on the regular
  // families, same 4-SE envelope as the sharded-engine regression.
  DensityConfig cfg;
  cfg.num_agents = 50;
  cfg.rounds = 80;
  const graph::Torus2D torus(16, 16);
  const double d = 49.0 / 256.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    const DensityResult r = run_density_walk_vector(torus, cfg, 900 + trial);
    for (const double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 4.0 * acc.standard_error() + 1e-12);
}

TEST(VectorStatistics, Theorem1EnvelopeAtPlannedRounds) {
  // Run the paper's (eps, delta) plan on the vector engine: the
  // fraction of estimates within eps*d must clear 1 - delta with slack
  // for Monte Carlo error.
  const graph::Torus2D torus(16, 16);
  constexpr std::uint32_t kAgents = 50;
  const double d = 49.0 / 256.0;
  const double eps = 0.5;
  const double delta = 0.2;
  DensityConfig cfg;
  cfg.num_agents = kAgents;
  cfg.rounds = core::plan_rounds(eps, delta, d, torus.num_nodes());
  std::uint64_t within = 0;
  std::uint64_t total = 0;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const DensityResult r = run_density_walk_vector(torus, cfg, 70 + trial);
    for (const double e : r.estimates()) {
      ++total;
      if (std::fabs(e - d) <= eps * d) {
        ++within;
      }
    }
  }
  const double frac = static_cast<double>(within) / static_cast<double>(total);
  EXPECT_GE(frac, 1.0 - delta) << "within-eps fraction " << frac;
}

// --- Scenario facade --------------------------------------------------

TEST(VectorExperiment, AllWorkloadsAllFamiliesThreadInvariant) {
  // engine=vector through the scenario facade: artifacts byte-identical
  // for threads in {1, 4} on every family x workload cell (threads fan
  // out trials only; the walk stream never depends on them).
  const char* topologies[] = {"torus2d:12x12",
                              "ring:200",
                              "hypercube:8",
                              "toruskd:3x6",
                              "complete:128",
                              "expander:d=8,n=128,seed=7",
                              "rgg2d:n=1024,r=0.06,seed=7",
                              "gnp:n=400,p=0.03,seed=7",
                              "ba:n=400,d=4,seed=7"};
  const scenario::Workload workloads[] = {
      scenario::Workload::kDensity, scenario::Workload::kProperty,
      scenario::Workload::kTrajectory, scenario::Workload::kLocalDensity};
  for (const char* topology : topologies) {
    for (const scenario::Workload workload : workloads) {
      SCOPED_TRACE(std::string(topology) + " / " +
                   scenario::workload_name(workload));
      scenario::ScenarioSpec spec;
      spec.topology = topology;
      spec.workload = workload;
      spec.engine = scenario::EngineMode::kVector;
      spec.agents = 24;
      spec.rounds = 20;
      spec.checkpoints = 4;
      const bool pooled = workload == scenario::Workload::kDensity ||
                          workload == scenario::Workload::kProperty;
      spec.trials = pooled ? 2 : 1;
      std::string reference;
      for (const unsigned threads : {1u, 4u}) {
        spec.threads = threads;
        scenario::ScenarioResult result = scenario::Experiment(spec).run();
        result.elapsed_seconds = 0.0;
        result.elapsed_ns = 0;
        scenario::ScenarioSpec canonical = result.spec;
        canonical.threads = 1;
        result.spec = canonical;
        const std::string dump = result.to_json().dump(0);
        if (reference.empty()) {
          reference = dump;
        } else {
          EXPECT_EQ(dump, reference) << "diverged at threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace antdense::sim
