// Differential tests pinning the sharded engine's determinism contract
// (sim/sharded_walk.hpp): for a fixed (seed, config, shard grain), the
// merged output is bit-identical for ANY thread count — threads ∈
// {1, 2, 8} here — across every topology family and every workload
// observer, including the noise paths that draw from per-shard streams.
// Also covers the ShardPlan layout, the lock-free collision counter's
// serial/concurrent parity, statistical sanity of the sharded stream
// (Algorithm 1 stays unbiased), and thread-count invariance at the
// scenario::Experiment level for engine=sharded specs.
#include "sim/sharded_walk.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/any_topology.hpp"
#include "graph/biased_torus2d.hpp"
#include "graph/complete.hpp"
#include "graph/explicit_topology.hpp"
#include "graph/generators.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"
#include "graph/torus_kd.hpp"
#include "scenario/ball_density.hpp"
#include "scenario/experiment.hpp"
#include "sim/concurrent_counter.hpp"
#include "stats/accumulator.hpp"
#include "util/worker_pool.hpp"

namespace antdense::sim {
namespace {

using graph::Hypercube;
using graph::Ring;
using graph::Torus2D;

// Small shards force real multi-shard merges at test sizes.
constexpr std::uint32_t kTestShardSize = 16;
constexpr unsigned kThreadCounts[] = {1, 2, 8};

DensityConfig base_config() {
  DensityConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 120;
  return cfg;
}

// --- ShardPlan layout -------------------------------------------------

TEST(ShardPlan, CoversPopulationContiguously) {
  const ShardPlan plan = ShardPlan::make(100, 16);
  EXPECT_EQ(plan.num_shards(), 7u);
  std::uint32_t expected_begin = 0;
  for (std::uint32_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.begin(s), expected_begin);
    EXPECT_GT(plan.end(s), plan.begin(s));
    expected_begin = plan.end(s);
  }
  EXPECT_EQ(expected_begin, 100u);
  EXPECT_EQ(plan.end(plan.num_shards() - 1), 100u);
}

TEST(ShardPlan, ExactMultipleAndSingleShard) {
  EXPECT_EQ(ShardPlan::make(64, 16).num_shards(), 4u);
  EXPECT_EQ(ShardPlan::make(15, 16).num_shards(), 1u);
  EXPECT_EQ(ShardPlan::make(1, 4096).num_shards(), 1u);
}

TEST(ShardPlan, RejectsDegenerateInputs) {
  EXPECT_THROW(ShardPlan::make(0, 16), std::invalid_argument);
  EXPECT_THROW(ShardPlan::make(10, 0), std::invalid_argument);
}

// --- The lock-free counter -------------------------------------------

TEST(ConcurrentCounter, SerialAndConcurrentAddsAgree) {
  // Same keys through add_serial, single-threaded add, and genuinely
  // concurrent add via a pool: occupancy must be exact in all three.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 500; ++i) {
    keys.push_back(i % 37);  // heavy collisions
  }
  ConcurrentCollisionCounter serial(keys.size());
  serial.begin_round();
  for (std::uint64_t k : keys) {
    serial.add_serial(k);
  }
  ConcurrentCollisionCounter atomic_1t(keys.size());
  atomic_1t.begin_round();
  for (std::uint64_t k : keys) {
    atomic_1t.add(k);
  }
  ConcurrentCollisionCounter parallel(keys.size());
  parallel.begin_round();
  util::WorkerPool pool(4);
  pool.run(keys.size(), [&](std::size_t i) { parallel.add(keys[i]); });

  for (std::uint64_t k = 0; k < 40; ++k) {
    const std::uint32_t expect = k < 37 ? (500 + 37 - k - 1) / 37 : 0;
    EXPECT_EQ(serial.occupancy(k), expect) << k;
    EXPECT_EQ(atomic_1t.occupancy(k), expect) << k;
    EXPECT_EQ(parallel.occupancy(k), expect) << k;
  }
}

TEST(ConcurrentCounter, EpochInvalidatesPreviousRound) {
  ConcurrentCollisionCounter counter(8);
  counter.begin_round();
  counter.add_serial(5);
  counter.add_serial(5);
  EXPECT_EQ(counter.occupancy(5), 2u);
  counter.begin_round();
  EXPECT_EQ(counter.occupancy(5), 0u);
  counter.add(5);
  EXPECT_EQ(counter.occupancy(5), 1u);
}

// --- Thread-count invariance, all topology families -------------------

template <graph::Topology T>
void expect_sharded_threads_agree(const T& topo, const DensityConfig& cfg,
                                  std::uint64_t seed) {
  const DensityResult reference = run_density_walk_sharded(
      topo, cfg, seed, ShardExec{.threads = 1, .shard_size = kTestShardSize});
  for (unsigned threads : kThreadCounts) {
    const DensityResult r = run_density_walk_sharded(
        topo, cfg, seed,
        ShardExec{.threads = threads, .shard_size = kTestShardSize});
    EXPECT_EQ(r.collision_counts, reference.collision_counts)
        << topo.name() << " diverged at threads=" << threads;
  }
}

TEST(ShardedEquivalence, DensityThreadsAgreeAcrossTopologies) {
  const DensityConfig cfg = base_config();
  for (std::uint64_t seed : {1ull, 0xDEADull}) {
    expect_sharded_threads_agree(Ring(512), cfg, seed);
    expect_sharded_threads_agree(Torus2D(24, 24), cfg, seed);
    expect_sharded_threads_agree(Hypercube(10), cfg, seed);
    expect_sharded_threads_agree(graph::TorusKD(3, 8), cfg, seed);
    expect_sharded_threads_agree(graph::CompleteGraph(100), cfg, seed);
  }
  const graph::Graph g = graph::make_random_regular_graph(128, 4, 99);
  expect_sharded_threads_agree(graph::ExplicitTopology(g, "rr"),
                               base_config(), 5);
}

TEST(ShardedEquivalence, FallbackTopologyThreadsAgree) {
  // BiasedTorus2D has no batched member: the per-agent fallback path
  // must be just as thread-count-invariant.
  const auto topo = graph::BiasedTorus2D::with_drift(20, 20, 0.1);
  expect_sharded_threads_agree(topo, base_config(), 13);
}

TEST(ShardedEquivalence, NoisePathsThreadsAgree) {
  // Detection-miss and spurious draws come from per-shard streams in
  // observer phase B; they must not depend on scheduling either.
  DensityConfig cfg = base_config();
  cfg.detection_miss_probability = 0.4;
  cfg.spurious_collision_probability = 0.2;
  expect_sharded_threads_agree(Torus2D(16, 16), cfg, 31);
  expect_sharded_threads_agree(Hypercube(9), cfg, 32);
}

TEST(ShardedEquivalence, LazyWalkThreadsAgree) {
  DensityConfig cfg = base_config();
  cfg.lazy_probability = 0.3;
  expect_sharded_threads_agree(Torus2D(16, 16), cfg, 21);
  expect_sharded_threads_agree(Ring(256), cfg, 22);
}

TEST(ShardedEquivalence, InitialPositionsThreadsAgree) {
  const Torus2D torus(16, 16);
  DensityConfig cfg = base_config();
  std::vector<Torus2D::node_type> start;
  for (std::uint32_t i = 0; i < cfg.num_agents; ++i) {
    start.push_back(Torus2D::pack(i % 4, i / 16));
  }
  const DensityResult reference = run_density_walk_sharded(
      torus, cfg, 41, ShardExec{.threads = 1, .shard_size = kTestShardSize},
      &start);
  for (unsigned threads : kThreadCounts) {
    const DensityResult r = run_density_walk_sharded(
        torus, cfg, 41,
        ShardExec{.threads = threads, .shard_size = kTestShardSize}, &start);
    EXPECT_EQ(r.collision_counts, reference.collision_counts);
  }
}

TEST(ShardedEquivalence, PropertyWalkThreadsAgree) {
  DensityConfig cfg = base_config();
  std::vector<bool> has_property(cfg.num_agents, false);
  for (std::uint32_t i = 0; i < cfg.num_agents; i += 3) {
    has_property[i] = true;
  }
  auto check = [&](const auto& topo) {
    const PropertyResult reference = run_property_walk_sharded(
        topo, cfg, has_property, 2,
        ShardExec{.threads = 1, .shard_size = kTestShardSize});
    for (unsigned threads : kThreadCounts) {
      const PropertyResult r = run_property_walk_sharded(
          topo, cfg, has_property, 2,
          ShardExec{.threads = threads, .shard_size = kTestShardSize});
      EXPECT_EQ(r.total_counts, reference.total_counts)
          << topo.name() << " threads=" << threads;
      EXPECT_EQ(r.property_counts, reference.property_counts)
          << topo.name() << " threads=" << threads;
    }
  };
  check(Ring(300));
  check(Torus2D(20, 20));
  check(Hypercube(10));
}

TEST(ShardedEquivalence, TrajectoryThreadsAgree) {
  const Torus2D torus(16, 16);
  WalkConfig cfg;
  cfg.num_agents = 40;
  cfg.rounds = 60;
  auto run_at = [&](unsigned threads) {
    CollisionObserver counts(cfg.num_agents);
    TrajectoryObserver trajectory(counts, 6, {5, 20, 60});
    run_walk_sharded(torus, cfg, 0x7124u,
                     ShardExec{.threads = threads,
                               .shard_size = kTestShardSize},
                     static_cast<const std::vector<Torus2D::node_type>*>(
                         nullptr),
                     counts, trajectory);
    return trajectory.take_estimates();
  };
  const auto reference = run_at(1);
  ASSERT_EQ(reference.size(), 6u);
  ASSERT_EQ(reference[0].size(), 3u);
  EXPECT_EQ(run_at(2), reference);
  EXPECT_EQ(run_at(8), reference);
}

TEST(ShardedEquivalence, BallDensityThreadsAgree) {
  const graph::AnyTopology any(Torus2D(18, 18));
  WalkConfig cfg;
  cfg.num_agents = 48;
  cfg.rounds = 24;
  auto run_at = [&](unsigned threads) {
    scenario::BallDensityObserver balls(any, 2, {1, 8, 24}, cfg.num_agents);
    run_walk_sharded(any, cfg, 0x10Du,
                     ShardExec{.threads = threads,
                               .shard_size = kTestShardSize},
                     static_cast<const std::vector<std::uint64_t>*>(nullptr),
                     balls);
    return balls.take_densities();
  };
  const auto reference = run_at(1);
  ASSERT_EQ(reference.size(), 3u);
  EXPECT_EQ(run_at(2), reference);
  EXPECT_EQ(run_at(8), reference);
}

// --- Contract edges ---------------------------------------------------

TEST(ShardedContract, ShardSizeIsPartOfTheStream) {
  // Regrouping agents into different shards reassigns streams, so the
  // grain is identity-bearing — document it by pinning the difference.
  const Torus2D torus(24, 24);
  const DensityConfig cfg = base_config();
  const DensityResult a = run_density_walk_sharded(
      torus, cfg, 7, ShardExec{.threads = 1, .shard_size = 16});
  const DensityResult b = run_density_walk_sharded(
      torus, cfg, 7, ShardExec{.threads = 1, .shard_size = 8});
  EXPECT_NE(a.collision_counts, b.collision_counts);
}

TEST(ShardedContract, DistinctFromSingleStreamEngine) {
  // The sharded engine deliberately defines its own stream: even a
  // single-shard walk is seeded through derive_stream, not the root.
  const Torus2D torus(24, 24);
  const DensityConfig cfg = base_config();
  const DensityResult sharded = run_density_walk_sharded(
      torus, cfg, 7, ShardExec{.threads = 1});
  const DensityResult single = run_density_walk(torus, cfg, 7);
  EXPECT_NE(sharded.collision_counts, single.collision_counts);
}

TEST(ShardedContract, DeterministicAcrossRepeatedRuns) {
  const Hypercube cube(10);
  const DensityConfig cfg = base_config();
  const ShardExec exec{.threads = 8, .shard_size = kTestShardSize};
  const DensityResult a = run_density_walk_sharded(cube, cfg, 9, exec);
  const DensityResult b = run_density_walk_sharded(cube, cfg, 9, exec);
  EXPECT_EQ(a.collision_counts, b.collision_counts);
}

TEST(ShardedStatistics, DensityEstimatesStayUnbiased) {
  // Theorem 1's unbiasedness (E[c/t] = d) must survive the stream
  // change: pooled sharded estimates match the true density within 4
  // standard errors, same envelope as the single-stream regression.
  const Torus2D torus(16, 16);
  DensityConfig cfg;
  cfg.num_agents = 50;
  cfg.rounds = 80;
  const double d = 49.0 / 256.0;
  stats::Accumulator acc;
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    const DensityResult r = run_density_walk_sharded(
        torus, cfg, 900 + trial,
        ShardExec{.threads = 1, .shard_size = kTestShardSize});
    for (double e : r.estimates()) {
      acc.add(e);
    }
  }
  EXPECT_NEAR(acc.mean(), d, 4.0 * acc.standard_error() + 1e-12);
}

// --- Experiment-level invariance (all workloads, all families) --------

TEST(ShardedExperiment, AllWorkloadsAllFamiliesThreadInvariant) {
  // engine=sharded through the scenario facade: the emitted artifact
  // must be byte-identical for threads ∈ {1, 2, 8} on every topology
  // family x workload cell (trials > 1 for the pooling workloads so the
  // trial fan-out path is covered too).
  const char* topologies[] = {"torus2d:12x12",  "ring:200",
                              "hypercube:8",    "toruskd:3x6",
                              "complete:128",
                              "expander:d=8,n=128,seed=7"};
  const scenario::Workload workloads[] = {
      scenario::Workload::kDensity, scenario::Workload::kProperty,
      scenario::Workload::kTrajectory, scenario::Workload::kLocalDensity};
  for (const char* topology : topologies) {
    for (const scenario::Workload workload : workloads) {
      SCOPED_TRACE(std::string(topology) + " / " +
                   scenario::workload_name(workload));
      scenario::ScenarioSpec spec;
      spec.topology = topology;
      spec.workload = workload;
      spec.engine = scenario::EngineMode::kSharded;
      spec.agents = 24;
      spec.rounds = 20;
      spec.checkpoints = 4;
      const bool pooled = workload == scenario::Workload::kDensity ||
                          workload == scenario::Workload::kProperty;
      spec.trials = pooled ? 2 : 1;
      std::string reference;
      for (unsigned threads : kThreadCounts) {
        spec.threads = threads;
        scenario::ScenarioResult result =
            scenario::Experiment(spec).run();
        result.elapsed_seconds = 0.0;  // the wall-clock fields
        result.elapsed_ns = 0;
        const std::string dump = result.to_json().dump(0);
        if (reference.empty()) {
          reference = dump;
        } else {
          // The spec echoes `threads`, which legitimately differs.
          scenario::ScenarioSpec canonical = result.spec;
          canonical.threads = kThreadCounts[0];
          result.spec = canonical;
          EXPECT_EQ(result.to_json().dump(0), reference)
              << "diverged at threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace antdense::sim
