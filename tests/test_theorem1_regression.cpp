// Statistical regression suite guarding the WalkEngine against silent
// bias or variance blow-ups from future optimizations.  Fixed seeds make
// every run identical, so these are regression tests, not flaky
// statistics: the tolerances are generous versions of what Theorem 1
// (arXiv:1603.02981) promises, measured once against the current engine.
//
//   - Mean of pooled estimates within 3 standard errors of d
//     (Corollary 3 unbiasedness) on torus2d and hypercube.
//   - Measured ε at 90% confidence below a generous multiple of the
//     Theorem 1 scaling (relative error bound).
//   - Error shrinks when rounds quadruple (the 1/sqrt(t)-ish rate, with
//     slack for the log factor).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bounds.hpp"
#include "graph/hypercube.hpp"
#include "graph/torus2d.hpp"
#include "sim/density_sim.hpp"
#include "sim/trial_runner.hpp"
#include "stats/accumulator.hpp"
#include "stats/concentration.hpp"

namespace antdense::sim {
namespace {

using graph::Hypercube;
using graph::Torus2D;

constexpr std::uint64_t kSeed = 0x7E011;  // fixed: regression, not stats
constexpr std::uint32_t kTrials = 40;
constexpr double kConfidence = 0.9;

struct Measured {
  double mean = 0.0;
  double standard_error = 0.0;
  double epsilon90 = 0.0;  // measured ε at 90% confidence
};

template <graph::Topology T>
Measured measure(const T& topo, std::uint32_t num_agents,
                 std::uint32_t rounds, double density) {
  DensityConfig cfg;
  cfg.num_agents = num_agents;
  cfg.rounds = rounds;
  const std::vector<double> estimates =
      collect_all_agent_estimates(topo, cfg, kSeed, kTrials, 2);
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  Measured m;
  m.mean = acc.mean();
  m.standard_error = acc.standard_error();
  m.epsilon90 = stats::epsilon_at_confidence(estimates, density, kConfidence);
  return m;
}

TEST(Theorem1Regression, Torus2DUnbiasedWithinThreeStandardErrors) {
  const Torus2D torus(32, 32);
  constexpr std::uint32_t kAgents = 103;  // d ~ 0.1
  const double d = 102.0 / 1024.0;
  const Measured m = measure(torus, kAgents, 1024, d);
  EXPECT_NEAR(m.mean, d, 3.0 * m.standard_error)
      << "mean " << m.mean << " vs d " << d << " (se " << m.standard_error
      << ")";
}

TEST(Theorem1Regression, HypercubeUnbiasedWithinThreeStandardErrors) {
  const Hypercube cube(10);  // A = 1024
  constexpr std::uint32_t kAgents = 103;
  const double d = 102.0 / 1024.0;
  const Measured m = measure(cube, kAgents, 1024, d);
  EXPECT_NEAR(m.mean, d, 3.0 * m.standard_error);
}

TEST(Theorem1Regression, Torus2DRelativeErrorWithinTheorem1Envelope) {
  // Theorem 1 with c1 = 1 gives the shape; allow a generous 3x envelope
  // so only a real regression (biased stepping, broken counting, bad
  // batching) trips it, not constant-factor drift.
  const Torus2D torus(32, 32);
  constexpr std::uint32_t kAgents = 103;
  constexpr std::uint32_t kRounds = 1024;
  const double d = 102.0 / 1024.0;
  const Measured m = measure(torus, kAgents, kRounds, d);
  const double bound =
      core::theorem1_epsilon(kRounds, d, 1.0 - kConfidence, 1.0);
  EXPECT_LT(m.epsilon90, 3.0 * bound)
      << "measured eps " << m.epsilon90 << " vs bound " << bound;
  // And it is a real estimate, not a degenerate zero.
  EXPECT_GT(m.epsilon90, 0.0);
}

TEST(Theorem1Regression, HypercubeRelativeErrorMatchesIndependentSampling) {
  // Lemma 25: hypercube local mixing matches independent sampling, so the
  // Chernoff-style envelope sqrt(3 log(1/δ) / (t d)) with generous slack
  // must hold.
  const Hypercube cube(10);
  constexpr std::uint32_t kAgents = 103;
  constexpr std::uint32_t kRounds = 1024;
  const double d = 102.0 / 1024.0;
  const Measured m = measure(cube, kAgents, kRounds, d);
  const double chernoff = std::sqrt(
      3.0 * std::log(1.0 / (1.0 - kConfidence)) / (kRounds * d));
  EXPECT_LT(m.epsilon90, 3.0 * chernoff);
}

TEST(Theorem1Regression, ErrorShrinksWhenRoundsQuadruple) {
  // ε ~ t^{-1/2} up to log factors: quadrupling t must cut the measured
  // ε at least in half-ish (we require a 1.4x reduction — generous).
  const Torus2D torus(32, 32);
  constexpr std::uint32_t kAgents = 103;
  const double d = 102.0 / 1024.0;
  const Measured coarse = measure(torus, kAgents, 256, d);
  const Measured fine = measure(torus, kAgents, 1024, d);
  EXPECT_LT(fine.epsilon90, coarse.epsilon90 / 1.4)
      << "eps(256) = " << coarse.epsilon90
      << ", eps(1024) = " << fine.epsilon90;
}

TEST(Theorem1Regression, SingleAgentEstimatesUnbiasedToo) {
  // The fully independent per-trial discipline (agent 0 only) must agree
  // with d as well — catches bias that pooling could mask.
  const Torus2D torus(32, 32);
  DensityConfig cfg;
  cfg.num_agents = 103;
  cfg.rounds = 1024;
  const double d = 102.0 / 1024.0;
  const std::vector<double> estimates =
      collect_single_agent_estimates(torus, cfg, kSeed, 160, 2);
  stats::Accumulator acc;
  for (double e : estimates) {
    acc.add(e);
  }
  EXPECT_NEAR(acc.mean(), d, 3.0 * acc.standard_error());
}

}  // namespace
}  // namespace antdense::sim
