#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace antdense::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 2.5, 3.5}) {
    h.add(x);
  }
  double total = 0.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    total += h.bin_fraction(b);
  }
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Histogram, AddCountBatches) {
  Histogram h(0.0, 1.0, 1);
  h.add_count(0.5, 10);
  EXPECT_EQ(h.bin_count(0), 10u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, BucketBoundaries) {
  LogHistogram h;
  EXPECT_EQ(h.bucket_lower(0), 0u);
  EXPECT_EQ(h.bucket_upper(0), 0u);
  EXPECT_EQ(h.bucket_lower(1), 1u);
  EXPECT_EQ(h.bucket_upper(1), 1u);
  EXPECT_EQ(h.bucket_lower(3), 4u);
  EXPECT_EQ(h.bucket_upper(3), 7u);
}

TEST(LogHistogram, ValuesLandInRightBucket) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // [2,3]
  EXPECT_EQ(h.bucket_count(3), 2u);  // [4,7]
  EXPECT_EQ(h.bucket_count(4), 1u);  // [8,15]
  EXPECT_EQ(h.total(), 7u);
}

TEST(LogHistogram, HugeValuesClampToLastBucket) {
  LogHistogram h(4);
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(3), 1u);
}

}  // namespace
}  // namespace antdense::stats
