#include "netsize/link_query_graph.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::netsize {
namespace {

using graph::Graph;
using graph::make_ring_graph;
using graph::make_star_graph;

TEST(LinkQueryGraph, CountsOneQueryPerStep) {
  const Graph g = make_ring_graph(10);
  LinkQueryGraph access(g);
  rng::Xoshiro256pp gen(1);
  Graph::vertex v = 0;
  for (int i = 0; i < 25; ++i) {
    v = access.random_neighbor(v, gen);
  }
  EXPECT_EQ(access.query_count(), 25u);
  access.reset_query_count();
  EXPECT_EQ(access.query_count(), 0u);
}

TEST(LinkQueryGraph, DegreeIsFree) {
  const Graph g = make_star_graph(5);
  LinkQueryGraph access(g);
  EXPECT_EQ(access.degree(0), 4u);
  EXPECT_EQ(access.query_count(), 0u);
}

TEST(LinkQueryGraph, StepsFollowAdjacency) {
  const Graph g = make_ring_graph(8);
  LinkQueryGraph access(g);
  rng::Xoshiro256pp gen(2);
  Graph::vertex v = 3;
  for (int i = 0; i < 100; ++i) {
    const Graph::vertex u = access.random_neighbor(v, gen);
    EXPECT_TRUE(u == (v + 1) % 8 || u == (v + 7) % 8);
    v = u;
  }
}

TEST(StationarySampler, DegreeProportionalOnStar) {
  // Star hub has half the total degree mass.
  const Graph g = make_star_graph(9);  // hub deg 8, 8 leaves deg 1
  const StationarySampler sampler(g);
  rng::Xoshiro256pp gen(3);
  int hub = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    hub += sampler.sample(gen) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hub) / kDraws, 0.5, 0.01);
}

TEST(StationarySampler, UniformOnRegularGraph) {
  const Graph g = make_ring_graph(10);
  const StationarySampler sampler(g);
  rng::Xoshiro256pp gen(4);
  std::map<Graph::vertex, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sampler.sample(gen)];
  }
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(StationarySampler, SamplesAlwaysInRange) {
  const Graph g = graph::make_barabasi_albert_graph(100, 2, 5);
  const StationarySampler sampler(g);
  rng::Xoshiro256pp gen(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(sampler.sample(gen), 100u);
  }
}

}  // namespace
}  // namespace antdense::netsize
