#include "graph/hypercube.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(Hypercube, BasicProperties) {
  const Hypercube h(10);
  EXPECT_EQ(h.num_nodes(), 1024u);
  EXPECT_EQ(h.degree(), 10u);
  EXPECT_EQ(h.dimensions(), 10u);
}

TEST(Hypercube, RejectsBadDimensions) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(64), std::invalid_argument);
}

TEST(Hypercube, NeighborsAtHammingDistanceOne) {
  const Hypercube h(8);
  rng::Xoshiro256pp gen(6);
  const Hypercube::node_type u = 0b10110101;
  for (int i = 0; i < 200; ++i) {
    const auto v = h.random_neighbor(u, gen);
    EXPECT_EQ(Hypercube::hamming(u, v), 1u);
    EXPECT_LT(v, h.num_nodes());
  }
}

TEST(Hypercube, NeighborBitUniform) {
  const Hypercube h(4);
  rng::Xoshiro256pp gen(7);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[h.random_neighbor(0, gen)];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

TEST(Hypercube, RandomNodeInRange) {
  const Hypercube h(6);
  rng::Xoshiro256pp gen(8);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(h.random_node(gen), 64u);
  }
}

TEST(Hypercube, HammingHelper) {
  EXPECT_EQ(Hypercube::hamming(0b0000, 0b1111), 4u);
  EXPECT_EQ(Hypercube::hamming(0b1010, 0b1010), 0u);
  EXPECT_EQ(Hypercube::hamming(0b1000, 0b0000), 1u);
}

TEST(Hypercube, ForEachNeighborEnumeratesAllBitFlips) {
  const Hypercube h(5);
  std::map<std::uint64_t, int> seen;
  h.for_each_neighbor(0b00101, [&](Hypercube::node_type v) { ++seen[v]; });
  EXPECT_EQ(seen.size(), 5u);
  for (const auto& [v, c] : seen) {
    EXPECT_EQ(Hypercube::hamming(0b00101, v), 1u);
  }
}

TEST(Hypercube, WalkStaysInRange) {
  const Hypercube h(12);
  rng::Xoshiro256pp gen(9);
  Hypercube::node_type u = h.random_node(gen);
  for (int i = 0; i < 1000; ++i) {
    u = h.random_neighbor(u, gen);
    EXPECT_LT(u, h.num_nodes());
  }
}

TEST(Hypercube, ParityAlternates) {
  // The hypercube is bipartite by popcount parity: each step flips it.
  const Hypercube h(7);
  rng::Xoshiro256pp gen(10);
  Hypercube::node_type u = 0;
  for (int i = 1; i <= 100; ++i) {
    u = h.random_neighbor(u, gen);
    EXPECT_EQ(__builtin_popcountll(u) % 2, i % 2);
  }
}

}  // namespace
}  // namespace antdense::graph
