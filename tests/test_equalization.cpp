#include "walk/equalization.hpp"

#include <gtest/gtest.h>

#include "graph/ring.hpp"
#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

using graph::Ring;
using graph::Torus2D;

TEST(EqualizationCurve, OddStepsNeverEqualizeOnTorus) {
  // The torus is bipartite (Corollary 10: probability 0 for odd m).
  const Torus2D torus(16, 16);
  const auto curve = measure_equalization_curve(torus, 9, 20000, 1, 2);
  for (std::uint32_t m = 1; m <= 9; m += 2) {
    EXPECT_DOUBLE_EQ(curve.probability[m], 0.0) << "m=" << m;
  }
}

TEST(EqualizationCurve, TorusExactValueAtM2) {
  // Return after 2 steps: second step must undo the first: 1/4.
  const Torus2D torus(64, 64);
  const auto curve = measure_equalization_curve(torus, 2, 60000, 2, 2);
  EXPECT_NEAR(curve.probability[2], 0.25, 0.01);
}

TEST(EqualizationCurve, RingExactValueAtM2) {
  // +- or -+: 1/2.
  const Ring ring(64);
  const auto curve = measure_equalization_curve(ring, 2, 60000, 3, 2);
  EXPECT_NEAR(curve.probability[2], 0.5, 0.01);
}

TEST(EqualizationCurve, TorusExactValueAtM4) {
  // P[S4 = 0] for 4 steps in 2-D: count paths returning to origin:
  // multinomial: sum over (i up/down pairs, j left/right pairs).
  // Number of returning 4-step paths: sum_{i=0..2} C(4;i,i,2-i,2-i)
  //  = 4!/(0!0!2!2!) + 4!/(1!1!1!1!) + 4!/(2!2!0!0!) = 6+24+6 = 36.
  // Probability = 36/256 = 9/64 ≈ 0.1406.
  const Torus2D torus(64, 64);
  const auto curve = measure_equalization_curve(torus, 4, 80000, 4, 2);
  EXPECT_NEAR(curve.probability[4], 36.0 / 256.0, 0.008);
}

TEST(EqualizationCurve, DecayRoughlyHarmonicOnTorus) {
  const Torus2D torus(256, 256);
  const auto curve = measure_equalization_curve(torus, 64, 60000, 5, 2);
  // Theta(1/(m+1)): P[16] / P[64] should be ~4 (within noise).
  const double ratio = curve.probability[16] / curve.probability[64];
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(EqualizationCounts, BoundedAndDeterministic) {
  const Torus2D torus(64, 64);
  const auto a = equalization_counts(torus, 50, 2000, 6, 1);
  const auto b = equalization_counts(torus, 50, 2000, 6, 2);
  EXPECT_EQ(a, b);
  for (double c : a) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 50.0);
  }
}

TEST(EqualizationCounts, RingReturnsMoreOftenThanTorus) {
  // Weak local mixing on the ring: ~sqrt(t) returns vs ~log(t).
  const Ring ring(4096);
  const Torus2D torus(64, 64);
  const auto ring_counts = equalization_counts(ring, 400, 8000, 7, 2);
  const auto torus_counts = equalization_counts(torus, 400, 8000, 7, 2);
  double ring_mean = 0.0, torus_mean = 0.0;
  for (double c : ring_counts) ring_mean += c;
  for (double c : torus_counts) torus_mean += c;
  ring_mean /= static_cast<double>(ring_counts.size());
  torus_mean /= static_cast<double>(torus_counts.size());
  EXPECT_GT(ring_mean, 3.0 * torus_mean);
}

}  // namespace
}  // namespace antdense::walk
