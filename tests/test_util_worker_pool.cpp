// Tests for util::WorkerPool — the sharded engine's substrate.  The
// pool's contract: every index runs exactly once per run(), run() is a
// full barrier, the pool is reusable across thousands of run() calls
// (one pair per walk round), and the first task exception surfaces on
// the caller after the barrier without poisoning later runs.
#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace antdense::util {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(),
             [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(WorkerPool, RejectsZeroThreads) {
  EXPECT_THROW(WorkerPool(0), std::invalid_argument);
}

TEST(WorkerPool, ZeroTasksIsANoop) {
  WorkerPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, IsABarrier) {
  // Writes from every task must be visible to the caller after run():
  // summing without synchronization would be flagged by TSan and would
  // miss increments if run() returned early.
  WorkerPool pool(4);
  std::vector<std::uint64_t> cells(1000, 0);
  pool.run(cells.size(), [&](std::size_t i) { cells[i] = i + 1; });
  const std::uint64_t sum =
      std::accumulate(cells.begin(), cells.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 1000ull * 1001ull / 2ull);
}

TEST(WorkerPool, ReusableAcrossManyRuns) {
  // The engine issues two run() calls per round for thousands of
  // rounds; the generation handshake must never wedge or drop tasks.
  WorkerPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.run(7, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000ull * (7ull * 8ull / 2ull));
}

TEST(WorkerPool, FirstExceptionPropagatesAndPoolSurvives) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(100,
               [&](std::size_t i) {
                 if (i == 13) {
                   throw std::runtime_error("boom");
                 }
               }),
      std::runtime_error);
  // The pool must be clean afterwards: a later run works and does not
  // re-throw the stale error.
  std::atomic<int> count{0};
  pool.run(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(WorkerPool, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace antdense::util
