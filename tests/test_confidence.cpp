#include "core/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/complete.hpp"
#include "graph/torus2d.hpp"

namespace antdense::core {
namespace {

TEST(EmpiricalBernstein, ValidatesInputs) {
  EXPECT_THROW(empirical_bernstein_interval({1}, 0.1), std::invalid_argument);
  EXPECT_THROW(empirical_bernstein_interval({1, 2}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(empirical_bernstein_interval({1, 2}, 0.1, 0.5),
               std::invalid_argument);
}

TEST(EmpiricalBernstein, CentersOnSampleMean) {
  const std::vector<std::uint32_t> counts{0, 1, 0, 2, 1, 0};
  const AgentInterval iv = empirical_bernstein_interval(counts, 0.1);
  EXPECT_NEAR(iv.estimate, 4.0 / 6.0, 1e-12);
  EXPECT_LE(iv.lower, iv.estimate);
  EXPECT_GE(iv.upper, iv.estimate);
}

TEST(EmpiricalBernstein, ZeroVarianceShrinksToLogTerm) {
  const std::vector<std::uint32_t> counts(100, 2);
  const AgentInterval iv = empirical_bernstein_interval(counts, 0.1);
  EXPECT_NEAR(iv.estimate, 2.0, 1e-12);
  EXPECT_NEAR(iv.upper - iv.estimate, 3.0 * std::log(30.0) / 100.0, 1e-9);
}

TEST(EmpiricalBernstein, InflationWidensInterval) {
  const std::vector<std::uint32_t> counts{0, 1, 2, 0, 1, 3, 0, 0};
  const AgentInterval narrow = empirical_bernstein_interval(counts, 0.1, 1.0);
  const AgentInterval wide = empirical_bernstein_interval(counts, 0.1, 3.0);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(EmpiricalBernstein, LowerBoundClampedAtZero) {
  const std::vector<std::uint32_t> counts{0, 0, 0, 1};
  const AgentInterval iv = empirical_bernstein_interval(counts, 0.1);
  EXPECT_GE(iv.lower, 0.0);
}

TEST(ConfidenceRun, CoverageOnCompleteGraph) {
  // Independent rounds (complete graph): nominal empirical-Bernstein
  // coverage should hold without inflation.  Check >= 1 - 2*delta to
  // leave Monte Carlo margin.
  const graph::CompleteGraph g(1024);
  constexpr double kDelta = 0.1;
  std::uint32_t covered = 0, total = 0;
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const auto r =
        estimate_density_with_intervals(g, 103, 300, kDelta, 1.0,
                                        500 + trial);
    for (const auto& iv : r.intervals) {
      covered += iv.contains(r.true_density) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / total, 1.0 - 2.0 * kDelta);
}

TEST(ConfidenceRun, TorusNeedsInflationLessThanLog2T) {
  // On the torus the correlated rounds hurt coverage at inflation 1;
  // with the log(2t)-scaled inflation coverage is restored.  Assert the
  // inflated variant covers at least as well and meets the target.
  const graph::Torus2D torus(48, 48);
  constexpr double kDelta = 0.1;
  constexpr std::uint32_t kRounds = 512;
  const double inflation = std::log(2.0 * kRounds) / 2.0;
  std::uint32_t covered_plain = 0, covered_inflated = 0, total = 0;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto plain = estimate_density_with_intervals(
        torus, 231, kRounds, kDelta, 1.0, 700 + trial);
    const auto inflated = estimate_density_with_intervals(
        torus, 231, kRounds, kDelta, inflation, 700 + trial);
    for (std::size_t i = 0; i < plain.intervals.size(); ++i) {
      covered_plain +=
          plain.intervals[i].contains(plain.true_density) ? 1 : 0;
      covered_inflated +=
          inflated.intervals[i].contains(inflated.true_density) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GE(covered_inflated, covered_plain);
  EXPECT_GT(static_cast<double>(covered_inflated) / total, 1.0 - kDelta);
}

TEST(ConfidenceRun, DeterministicInSeed) {
  const graph::Torus2D torus(16, 16);
  const auto a = estimate_density_with_intervals(torus, 10, 50, 0.1, 1.0, 9);
  const auto b = estimate_density_with_intervals(torus, 10, 50, 0.1, 1.0, 9);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.intervals[i].estimate, b.intervals[i].estimate);
  }
}

}  // namespace
}  // namespace antdense::core
