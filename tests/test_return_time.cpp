#include "walk/return_time.hpp"

#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "graph/hypercube.hpp"
#include "graph/ring.hpp"
#include "graph/torus2d.hpp"

namespace antdense::walk {
namespace {

TEST(FirstReturn, KacFormulaOnCompleteGraph) {
  // E[first return] = A for any regular graph; on K_A returns are
  // near-geometric so a cap of 40A leaves negligible censoring.
  const graph::CompleteGraph g(64);
  const auto stats = measure_first_return(g, 64 * 40, 40000, 1, 2);
  EXPECT_LT(stats.censored_fraction, 0.01);
  EXPECT_NEAR(stats.mean, 64.0, 3.0);
}

TEST(FirstReturn, KacFormulaOnHypercube) {
  const graph::Hypercube g(6);  // A = 64
  const auto stats = measure_first_return(g, 64 * 60, 40000, 2, 2);
  EXPECT_LT(stats.censored_fraction, 0.02);
  // Censoring trims the heaviest tail, so allow a slightly low mean.
  EXPECT_NEAR(stats.mean, 64.0, 6.0);
}

TEST(FirstReturn, RingHeavyTailCensorsMore) {
  // The ring's return time is heavy-tailed (P[T > m] ~ m^{-1/2}); with
  // the same relative cap, far more mass is censored than on K_A.
  const graph::Ring ring(64);
  const graph::CompleteGraph complete(64);
  const auto ring_stats = measure_first_return(ring, 64 * 40, 20000, 3, 2);
  const auto complete_stats =
      measure_first_return(complete, 64 * 40, 20000, 3, 2);
  EXPECT_GT(ring_stats.censored_fraction,
            5.0 * complete_stats.censored_fraction + 0.001);
}

TEST(FirstReturn, TorusParityMakesReturnsEven) {
  const graph::Torus2D torus(8, 8);
  const auto stats = measure_first_return(torus, 4096, 5000, 4, 2);
  for (double s : stats.samples) {
    EXPECT_EQ(static_cast<std::uint64_t>(s) % 2, 0u);
  }
}

TEST(FirstMeeting, UniformStartsSometimesCoincide) {
  const graph::CompleteGraph g(16);
  const auto stats = measure_first_meeting(g, 2000, 30000, 5, 2);
  // P[same start] = 1/16: some zero meeting times must occur.
  std::uint64_t zeros = 0;
  for (double s : stats.samples) {
    zeros += s == 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 30000.0, 1.0 / 16.0, 0.01);
}

TEST(FirstMeeting, DenserGraphMeetsSooner) {
  const graph::CompleteGraph small(32);
  const graph::CompleteGraph large(256);
  const auto fast = measure_first_meeting(small, 1 << 14, 20000, 6, 2);
  const auto slow = measure_first_meeting(large, 1 << 14, 20000, 6, 2);
  EXPECT_LT(fast.mean, slow.mean);
}

TEST(FirstMeeting, SamplesRespectCap) {
  const graph::Torus2D torus(32, 32);
  const auto stats = measure_first_meeting(torus, 500, 5000, 7, 2);
  for (double s : stats.samples) {
    EXPECT_LE(s, 500.0);
  }
  EXPECT_GE(stats.censored_fraction, 0.0);
}

}  // namespace
}  // namespace antdense::walk
