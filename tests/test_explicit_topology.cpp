#include "graph/explicit_topology.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::graph {
namespace {

TEST(ExplicitTopology, AcceptsIrregularGraphs) {
  // Irregular graphs are first-class (the implicit-generator
  // differential suite materializes them): nominal degree is the rounded
  // average, per-node draws respect the true degree.
  const Graph star = make_star_graph(5);
  const ExplicitTopology topo(star, "star");
  EXPECT_FALSE(topo.is_regular());
  EXPECT_EQ(topo.num_nodes(), 5u);  // hub + 4 leaves
  // 4 edges over 5 vertices: average degree 8/5 rounds to 2.
  EXPECT_EQ(topo.degree(), 2u);
  EXPECT_NE(topo.name().find("davg="), std::string::npos);
  rng::Xoshiro256pp gen(77);
  for (int i = 0; i < 200; ++i) {
    // Every leaf must step to the hub; the hub must step to some leaf.
    const auto leaf = static_cast<Graph::vertex>(1 + i % 4);
    EXPECT_EQ(topo.random_neighbor(leaf, gen), 0u);
    EXPECT_GE(topo.random_neighbor(0, gen), 1u);
  }
}

TEST(ExplicitTopology, RejectsIsolatedVertices) {
  // Walks must stay total: a vertex with no neighbors is still an error.
  const Graph lonely = Graph::from_edges(3, {{0, 1}});
  EXPECT_THROW(ExplicitTopology{lonely}, std::invalid_argument);
}

TEST(ExplicitTopology, ExposesGraphProperties) {
  const Graph g = make_ring_graph(12);
  const ExplicitTopology topo(g, "ring");
  EXPECT_EQ(topo.num_nodes(), 12u);
  EXPECT_EQ(topo.degree(), 2u);
  EXPECT_EQ(&topo.graph(), &g);
  EXPECT_NE(topo.name().find("ring"), std::string::npos);
}

TEST(ExplicitTopology, RandomNeighborRespectsAdjacency) {
  const Graph g = make_hypercube_graph(4);
  const ExplicitTopology topo(g);
  rng::Xoshiro256pp gen(31);
  for (int i = 0; i < 500; ++i) {
    const auto u = topo.random_node(gen);
    const auto v = topo.random_neighbor(u, gen);
    bool adjacent = false;
    for (Graph::vertex w : g.neighbors(u)) {
      if (w == v) {
        adjacent = true;
        break;
      }
    }
    EXPECT_TRUE(adjacent) << u << " -> " << v;
  }
}

TEST(ExplicitTopology, NeighborChoiceUniform) {
  const Graph g = make_complete_graph(5);
  const ExplicitTopology topo(g);
  rng::Xoshiro256pp gen(32);
  std::map<std::uint32_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[topo.random_neighbor(0, gen)];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.01);
  }
}

TEST(ExplicitTopology, KeyIsVertexId) {
  const Graph g = make_ring_graph(6);
  const ExplicitTopology topo(g);
  for (Graph::vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(topo.key(v), v);
  }
}

TEST(ExplicitTopology, WalkMatchesImplicitRingStatistics) {
  // Explicit ring and implicit Ring must produce identically-distributed
  // walk end points; compare occupancy histograms loosely.
  const Graph g = make_ring_graph(16);
  const ExplicitTopology topo(g);
  rng::Xoshiro256pp gen(33);
  std::vector<int> counts(16, 0);
  constexpr int kTrials = 32000;
  for (int trial = 0; trial < kTrials; ++trial) {
    ExplicitTopology::node_type u = 0;
    for (int s = 0; s < 8; ++s) {
      u = topo.random_neighbor(u, gen);
    }
    ++counts[u];
  }
  // After 8 steps from vertex 0 only even vertices are reachable.
  for (int v = 1; v < 16; v += 2) {
    EXPECT_EQ(counts[v], 0) << "odd vertex " << v;
  }
  EXPECT_GT(counts[0], 0);
}

}  // namespace
}  // namespace antdense::graph
