// Golden pins for the implicit-generator randomness derivation
// (graph/implicit_hash.hpp) and for the end-to-end neighborhoods built
// on it.  Like test_rng_stream's derive_stream pins: these values must
// hold on every platform, compiler, and release — an implicit topology
// IS its (family, params, seed) triple, so changing any derivation here
// silently re-goldens every recorded walk on rgg2d/gnp/ba.  Treat a
// failure as a contract break, not a test to update.  The stability
// contract is documented in docs/ARCHITECTURE.md.
#include "graph/implicit_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "graph/ba.hpp"
#include "graph/gnp.hpp"
#include "graph/rgg2d.hpp"
#include "rng/stream.hpp"

namespace antdense::graph {
namespace {

using implicit_hash::ba_attach_seed;
using implicit_hash::gnp_edge_word;
using implicit_hash::rgg2d_jitter_word;

TEST(ImplicitHash, PinnedRgg2DJitterWords) {
  EXPECT_EQ(rgg2d_jitter_word(0, 0), 0xdc313656b975a2b0ULL);
  EXPECT_EQ(rgg2d_jitter_word(0, 1), 0x3d5ac1f30738f373ULL);
  EXPECT_EQ(rgg2d_jitter_word(42, 7), 0x1dde39a60f92846bULL);
  EXPECT_EQ(rgg2d_jitter_word(0xDEADBEEFULL, 3), 0x4a0babb23111ce40ULL);
}

TEST(ImplicitHash, PinnedGnpEdgeWords) {
  EXPECT_EQ(gnp_edge_word(0, 0, 1), 0xad946db2ce9b4ad6ULL);
  EXPECT_EQ(gnp_edge_word(0, 1, 2), 0xc9d1ce33c2e710afULL);
  EXPECT_EQ(gnp_edge_word(7, 3, 9), 0xe5ad8647bf18f15aULL);
  EXPECT_EQ(gnp_edge_word(0xDEADBEEFULL, 5, 6), 0xd53be35d098be384ULL);
}

TEST(ImplicitHash, PinnedBaAttachSeeds) {
  EXPECT_EQ(ba_attach_seed(0, 0), 0xe8721fa02b22c7abULL);
  EXPECT_EQ(ba_attach_seed(0, 1), 0x1546e5598acb2e4bULL);
  EXPECT_EQ(ba_attach_seed(42, 100), 0xbbba333d63ed301aULL);
  EXPECT_EQ(ba_attach_seed(0xDEADBEEFULL, 9), 0x75293d735f1ad343ULL);
}

TEST(ImplicitHash, DerivationsAreConstexpr) {
  static_assert(rgg2d_jitter_word(1, 2) != rgg2d_jitter_word(2, 1),
                "jitter derivation must separate seed from node index");
  static_assert(gnp_edge_word(0, 1, 2) != gnp_edge_word(0, 2, 1),
                "callers canonicalize pair order; the hash itself is "
                "order-sensitive");
  static_assert(ba_attach_seed(5, 0) == ba_attach_seed(5, 0));
}

TEST(ImplicitHash, DomainsAreSeparated) {
  // The three family tags, the sharded engine's stream tag, and plain
  // derive_seed must never collide on the same (seed, index) inputs —
  // a node's RGG jitter re-used as a GNP edge word would correlate
  // substrates that share a user seed.
  for (std::uint64_t seed : {0ull, 1ull, 42ull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      std::set<std::uint64_t> words = {
          rgg2d_jitter_word(seed, i), gnp_edge_word(seed, i, i + 1),
          ba_attach_seed(seed, i), rng::derive_stream(seed, i),
          rng::derive_seed(seed, i)};
      EXPECT_EQ(words.size(), 5u) << "seed " << seed << " index " << i;
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end pins: the full constructions (fixed-point geometry,
// threshold compares, attachment chains), not just the hash words.
// ---------------------------------------------------------------------

TEST(ImplicitGolden, Rgg2DGeometryIsPinned) {
  const Rgg2D rgg(10000, 0.03, 42);
  EXPECT_EQ(rgg.side(), 100u);
  EXPECT_EQ(rgg.reach(), 4u);
  const Rgg2D::Position p = rgg.position(1234);
  EXPECT_EQ(p.x, 146937632820ULL);
  EXPECT_EQ(p.y, 55248339318ULL);
  EXPECT_EQ(rgg.degree_of(0), 27u);
  EXPECT_EQ(rgg.degree_of(1234), 29u);
  EXPECT_EQ(rgg.degree_of(9999), 27u);
  std::vector<std::uint64_t> first;
  rgg.for_each_neighbor(1234, [&](std::uint64_t v) {
    if (first.size() < 3) {
      first.push_back(v);
    }
  });
  EXPECT_EQ(first, (std::vector<std::uint64_t>{1033, 1034, 1035}));
}

TEST(ImplicitGolden, GnpAdjacencyIsPinned) {
  const Gnp gnp(500, 0.02, 42);
  EXPECT_EQ(gnp.degree_of(0), 10u);
  EXPECT_EQ(gnp.degree_of(250), 11u);
  EXPECT_FALSE(gnp.connected(3, 77));
  EXPECT_FALSE(gnp.connected(0, 1));
  std::vector<std::uint64_t> first;
  gnp.for_each_neighbor(250, [&](std::uint64_t v) {
    if (first.size() < 3) {
      first.push_back(v);
    }
  });
  EXPECT_EQ(first, (std::vector<std::uint64_t>{51, 93, 132}));
}

TEST(ImplicitGolden, BaAttachmentChainsArePinned) {
  const Ba ba(1000, 3, 42);
  EXPECT_EQ(ba.target_of(0), 0u);  // edge 0 is the node-0 self-loop
  EXPECT_EQ(ba.target_of(5), 1u);
  EXPECT_EQ(ba.target_of(100), 9u);
  EXPECT_EQ(ba.target_of(2999), 849u);
  EXPECT_EQ(ba.degree_of(0), 52u);
  EXPECT_EQ(ba.degree_of(500), 4u);
}

}  // namespace
}  // namespace antdense::graph
