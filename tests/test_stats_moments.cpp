#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/random.hpp"
#include "rng/xoshiro256pp.hpp"

namespace antdense::stats {
namespace {

TEST(CentralMoment, FirstIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(central_moment(xs, 1), 0.0, 1e-12);
}

TEST(CentralMoment, SecondIsVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(central_moment(xs, 2), 4.0);
}

TEST(CentralMoment, SymmetricDataHasZeroThird) {
  const std::vector<double> xs{-2.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_NEAR(central_moment(xs, 3), 0.0, 1e-12);
}

TEST(CentralMoment, RejectsBadInput) {
  EXPECT_THROW(central_moment({}, 2), std::invalid_argument);
  EXPECT_THROW(central_moment({1.0}, 0), std::invalid_argument);
}

TEST(RawMoment, MatchesDefinition) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(raw_moment(xs, 1), 2.0);
  EXPECT_DOUBLE_EQ(raw_moment(xs, 2), 14.0 / 3.0);
}

TEST(CentralMomentsUpTo, AgreesWithIndividualCalls) {
  std::vector<double> xs;
  rng::Xoshiro256pp gen(5);
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng::uniform_real(gen, -3.0, 7.0));
  }
  const auto all = central_moments_up_to(xs, 5);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_NEAR(all[static_cast<std::size_t>(k)], central_moment(xs, k),
                1e-9 * std::fabs(central_moment(xs, k)) + 1e-12)
        << "k=" << k;
  }
}

TEST(Skewness, RightSkewedPositive) {
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 10.0};
  EXPECT_GT(skewness(xs), 0.0);
}

TEST(Skewness, DegenerateIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(skewness(xs), 0.0);
}

TEST(ExcessKurtosis, GaussianSamplesNearZero) {
  // Sum of 12 uniforms minus 6 is approximately standard normal.
  rng::Xoshiro256pp gen(77);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) {
    double s = 0.0;
    for (int j = 0; j < 12; ++j) {
      s += rng::uniform_unit(gen);
    }
    xs.push_back(s - 6.0);
  }
  EXPECT_NEAR(excess_kurtosis(xs), 0.0, 0.1);
}

TEST(ExcessKurtosis, HeavyTailPositive) {
  std::vector<double> xs(1000, 0.0);
  xs[0] = 100.0;
  xs[1] = -100.0;
  EXPECT_GT(excess_kurtosis(xs), 3.0);
}

}  // namespace
}  // namespace antdense::stats
