// The dynamics layer, unit level: TimeVaryingWorld overlay semantics,
// the three built-in WorldDynamics models, DynamicsRegistry parsing /
// canonicalization / diagnostics, the redesigned sensing sub-object
// (both JSON spellings), and the identity rules — pinned hashes prove
// dynamics-absent specs keep their historical identity_hash and that
// spelling variants of one dynamic spec collapse to one hash.
#include "sim/dynamic_world.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/any_topology.hpp"
#include "graph/time_varying.hpp"
#include "rng/random.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256pp.hpp"
#include "scenario/dynamics_registry.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/density_sim.hpp"
#include "sim/vector_walk.hpp"
#include "sim/walk_engine.hpp"
#include "util/json.hpp"

namespace antdense {
namespace {

using scenario::DynamicsRegistry;
using scenario::EngineMode;
using scenario::Registry;
using scenario::ScenarioSpec;
using scenario::SensingSpec;
using scenario::Workload;

// ---------------------------------------------------------------------
// TimeVaryingWorld
// ---------------------------------------------------------------------

TEST(TimeVaryingWorld, TracksFailuresAndDownEdges) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:8");
  graph::TimeVaryingWorld world(topo);

  EXPECT_EQ(world.num_failed_nodes(), 0u);
  EXPECT_EQ(world.num_down_edges(), 0u);
  EXPECT_TRUE(world.move_allowed(0, 1));

  EXPECT_TRUE(world.fail_node(3));
  EXPECT_FALSE(world.fail_node(3)) << "already failed";
  EXPECT_TRUE(world.node_failed(3));
  EXPECT_FALSE(world.node_failed(4));
  EXPECT_FALSE(world.move_allowed(2, 3));
  EXPECT_TRUE(world.move_allowed(3, 3)) << "staying put is always allowed";

  EXPECT_TRUE(world.drop_edge(5, 6));
  EXPECT_FALSE(world.drop_edge(6, 5)) << "undirected: same edge";
  EXPECT_TRUE(world.edge_down(5, 6));
  EXPECT_TRUE(world.edge_down(6, 5));
  EXPECT_FALSE(world.edge_down(6, 7));
  EXPECT_FALSE(world.move_allowed(5, 6));
  EXPECT_TRUE(world.move_allowed(6, 7));
}

TEST(TimeVaryingWorld, DeflectPicksSmallestAdmissibleNeighbor) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:8");
  graph::TimeVaryingWorld world(topo);
  std::vector<std::uint64_t> scratch;

  // Ring neighbors of 4 are {3, 5}; unperturbed, deflect picks 3.
  EXPECT_EQ(world.deflect(4, scratch), 3u);
  world.fail_node(3);
  EXPECT_EQ(world.deflect(4, scratch), 5u);
  world.drop_edge(4, 5);
  EXPECT_EQ(world.deflect(4, scratch), 4u) << "every neighbor blocked";
}

TEST(TimeVaryingWorld, RecoverSweepsWithProbabilityOne) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:16");
  graph::TimeVaryingWorld world(topo);
  world.fail_node(1);
  world.fail_node(9);
  world.drop_edge(2, 3);
  rng::Xoshiro256pp gen(7);
  world.recover(0.0, gen);
  EXPECT_EQ(world.num_failed_nodes(), 2u);
  EXPECT_EQ(world.num_down_edges(), 1u);
  world.recover(1.0, gen);
  EXPECT_EQ(world.num_failed_nodes(), 0u);
  EXPECT_EQ(world.num_down_edges(), 0u);
}

// ---------------------------------------------------------------------
// WorldDynamics models
// ---------------------------------------------------------------------

TEST(ChurnDynamics, ZeroRatesConsumeNoRandomnessAndRewriteNothing) {
  const graph::AnyTopology topo = Registry::built_in().make("torus2d:8x8");
  sim::ChurnDynamics model(topo, 0.0, 0.0, 10, 5);
  EXPECT_FALSE(model.rewrites_moves());

  std::vector<std::uint64_t> pos(6, 0);
  rng::Xoshiro256pp mut_gen(99);
  model.mutate(2, mut_gen, std::span<std::uint64_t>(pos));
  rng::Xoshiro256pp fresh(99);
  EXPECT_EQ(mut_gen(), fresh())
      << "a churn tick with p_edge=p_fail=0 and nothing down must not "
         "touch the mutation stream";
  EXPECT_EQ(model.world().num_failed_nodes(), 0u);
}

TEST(ChurnDynamics, EvictsWalkersFromFailedNodes) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:8");
  // p_fail=1 with a huge mean_down: every tick fails Binomial(8, 1) = 8
  // node draws (with repeats), so failures accumulate fast.
  sim::ChurnDynamics model(topo, 0.0, 1.0, 1000000, 3);
  std::vector<std::uint64_t> pos = {0, 1, 2, 3, 4, 5};
  rng::Xoshiro256pp mut_gen(rng::derive_mutation_stream(11, 3));
  model.mutate(2, mut_gen, std::span<std::uint64_t>(pos));
  EXPECT_GT(model.world().num_failed_nodes(), 0u);
  std::vector<std::uint64_t> scratch;
  for (const std::uint64_t p : pos) {
    EXPECT_FALSE(model.world().node_failed(topo.key(p)) &&
                 model.world().deflect(p, scratch) != p)
        << "no walker may remain on a failed node that has an "
           "admissible neighbor";
  }
}

TEST(ChurnDynamics, RewriteMovesBlocksDownEdgesAndDeflectsIntoFailures) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:8");
  sim::ChurnDynamics model(topo, 0.5, 0.5, 10, 1);
  // Drive the world into a known state through its public surface: the
  // model's overlay is reachable via world(), but rewrite_moves is what
  // the engines call, so test through a hand-built sibling world.
  graph::TimeVaryingWorld world(topo);
  world.drop_edge(1, 2);
  world.fail_node(5);

  // Mirror those mutations through a model by failing via mutate is
  // nondeterministic; instead check the rewrite contract on the
  // hand-built world directly.
  std::vector<std::uint64_t> scratch;
  EXPECT_FALSE(world.move_allowed(1, 2));
  EXPECT_FALSE(world.move_allowed(4, 5));
  EXPECT_EQ(world.deflect(4, scratch), 3u);
}

TEST(DriftDynamics, KillsAndRevivesPopulationsAtExtremeRates) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:32");
  sim::DriftDynamics model(topo, 8, /*p_death=*/1.0, /*p_birth=*/0.0, 1);
  std::vector<std::uint64_t> pos(8, 0);
  rng::Xoshiro256pp mut_gen(4);
  model.mutate(2, mut_gen, std::span<std::uint64_t>(pos));
  for (std::uint32_t slot = 0; slot < 8; ++slot) {
    EXPECT_FALSE(model.alive(slot));
    EXPECT_EQ(model.count_mask()[slot], 0);
  }

  sim::DriftDynamics cycle(topo, 4, /*p_death=*/1.0, /*p_birth=*/1.0, 1);
  std::vector<std::uint64_t> pos4(4, 0);
  cycle.mutate(2, mut_gen, std::span<std::uint64_t>(pos4));  // all die
  cycle.mutate(3, mut_gen, std::span<std::uint64_t>(pos4));  // all reborn
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    EXPECT_TRUE(cycle.alive(slot));
    EXPECT_EQ(cycle.birth_round(slot), 3u)
        << "a reborn slot restarts its estimate at its birth round";
  }
}

TEST(FadeDynamics, MissWalkStaysInUnitIntervalAndGatesObservations) {
  sim::FadeDynamics model(16, /*p0=*/0.9, /*step=*/0.3, 2);
  std::vector<std::uint64_t> pos(16, 0);
  rng::Xoshiro256pp mut_gen(8);
  for (std::uint32_t r = 2; r < 40; ++r) {
    model.mutate(r, mut_gen, std::span<std::uint64_t>(pos));
    for (const double p : model.miss_probabilities()) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }

  sim::FadeDynamics blind(2, /*p0=*/1.0, /*step=*/0.0, 0);
  EXPECT_TRUE(blind.transforms_observations());
  rng::Xoshiro256pp gen(1);
  EXPECT_EQ(blind.observe(0, 17, gen), 0u) << "miss=1 drops every partner";
  sim::FadeDynamics sharp(2, /*p0=*/0.0, /*step=*/0.0, 0);
  rng::Xoshiro256pp gen2(1);
  EXPECT_EQ(sharp.observe(0, 17, gen2), 17u);
  EXPECT_EQ(gen2(), rng::Xoshiro256pp(1)())
      << "miss=0 must not consume observation randomness";
}

// ---------------------------------------------------------------------
// DynamicsRegistry
// ---------------------------------------------------------------------

TEST(DynamicsRegistry, ListsBuiltInModelsWithGrammar) {
  const DynamicsRegistry& reg = DynamicsRegistry::built_in();
  const std::vector<std::string> names = reg.family_names();
  EXPECT_EQ(names, (std::vector<std::string>{"churn", "drift", "fade"}));
  for (const std::string& name : names) {
    EXPECT_TRUE(reg.has_family(name));
    EXPECT_FALSE(reg.grammar(name).empty());
    EXPECT_EQ(reg.grammar(name).rfind(name + ":", 0), 0u)
        << "grammar lines lead with the canonical spec prefix";
  }
}

TEST(DynamicsRegistry, CanonicalIsOrderFreeExplicitAndIdempotent) {
  const DynamicsRegistry& reg = DynamicsRegistry::built_in();
  const std::string canon = reg.canonical("churn:p_fail=0.5,p_edge=0.25");
  EXPECT_EQ(canon, "churn:p_edge=0.25,p_fail=0.5,mean_down=10,seed=0");
  EXPECT_EQ(reg.canonical(canon), canon) << "canonical is idempotent";
  EXPECT_EQ(reg.canonical("drift:p_death=0.01,p_birth=0.02"),
            "drift:p_death=0.01,p_birth=0.02,seed=0");
  EXPECT_EQ(reg.canonical("fade:p0=0.1,step=0.02,seed=9"),
            "fade:p0=0.1,step=0.02,seed=9");
}

TEST(DynamicsRegistry, MakeBuildsModelsWhoseNameIsTheCanonicalSpec) {
  const DynamicsRegistry& reg = DynamicsRegistry::built_in();
  const graph::AnyTopology topo = Registry::built_in().make("torus2d:8x8");
  for (const char* spec :
       {"churn:p_edge=0.01,p_fail=0.005", "drift:p_death=0.1,p_birth=0.1",
        "fade:p0=0.2,step=0.05"}) {
    const auto model = reg.make(spec, topo, 16);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), reg.canonical(spec))
        << "a built model re-spells its own canonical spec";
  }
}

TEST(DynamicsRegistry, DiagnosticsNameTheModelAndTheOffendingKeyValue) {
  const DynamicsRegistry& reg = DynamicsRegistry::built_in();
  const auto expect_message = [&](const std::string& spec,
                                  const std::string& fragment) {
    try {
      reg.canonical(spec);
      FAIL() << "expected '" << spec << "' to be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message '" << e.what() << "' must contain '" << fragment
          << "'";
    }
  };
  expect_message("quake:p=1", "unknown dynamics model 'quake'");
  expect_message("quake:p=1", "churn, drift, fade");
  expect_message("churn", "model:params");
  expect_message("churn:p_edge=0.1", "missing required parameter 'p_fail'");
  expect_message("churn:p_edge=0.1,p_fail=0.1,warp=2",
                 "unknown parameter 'warp=2'");
  expect_message("churn:p_edge=oops,p_fail=0",
                 "parameter 'p_edge=oops': expected a real number");
  expect_message("churn:p_edge=2,p_fail=0",
                 "parameter 'p_edge=2': must be in [0,1]");
  expect_message("churn:p_edge=0,p_fail=0,mean_down=0",
                 "parameter 'mean_down=0'");
  expect_message("drift:p_death=0.1", "missing required parameter");
  expect_message("fade:p0=1.5,step=0", "parameter 'p0=1.5'");
}

// ---------------------------------------------------------------------
// SensingSpec: both JSON spellings, one emission contract
// ---------------------------------------------------------------------

TEST(SensingSpec, FlatKeysAndVersionedObjectParseIdentically) {
  const ScenarioSpec flat = ScenarioSpec::from_json(util::JsonValue::parse(
      R"({"miss": 0.25, "spurious": 0.02, "dropout": 0.1})"));
  const ScenarioSpec structured =
      ScenarioSpec::from_json(util::JsonValue::parse(
          R"({"sensing": {"version": 1, "miss": 0.25, "spurious": 0.02,
              "dropout": 0.1}})"));
  EXPECT_EQ(flat.sensing.detection_miss, 0.25);
  EXPECT_EQ(flat.sensing.spurious, 0.02);
  EXPECT_EQ(flat.sensing.dropout, 0.1);
  EXPECT_EQ(structured.sensing.detection_miss, flat.sensing.detection_miss);
  EXPECT_EQ(structured.sensing.spurious, flat.sensing.spurious);
  EXPECT_EQ(structured.sensing.dropout, flat.sensing.dropout);
  EXPECT_TRUE(flat.sensing.any());
  EXPECT_FALSE(ScenarioSpec{}.sensing.any());
}

TEST(SensingSpec, RejectsUnknownKeysAndForeignVersions) {
  EXPECT_THROW(ScenarioSpec::from_json(util::JsonValue::parse(
                   R"({"sensing": {"version": 2, "miss": 0.1}})")),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json(util::JsonValue::parse(
                   R"({"sensing": {"mis": 0.1}})")),
               std::invalid_argument);
}

TEST(SensingSpec, EmissionIsIdentityStable) {
  // Dropout-free: the historical flat keys, byte for byte.
  ScenarioSpec spec;
  spec.sensing.detection_miss = 0.3;
  spec.sensing.spurious = 0.01;
  const util::JsonValue flat = spec.to_json();
  EXPECT_NE(flat.find("miss"), nullptr);
  EXPECT_NE(flat.find("spurious"), nullptr);
  EXPECT_EQ(flat.find("sensing"), nullptr);
  EXPECT_EQ(flat.find("dynamics"), nullptr);

  // Dropout set: the versioned object replaces the flat keys.
  spec.sensing.dropout = 0.05;
  const util::JsonValue structured = spec.to_json();
  EXPECT_EQ(structured.find("miss"), nullptr);
  EXPECT_EQ(structured.find("spurious"), nullptr);
  const util::JsonValue* sensing = structured.find("sensing");
  ASSERT_NE(sensing, nullptr);
  EXPECT_EQ(sensing->find("version")->as_uint(), SensingSpec::kVersion);
  EXPECT_EQ(sensing->find("dropout")->as_double(), 0.05);

  // Both shapes round-trip through from_json unchanged.
  const ScenarioSpec back = ScenarioSpec::from_json(structured);
  EXPECT_EQ(back.sensing.detection_miss, 0.3);
  EXPECT_EQ(back.sensing.dropout, 0.05);
}

// ---------------------------------------------------------------------
// Identity rules (hashes captured on the pre-dynamics build)
// ---------------------------------------------------------------------

TEST(Identity, DynamicsAbsentSpecsKeepTheirHistoricalHashes) {
  const Registry& reg = Registry::built_in();
  const auto hash_of = [&](const char* json) {
    return ScenarioSpec::from_json(util::JsonValue::parse(json))
        .identity_hash(reg);
  };
  EXPECT_EQ(hash_of(R"({"topology": "torus2d:32x32", "workload": "density",
                        "agents": 64, "rounds": 16, "seed": 1})"),
            "6b791ba8a22324ed");
  EXPECT_EQ(hash_of(R"({"topology": "torus2d:32x32", "workload": "density",
                        "agents": 64, "rounds": 16, "seed": 1,
                        "miss": 0.3, "spurious": 0.01})"),
            "852dd332fe5f235a");
  EXPECT_EQ(hash_of(R"({"topology": "ring:1024", "workload": "property",
                        "agents": 50, "rounds": 12,
                        "property-fraction": 0.25, "seed": 9,
                        "engine": "sharded", "threads": 8})"),
            "1ae6ba48666caa7a");
  EXPECT_EQ(hash_of(R"({"topology": "expander:n=512,d=8,seed=5",
                        "workload": "density", "agents": 100, "rounds": 0,
                        "eps": 0.2, "delta": 0.1, "engine": "vector",
                        "seed": 3, "lazy": 0.5})"),
            "11e6375517621ac0");
  EXPECT_EQ(hash_of(R"({"topology": "hypercube:10",
                        "workload": "trajectory", "tracked": 4,
                        "checkpoints": 5, "agents": 32, "rounds": 20,
                        "seed": 11})"),
            "6b50d01ab70dca71");
}

TEST(Identity, DynamicSpellingVariantsCollapseToOneHash) {
  const Registry& reg = Registry::built_in();
  ScenarioSpec a;
  a.dynamics = "churn:p_edge=0.01,p_fail=0.005";
  ScenarioSpec b;
  b.dynamics = "churn:p_fail=0.005,seed=0,p_edge=0.01,mean_down=10";
  EXPECT_EQ(a.identity_hash(reg), b.identity_hash(reg));
  ScenarioSpec c;
  EXPECT_NE(a.identity_hash(reg), c.identity_hash(reg))
      << "a dynamic spec must not collide with the static spec";
}

// ---------------------------------------------------------------------
// Fail-fast: the vector engine has no mutation phase
// ---------------------------------------------------------------------

TEST(Validation, VectorEngineRejectsDynamicsAtSpecValidationTime) {
  ScenarioSpec spec;
  spec.engine = EngineMode::kVector;
  spec.dynamics = "churn:p_edge=0.01,p_fail=0";
  try {
    spec.validate();
    FAIL() << "expected validate() to reject engine=vector + dynamics";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("engine=vector"), std::string::npos);
    EXPECT_NE(what.find("engine=single or engine=sharded"),
              std::string::npos);
  }
  spec.engine = EngineMode::kSharded;
  EXPECT_NO_THROW(spec.validate());
}

TEST(Validation, VectorWalkRejectsDynamicsAsDefenseInDepth) {
  const graph::AnyTopology topo = Registry::built_in().make("ring:64");
  sim::ChurnDynamics model(topo, 0.1, 0.0, 10, 1);
  sim::DensityConfig cfg;
  cfg.num_agents = 8;
  cfg.rounds = 4;
  sim::WalkConfig wcfg = cfg.walk_config();
  wcfg.dynamics = &model;
  sim::CollisionObserver observer(8);
  EXPECT_THROW(sim::run_walk_vector(topo, wcfg, 1, sim::VectorExec{},
                                    nullptr, observer),
               std::invalid_argument);
}

TEST(Validation, DynamicsRestrictedToDensityWorkload) {
  ScenarioSpec spec;
  spec.topology = "torus2d:16x16";
  spec.workload = Workload::kTrajectory;
  spec.agents = 8;
  spec.rounds = 8;
  spec.dynamics = "drift:p_death=0.1,p_birth=0.1";
  EXPECT_THROW(scenario::Experiment{spec}, std::invalid_argument);
}

TEST(Validation, ExperimentCanonicalizesTheDynamicsSpec) {
  ScenarioSpec spec;
  spec.topology = "torus2d:8x8";
  spec.agents = 8;
  spec.rounds = 4;
  spec.dynamics = "churn:p_fail=0,p_edge=0";
  const scenario::Experiment experiment(spec);
  EXPECT_EQ(experiment.spec().dynamics,
            "churn:p_edge=0,p_fail=0,mean_down=10,seed=0");
}

}  // namespace
}  // namespace antdense
